#include "core/warehouse.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cctype>
#include <cmath>

#include "core/counters_io.h"
#include "util/hash.h"
#include "util/strings.h"

namespace cbfww::core {

/// Adapts the corpus + vectorizer to the logical-page miner's content
/// interface.
class Warehouse::ContentProviderImpl : public LogicalContentProvider {
 public:
  explicit ContentProviderImpl(Warehouse* wh) : wh_(wh) {}

  std::vector<text::TermId> AnchorTerms(corpus::PageId from,
                                        corpus::PageId to) const override {
    const corpus::PhysicalPageSpec& spec = wh_->corpus_->page(from);
    for (const corpus::Anchor& a : spec.anchors) {
      if (a.target == to) return a.text_terms;
    }
    return {};
  }

  std::vector<text::TermId> TitleTerms(corpus::PageId page) const override {
    const corpus::PhysicalPageSpec& spec = wh_->corpus_->page(page);
    return wh_->corpus_->raw(spec.container).title_terms;
  }

  text::TermVector BodyVector(corpus::PageId page) const override {
    const corpus::PhysicalPageSpec& spec = wh_->corpus_->page(page);
    return wh_->vectorizer_.VectorizeTerms(
        wh_->corpus_->raw(spec.container).body_terms,
        /*update_statistics=*/false);
  }

  text::TermVector TermsToVector(
      const std::vector<text::TermId>& terms) const override {
    return wh_->vectorizer_.VectorizeTerms(terms, /*update_statistics=*/false);
  }

 private:
  Warehouse* wh_;
};

namespace {

std::vector<storage::DeviceModel> MakeTiers(const WarehouseOptions& options) {
  return {
      storage::DeviceModel::Memory(options.memory_bytes),
      storage::DeviceModel::Disk(options.disk_bytes),
      storage::DeviceModel::Tertiary(/*capacity_bytes=*/0),  // Bound-free.
  };
}

/// Cache key of a query: text with surrounding whitespace trimmed and
/// internal whitespace runs collapsed (so formatting differences share an
/// entry), plus the execution mode. Case and quoting are preserved —
/// string literals are semantic.
std::string NormalizedQueryKey(std::string_view text, bool use_index) {
  std::string key;
  key.reserve(text.size() + 3);
  bool pending_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !key.empty();
      continue;
    }
    if (pending_space) {
      key.push_back(' ');
      pending_space = false;
    }
    key.push_back(c);
  }
  key.append(use_index ? "#i1" : "#i0");
  return key;
}

DataAnalyzer::ServedBy SourceOfTier(storage::TierIndex tier) {
  switch (tier) {
    case StorageManager::kMemoryTier:
      return DataAnalyzer::ServedBy::kMemory;
    case StorageManager::kDiskTier:
      return DataAnalyzer::ServedBy::kDisk;
    default:
      return DataAnalyzer::ServedBy::kTertiary;
  }
}

}  // namespace

Warehouse::Warehouse(corpus::WebCorpus* corpus, net::OriginServer* origin,
                     const corpus::NewsFeed* feed,
                     const WarehouseOptions& options)
    : corpus_(corpus),
      origin_(origin),
      options_(options),
      hierarchy_(std::make_unique<storage::StorageHierarchy>(
          MakeTiers(options))),
      vectorizer_(corpus->mutable_vocabulary()),
      summarizer_(options.summarizer),
      constraints_(options.constraints),
      storage_(hierarchy_.get(), &constraints_, options.storage),
      priorities_(options.priority),
      sensor_(options.enable_topic_sensor ? feed : nullptr, options.sensor),
      topics_(&sensor_, options.topics),
      content_provider_(std::make_unique<ContentProviderImpl>(this)),
      logical_(options.logical, content_provider_.get()),
      regions_(options.regions),
      recommendations_(options.recommendations),
      versions_(options.versions),
      continuous_(this),
      rng_(options.seed, /*stream=*/0xCBF) {}

Warehouse::~Warehouse() = default;

const RawObjectRecord* Warehouse::FindRaw(corpus::RawId id) const {
  auto it = raws_.find(id);
  return it == raws_.end() ? nullptr : &it->second;
}

const PhysicalPageRecord* Warehouse::FindPage(corpus::PageId id) const {
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : &it->second;
}

RawObjectRecord& Warehouse::EnsureRawRecord(corpus::RawId id) {
  auto it = raws_.find(id);
  if (it != raws_.end()) return it->second;
  const corpus::RawWebObject& obj = corpus_->raw(id);
  RawObjectRecord rec;
  rec.id = id;
  rec.bytes = obj.size_bytes;
  rec.kind = obj.kind;
  rec.cached_version = 0;  // Nothing cached yet.
  // Summary sizing (levels of detail): HTML summaries carry the top terms;
  // media summaries model a thumbnail.
  if (obj.is_html()) {
    rec.has_summary = true;
    rec.summary_bytes = static_cast<uint64_t>(summarizer_.options().max_terms) *
                        summarizer_.options().bytes_per_term;
  } else {
    rec.has_summary = true;
    rec.summary_bytes = std::max<uint64_t>(2048, obj.size_bytes / 20);
  }
  return raws_.emplace(id, std::move(rec)).first->second;
}

PhysicalPageRecord& Warehouse::EnsurePageRecord(corpus::PageId id) {
  auto it = pages_.find(id);
  if (it != pages_.end()) return it->second;

  const corpus::PhysicalPageSpec& spec = corpus_->page(id);
  const corpus::RawWebObject& container = corpus_->raw(spec.container);

  PhysicalPageRecord rec;
  rec.id = id;
  rec.container = spec.container;
  rec.components = spec.components;
  rec.url = container.url;
  rec.title_terms = container.title_terms;
  rec.total_bytes = container.size_bytes;
  for (corpus::RawId c : spec.components) {
    rec.total_bytes += corpus_->raw(c).size_bytes;
  }

  // Content vector: title + body, TF-IDF, normalized. This page counts
  // toward the corpus DF statistics exactly once (first contact).
  std::vector<text::TermId> all_terms = container.title_terms;
  all_terms.insert(all_terms.end(), container.body_terms.begin(),
                   container.body_terms.end());
  rec.vector = vectorizer_.VectorizeTerms(all_terms, /*update_statistics=*/true);
  text::TfIdfVectorizer::Normalize(rec.vector);

  // Register containment: the container and every component now know this
  // page shares them (attribute `shared`, Figure 2 structure).
  auto link_container = [this, id](corpus::RawId raw_id) {
    RawObjectRecord& raw = EnsureRawRecord(raw_id);
    if (std::find(raw.containers.begin(), raw.containers.end(), id) ==
        raw.containers.end()) {
      raw.containers.push_back(id);
      raw.history.set_shared(static_cast<uint32_t>(raw.containers.size()));
    }
  };
  link_container(spec.container);
  for (corpus::RawId c : spec.components) link_container(c);

  // Index the page (content + title). The semantic region is assigned by
  // RequestPage *after* the initial-priority prediction, so a new page
  // cannot match itself.
  auto& stored = pages_.emplace(id, std::move(rec)).first->second;
  indexes_.Add(index::ObjectLevel::kPhysical, id, stored.vector);
  text::TermVector title_vec =
      vectorizer_.VectorizeTerms(stored.title_terms, false);
  title_index_.Add(id, title_vec);
  // Raw-level index: "index for raw web objects (textual objects only) is
  // generated by the words/phrases appeared in the web objects".
  indexes_.Add(index::ObjectLevel::kRaw, spec.container,
               vectorizer_.VectorizeTerms(container.body_terms, false));
  // Durability: first contact is a genesis event — replaying contacts in
  // order over a fresh corpus reproduces this whole function byte-exactly.
  if (journal_ != nullptr) journal_->OnPageContact(id);
  return stored;
}

Warehouse::VectorFingerprint Warehouse::FingerprintVector(
    const text::TermVector& v) {
  VectorFingerprint fp{0x9ae16a3b2f90404fULL, 0xc3a5c85c97cb3127ULL};
  for (const auto& [term, weight] : v.entries()) {
    const uint64_t w = std::bit_cast<uint64_t>(weight);
    fp.lo = HashCombine(HashCombine(fp.lo, term), w);
    fp.hi = HashCombine(HashCombine(fp.hi, w), term);
  }
  return fp;
}

Priority Warehouse::PredictInitialPriority(const text::TermVector& v,
                                           SimTime now) {
  switch (options_.initial_priority) {
    case InitialPriorityMode::kTop: {
      // LRU-like: start above everything currently in memory.
      return storage_.memory_admission_threshold() + 1.0;
    }
    case InitialPriorityMode::kZero:
      return 0.0;
    case InitialPriorityMode::kSimilarity:
      break;
  }
  // The nearest-region scan is the expensive half of first-retrieval
  // priority prediction; identical content (mirrors, boilerplate pages)
  // reuses the prediction while the region structure is unchanged. The
  // topic-hotness term is time-dependent and always computed fresh.
  SemanticRegionManager::Prediction pred;
  const VectorFingerprint fp = FingerprintVector(v);
  if (const auto* cached = prediction_cache_.Get(fp, regions_.epoch())) {
    pred = *cached;
    ++counters_.prediction_cache_hits;
  } else {
    pred = regions_.PredictPriority(v);
    prediction_cache_.Put(fp, regions_.epoch(), pred);
  }
  double hotness = topics_.TopicScore(v, now);
  return priorities_.InitialPriority(pred.mean_priority, pred.similarity,
                                     hotness);
}

Warehouse::FetchOutcome Warehouse::FetchWithRetry(corpus::RawId id) {
  const FetchRetryOptions& retry = options_.fetch_retry;
  // A request-scoped deadline (serving layer) can only tighten the
  // configured budget, never extend it.
  const SimTime deadline = active_fetch_deadline_ > 0
                               ? std::min(retry.deadline, active_fetch_deadline_)
                               : retry.deadline;
  FetchOutcome out;
  SimTime backoff = retry.initial_backoff;
  for (;;) {
    ++out.attempts;
    out.fetch = origin_->Fetch(id);
    out.cost += out.fetch.cost;
    if (out.fetch.ok()) return out;
    if (out.attempts >= std::max<uint32_t>(1, retry.max_attempts)) break;
    if (out.cost + backoff >= deadline) {
      // The next attempt could not complete inside the budget.
      out.fetch.status = Status::DeadlineExceeded("origin fetch deadline");
      break;
    }
    out.cost += backoff;  // Simulated wait before retrying.
    backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                   retry.backoff_multiplier);
    ++counters_.fetch_retries;
  }
  ++counters_.fetch_failures;
  return out;
}

Warehouse::ServeResult Warehouse::ServeRawObject(corpus::RawId id, SimTime now,
                                                 Priority page_priority_hint) {
  RawObjectRecord& rec = EnsureRawRecord(id);
  rec.history.RecordReference(now);
  priorities_.RecordAccess(index::ObjectLevel::kRaw, id, now);
  if (journal_ != nullptr) {
    journal_->OnReference(index::ObjectLevel::kRaw, id, now);
  }

  const corpus::RawWebObject& obj = corpus_->raw(id);
  storage::StoreObjectId full_id = EncodeStoreId(index::ObjectLevel::kRaw, id);
  bool resident = hierarchy_->FastestTierOf(full_id) != storage::kNoTier;
  bool stale = rec.cached_version != obj.version;
  bool strong = constraints_.consistency_mode() == ConsistencyMode::kStrong;

  // Counts the degradation flags once, on whichever path returns.
  auto finish = [this](ServeResult& r) -> ServeResult& {
    if (r.degraded) ++counters_.degraded_serves;
    if (r.stale) ++counters_.stale_serves;
    if (r.summary) ++counters_.summary_serves;
    if (r.failed) ++counters_.failed_serves;
    return r;
  };
  // Degradation ladder, lower rungs: a copy known to be out of date, then
  // the LoD summary. Used when both the fast copies and the origin are
  // unavailable.
  auto serve_stale_or_summary = [&](ServeResult& r) -> bool {
    auto read = storage_.ReadObjectDetailed(rec);
    if (read.ok()) {
      r.cost += read->cost;
      r.source = SourceOfTier(read->tier);
      r.degraded = true;
      r.stale = stale;  // Only flag copies actually behind the origin.
      return true;
    }
    storage::StoreObjectId summary_id =
        EncodeStoreId(index::ObjectLevel::kRaw, id, /*summary=*/true);
    if (rec.has_summary &&
        hierarchy_->FastestTierOf(summary_id) != storage::kNoTier) {
      auto sread = hierarchy_->ReadWithFallback(summary_id);
      if (sread.ok()) {
        r.cost += sread->cost;
        r.source = SourceOfTier(sread->tier);
        r.degraded = true;
        r.summary = true;
        return true;
      }
    }
    return false;
  };

  ServeResult result;
  if (resident && (!stale || !strong)) {
    // Serve the cached copy (weak consistency tolerates staleness).
    auto read = storage_.ReadObjectDetailed(rec);
    if (read.ok()) {
      result.cost = read->cost;
      result.source = SourceOfTier(read->tier);
      result.degraded = read->degraded;
      if (read->tier == StorageManager::kMemoryTier) {
        rec.served_from_memory = true;
      }
      rec.effective_priority = std::max(rec.effective_priority,
                                        page_priority_hint);
      // Self-organization between rebalances: an accessed object whose
      // priority now clears the memory bar is promoted immediately,
      // displacing weaker memory residents.
      if (options_.enable_access_promotion) {
        storage_.PromoteOnAccess(rec, page_priority_hint);
      }
      return finish(result);
    }
    // Every resident copy failed (injected device faults): fall through to
    // the origin, flagged as a degraded serve.
    resident = false;
    result.degraded = true;
  }
  if (resident && stale && strong) {
    // Strong consistency: validate + refetch the new version.
    net::OriginServer::ValidateResult v =
        origin_->Validate(id, rec.cached_version);
    result.cost += v.cost;
    if (!v.ok() && serve_stale_or_summary(result)) {
      // Origin unreachable: hand out the resident copy even though strong
      // consistency would refetch, rather than fail the request.
      return finish(result);
    }
  }

  // Fetch from the origin, with retry + backoff under a deadline.
  FetchOutcome out = FetchWithRetry(id);
  ++counters_.origin_fetches;
  result.cost += out.cost;
  result.source = DataAnalyzer::ServedBy::kOrigin;
  if (!out.fetch.ok()) {
    if (serve_stale_or_summary(result)) return finish(result);
    result.degraded = true;
    result.failed = true;
    return finish(result);
  }
  bool first_fetch = rec.cached_version == 0;
  rec.cached_version = out.fetch.version;
  rec.bytes = out.fetch.bytes;
  rec.last_validated = now;
  versions_.CaptureVersion(id, out.fetch.version, now, out.fetch.bytes);
  if (journal_ != nullptr) journal_->OnObjectVersion(rec);

  Status admitted = storage_.AdmitNew(rec, page_priority_hint);
  if (!admitted.ok()) {
    ++counters_.admission_rejections;
  } else if (first_fetch &&
             constraints_.consistency_mode() == ConsistencyMode::kWeak) {
    poll_queue_.push({now + constraints_.PollingInterval(rec.history), id});
  }
  rec.effective_priority = std::max(rec.effective_priority, page_priority_hint);
  return finish(result);
}

PageVisit Warehouse::RequestPage(const PageRequest& request) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  active_fetch_deadline_ = request.fetch_deadline;
  const corpus::PageId page = request.page;
  const uint32_t user = request.user;
  const int64_t session = request.session;
  const bool via_link = request.via_link;
  SimTime now = request.now;
  if (now < now_) now = now_;
  now_ = now;
  ++data_epoch_;
  ++counters_.requests;

  PhysicalPageRecord& rec = EnsurePageRecord(page);
  bool first_contact = rec.history.frequency() == 0;

  PageVisit visit;
  visit.page = page;

  // Initial priority of a fresh page (the paper's headline mechanism):
  // predict from the most similar existing region, THEN insert the page
  // into the clustering stream.
  if (first_contact) {
    Priority initial = PredictInitialPriority(rec.vector, now);
    priorities_.SeedPriority(index::ObjectLevel::kPhysical, page, initial,
                             now);
    if (journal_ != nullptr) {
      journal_->OnSeedPriority(index::ObjectLevel::kPhysical, page, initial,
                               now);
    }
    rec.region = regions_.Assign(rec.vector);
  }
  rec.history.RecordReference(now);
  priorities_.RecordAccess(index::ObjectLevel::kPhysical, page, now);
  if (journal_ != nullptr) {
    journal_->OnReference(index::ObjectLevel::kPhysical, page, now);
  }
  Priority page_priority = EffectivePagePriority(page, now);
  rec.own_priority =
      priorities_.OwnPriority(index::ObjectLevel::kPhysical, page, now);
  rec.effective_priority = page_priority;

  // Serve container first (it references the components), then components
  // in parallel: latency = container + max(component costs).
  ServeResult container_serve =
      ServeRawObject(rec.container, now, page_priority);
  visit.latency = container_serve.cost;
  SimTime max_component = 0;
  auto count_serve = [&visit](const ServeResult& s) {
    switch (s.source) {
      case DataAnalyzer::ServedBy::kMemory:
        ++visit.from_memory;
        break;
      case DataAnalyzer::ServedBy::kDisk:
        ++visit.from_disk;
        break;
      case DataAnalyzer::ServedBy::kTertiary:
        ++visit.from_tertiary;
        break;
      case DataAnalyzer::ServedBy::kOrigin:
        ++visit.from_origin;
        break;
    }
    if (s.degraded) ++visit.degraded_serves;
    if (s.stale) ++visit.stale_serves;
    if (s.summary) ++visit.summary_serves;
    if (s.failed) ++visit.failed_serves;
  };
  count_serve(container_serve);
  for (corpus::RawId c : rec.components) {
    ServeResult s = ServeRawObject(c, now, page_priority);
    max_component = std::max(max_component, s.cost);
    count_serve(s);
  }
  visit.latency += max_component;

  // Usage-driven signals.
  topics_.RecordUsage(rec.vector, rec.own_priority, now);
  recommendations_.RecordAccess(user, rec.vector, now);
  if (rec.region != kInvalidRegionId) {
    regions_.RecordMemberPriority(rec.region, rec.own_priority, now);
    priorities_.RecordAccess(index::ObjectLevel::kRegion, rec.region, now);
  }

  // Logical-page mining.
  LogicalPageManager::Observation obs =
      logical_.ObserveRequest(session, page, via_link, now);
  for (LogicalPageId lid : obs.materialized) {
    LogicalPageRecord* lp = logical_.FindPage(lid);
    if (lp == nullptr) continue;
    text::TermVector v = lp->vector;
    text::TfIdfVectorizer::Normalize(v);
    lp->region = regions_.Assign(v);
    indexes_.Add(index::ObjectLevel::kLogical, lid, lp->vector);
    for (corpus::PageId member : lp->path) {
      auto pit = pages_.find(member);
      if (pit == pages_.end()) continue;
      auto& list = pit->second.logical_pages;
      if (std::find(list.begin(), list.end(), lid) == list.end()) {
        list.push_back(lid);
      }
    }
  }
  for (LogicalPageId lid : obs.completed) {
    priorities_.RecordAccess(index::ObjectLevel::kLogical, lid, now);
    LogicalPageRecord* lp = logical_.FindPage(lid);
    if (lp != nullptr) {
      lp->own_priority =
          priorities_.OwnPriority(index::ObjectLevel::kLogical, lid, now);
      lp->effective_priority = EffectiveLogicalPriority(lid, now);
      if (lp->region != kInvalidRegionId) {
        regions_.RecordMemberPriority(lp->region, lp->own_priority, now);
        priorities_.RecordAccess(index::ObjectLevel::kRegion, lp->region, now);
      }
    }
  }
  visit.completed_logical = obs.completed;

  // Guided navigation (Section 4.1): the user just arrived at the start of
  // known traversal paths — stage what they will read next.
  if (options_.enable_path_prefetch) PathPrefetch(page, now);

  analyzer_.RecordRequest(page, user, now, visit.SlowestSource(),
                          visit.latency);
  active_fetch_deadline_ = 0;
  return visit;
}

void Warehouse::PathPrefetch(corpus::PageId page, SimTime now) {
  std::vector<LogicalPageId> starting = logical_.PagesStartingAt(page);
  if (starting.empty()) return;
  // Most-traversed path wins (what "experienced users" do — Section 3(5)).
  LogicalPageId best = starting.front();
  uint64_t best_freq = 0;
  for (LogicalPageId id : starting) {
    const LogicalPageRecord* rec = logical_.FindPage(id);
    if (rec != nullptr && rec->history.frequency() > best_freq) {
      best_freq = rec->history.frequency();
      best = id;
    }
  }
  const LogicalPageRecord* path = logical_.FindPage(best);
  if (path == nullptr) return;
  Priority path_priority = EffectiveLogicalPriority(best, now);

  uint32_t staged = 0;
  for (size_t i = 1; i < path->path.size() &&
                     staged < options_.path_prefetch_depth;
       ++i, ++staged) {
    corpus::PageId next = path->path[i];
    auto pit = pages_.find(next);
    if (pit == pages_.end()) continue;  // Never warehoused: skip (cheap).
    auto stage_raw = [&](corpus::RawId rid) {
      RawObjectRecord& rec = EnsureRawRecord(rid);
      storage::StoreObjectId full_id =
          EncodeStoreId(index::ObjectLevel::kRaw, rid);
      storage::TierIndex tier = hierarchy_->FastestTierOf(full_id);
      if (tier == StorageManager::kMemoryTier) return;
      if (tier == storage::kNoTier) {
        // Expired/never stored: background fetch (best-effort, no retry —
        // a failed prefetch just doesn't stage the page).
        net::OriginServer::FetchResult fetch = origin_->Fetch(rid);
        counters_.background_time += fetch.cost;
        if (!fetch.ok()) return;
        rec.cached_version = fetch.version;
        rec.bytes = fetch.bytes;
        versions_.CaptureVersion(rid, fetch.version, now, fetch.bytes);
        if (journal_ != nullptr) journal_->OnObjectVersion(rec);
        (void)storage_.AdmitNew(rec, path_priority);
      } else {
        storage_.PromoteOnAccess(rec, path_priority);
      }
      ++counters_.path_prefetches;
    };
    stage_raw(pit->second.container);
    for (corpus::RawId c : pit->second.components) stage_raw(c);
  }
}

void Warehouse::OnOriginModified(corpus::RawId id, SimTime now) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  ++data_epoch_;
  auto it = raws_.find(id);
  if (it == raws_.end()) return;  // Not warehoused: nothing to invalidate.
  RawObjectRecord& rec = it->second;
  rec.history.RecordModification(now);
  if (journal_ != nullptr) {
    journal_->OnModification(index::ObjectLevel::kRaw, id, now);
  }
  for (corpus::PageId p : rec.containers) {
    auto pit = pages_.find(p);
    if (pit != pages_.end()) {
      pit->second.history.RecordModification(now);
      if (journal_ != nullptr) {
        journal_->OnModification(index::ObjectLevel::kPhysical, p, now);
      }
    }
  }
  storage::StoreObjectId full_id = EncodeStoreId(index::ObjectLevel::kRaw, id);
  if (constraints_.consistency_mode() == ConsistencyMode::kStrong) {
    // Copies are now invalid; drop fast copies, keep the (stale-marked)
    // tertiary backup for as-of queries.
    (void)hierarchy_->Evict(full_id, StorageManager::kMemoryTier);
    (void)hierarchy_->Evict(full_id, StorageManager::kDiskTier);
    (void)hierarchy_->MarkStale(full_id, StorageManager::kTertiaryTier);
  } else {
    for (storage::TierIndex t = 0; t < hierarchy_->num_tiers(); ++t) {
      if (hierarchy_->IsResident(full_id, t)) {
        (void)hierarchy_->MarkStale(full_id, t);
      }
    }
  }
}

PageVisit Warehouse::ProcessEvent(const trace::TraceEvent& event) {
  if (event.type == trace::TraceEventType::kRequest) {
    return ServeRequest(PageRequest::FromEvent(event));
  }
  PageVisit visit;
  {
    // One event = one WAL frame: every durable mutation of this event
    // (including its housekeeping Tick) commits atomically, so recovery
    // always lands on an event boundary.
    WarehouseJournal::BatchGuard batch(journal_.get());
    Tick(event.time);
    ++events_processed_;
    corpus_->ModifyObject(event.modified, event.time, rng_);
    if (journal_ != nullptr) {
      journal_->OnCorpusModify(event.modified, event.time);
    }
    OnOriginModified(event.modified, event.time);
  }
  MaybeCheckpointAfterEvent();
  return visit;
}

PageVisit Warehouse::ServeRequest(const PageRequest& request) {
  PageVisit visit;
  {
    // Same event-atomicity contract as ProcessEvent: the housekeeping Tick
    // and the serve commit as one WAL frame.
    WarehouseJournal::BatchGuard batch(journal_.get());
    Tick(request.now);
    ++events_processed_;
    visit = RequestPage(request);
  }
  MaybeCheckpointAfterEvent();
  return visit;
}

void Warehouse::MaybeCheckpointAfterEvent() {
  if (journal_ != nullptr && options_.durability.checkpoint_every_events > 0 &&
      events_processed_ % options_.durability.checkpoint_every_events == 0) {
    (void)journal_->CheckpointNow();
  }
}

void Warehouse::Tick(SimTime now) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  if (now < now_) now = now_;
  now_ = now;
  ++data_epoch_;
  if (fault_injector_ != nullptr) {
    fault_injector_->AdvanceTo(now_);
    for (storage::TierIndex tier : fault_injector_->TakeDueTierLosses(now_)) {
      SimulateTierFailure(tier);
      if (options_.auto_recover_tiers) RecoverTier(tier);
    }
  }
  if (options_.enable_topic_sensor && now_ >= next_sensor_poll_) {
    sensor_.Poll(now_);
    next_sensor_poll_ = now_ + options_.sensor_poll_interval;
    if (options_.enable_prefetch) MaybePrefetch(now_);
  }
  RunConsistencyPolls(now_);
  continuous_.Poll(now_);
  if (now_ >= next_rebalance_) {
    regions_.Sync(now_);
    Rebalance(now_);
    next_rebalance_ = now_ + options_.rebalance_interval;
  }
}

void Warehouse::RunConsistencyPolls(SimTime now) {
  uint32_t budget = options_.polls_per_tick;
  while (budget > 0 && !poll_queue_.empty() && poll_queue_.top().first <= now) {
    corpus::RawId id = poll_queue_.top().second;
    poll_queue_.pop();
    auto it = raws_.find(id);
    if (it == raws_.end()) continue;
    RawObjectRecord& rec = it->second;
    --budget;
    ++counters_.consistency_polls;
    net::OriginServer::ValidateResult v =
        origin_->Validate(id, rec.cached_version);
    counters_.background_time += v.cost;
    if (!v.ok()) {
      // Origin unreachable: keep the (possibly stale) copy and try again
      // on the regular schedule.
      ++counters_.poll_failures;
      poll_queue_.push({now + constraints_.PollingInterval(rec.history), id});
      continue;
    }
    rec.last_validated = now;
    if (v.modified) {
      FetchOutcome out = FetchWithRetry(id);
      counters_.background_time += out.cost;
      if (out.fetch.ok()) {
        ++counters_.consistency_refreshes;
        rec.cached_version = out.fetch.version;
        rec.bytes = out.fetch.bytes;
        versions_.CaptureVersion(id, out.fetch.version, now, out.fetch.bytes);
        // Refresh resident copies (clears stale marks).
        storage::StoreObjectId full_id =
            EncodeStoreId(index::ObjectLevel::kRaw, id);
        for (storage::TierIndex t = 0; t < hierarchy_->num_tiers(); ++t) {
          if (hierarchy_->IsResident(full_id, t)) {
            (void)hierarchy_->Store(full_id, rec.bytes, t);
          }
        }
      } else {
        // Known stale but unrefreshable (origin flapping): mark resident
        // copies so later serves can flag them.
        storage::StoreObjectId full_id =
            EncodeStoreId(index::ObjectLevel::kRaw, id);
        for (storage::TierIndex t = 0; t < hierarchy_->num_tiers(); ++t) {
          if (hierarchy_->IsResident(full_id, t)) {
            (void)hierarchy_->MarkStale(full_id, t);
          }
        }
      }
    }
    // One record captures the poll's whole metadata effect (last_validated
    // plus any refreshed version/bytes).
    if (journal_ != nullptr) journal_->OnObjectVersion(rec);
    poll_queue_.push({now + constraints_.PollingInterval(rec.history), id});
  }
}

void Warehouse::PlaceIndexes(SimTime now) {
  (void)now;
  // Sizes of the five index objects.
  uint64_t sizes[5];
  for (int i = 0; i < index::kNumObjectLevels; ++i) {
    sizes[i] = indexes_.level(static_cast<index::ObjectLevel>(i)).MemoryBytes();
  }
  sizes[4] = title_index_.MemoryBytes();

  // Most-used indexes first; decay so placement tracks the workload.
  std::array<int, 5> order = {0, 1, 2, 3, 4};
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return index_uses_[a] > index_uses_[b]; });
  for (double& u : index_uses_) u *= 0.5;

  // Dedicated slice of memory for indexes ("some important indexes are
  // stored in the main memory", Section 4.1); the rest go to disk.
  uint64_t budget = hierarchy_->tier(0).capacity_bytes / 8;
  for (int which : order) {
    storage::StoreObjectId id = IndexStoreId(which);
    if (sizes[which] == 0) {
      hierarchy_->EvictAll(id);
      continue;
    }
    // Re-placing with a new size requires dropping stale copies first.
    if (hierarchy_->SizeOf(id) != sizes[which]) hierarchy_->EvictAll(id);
    (void)hierarchy_->Store(id, sizes[which], StorageManager::kDiskTier);
    if (sizes[which] <= budget) {
      bool stored =
          hierarchy_->Store(id, sizes[which], StorageManager::kMemoryTier)
              .ok();
      if (!stored && storage_.ReserveMemoryRoom(sizes[which])) {
        stored = hierarchy_->Store(id, sizes[which],
                                   StorageManager::kMemoryTier)
                     .ok();
      }
      if (stored) budget -= sizes[which];
    } else if (hierarchy_->IsResident(id, StorageManager::kMemoryTier)) {
      (void)hierarchy_->Evict(id, StorageManager::kMemoryTier);
    }
  }
}

void Warehouse::Rebalance(SimTime now) {
  ++counters_.rebalances;
  // Region-level index: centroids of the current semantic regions.
  for (const auto& [rid, rec] : regions_.regions()) {
    indexes_.Add(index::ObjectLevel::kRegion, rid, rec.centroid);
  }
  // Compute page-level effective priorities once, then raw-object
  // priorities via the Figure 2 max-over-containers rule.
  std::unordered_map<corpus::PageId, Priority> page_priority;
  page_priority.reserve(pages_.size());
  for (auto& [pid, rec] : pages_) {
    Priority p = EffectivePagePriority(pid, now);
    rec.own_priority =
        priorities_.OwnPriority(index::ObjectLevel::kPhysical, pid, now);
    rec.effective_priority = p;
    page_priority.emplace(pid, p);
  }
  std::vector<StorageManager::RankedObject> ranked;
  ranked.reserve(raws_.size());
  for (auto& [rid, rec] : raws_) {
    Priority p;
    if (rec.containers.empty()) {
      p = priorities_.OwnPriority(index::ObjectLevel::kRaw, rid, now);
    } else {
      p = 0.0;
      for (corpus::PageId c : rec.containers) {
        auto it = page_priority.find(c);
        if (it != page_priority.end()) p = std::max(p, it->second);
      }
    }
    rec.own_priority =
        priorities_.OwnPriority(index::ObjectLevel::kRaw, rid, now);
    rec.effective_priority = p;
    ranked.push_back({&rec, p});
  }
  storage_.Rebalance(std::move(ranked));
  // Indexes are placed after data objects and may displace the weakest of
  // them: a memory-resident index accelerates every query it serves.
  PlaceIndexes(now);
}

void Warehouse::MaybePrefetch(SimTime now) {
  auto hot = sensor_.HotTerms(now, 16);
  if (hot.empty()) return;
  std::vector<text::TermVector::Entry> entries;
  entries.reserve(hot.size());
  for (const auto& [term, weight] : hot) entries.emplace_back(term, weight);
  text::TermVector hot_vec = text::TermVector::FromUnsorted(std::move(entries));

  auto matches = indexes_.Query(index::ObjectLevel::kPhysical, hot_vec,
                                options_.prefetch_pages_per_tick);
  for (const index::ScoredDoc& m : matches) {
    auto pit = pages_.find(m.doc);
    if (pit == pages_.end()) continue;
    PhysicalPageRecord& page = pit->second;
    Priority boost = storage_.memory_admission_threshold() +
                     m.score;  // Clears the memory bar.
    auto prefetch_raw = [&](corpus::RawId rid) {
      RawObjectRecord& rec = EnsureRawRecord(rid);
      storage::StoreObjectId full_id =
          EncodeStoreId(index::ObjectLevel::kRaw, rid);
      storage::TierIndex tier = hierarchy_->FastestTierOf(full_id);
      if (tier == StorageManager::kMemoryTier) return;  // Already hot.
      if (tier == storage::kNoTier) {
        // Not warehoused yet: background fetch + admit (best-effort).
        const corpus::RawWebObject& obj = corpus_->raw(rid);
        net::OriginServer::FetchResult fetch = origin_->Fetch(rid);
        counters_.background_time += fetch.cost;
        if (!fetch.ok()) return;
        rec.cached_version = fetch.version;
        rec.bytes = obj.size_bytes;
        versions_.CaptureVersion(rid, fetch.version, now, fetch.bytes);
        if (journal_ != nullptr) journal_->OnObjectVersion(rec);
        (void)storage_.AdmitNew(rec, boost);
      } else {
        // Promote toward memory, displacing weaker residents.
        storage_.PromoteOnAccess(rec, boost);
      }
      rec.effective_priority = std::max(rec.effective_priority, boost);
      ++counters_.prefetches;
    };
    prefetch_raw(page.container);
    for (corpus::RawId c : page.components) prefetch_raw(c);
  }
}

Priority Warehouse::EffectiveLogicalPriority(LogicalPageId id, SimTime now) {
  const LogicalPageRecord* lp = logical_.FindPage(id);
  if (lp == nullptr) return 0.0;
  Priority own = priorities_.OwnPriority(index::ObjectLevel::kLogical, id, now);
  Priority lift = 0.0;
  if (lp->region != kInvalidRegionId) {
    lift = priorities_.OwnPriority(index::ObjectLevel::kRegion, lp->region, now);
  }
  return PriorityManager::CombineContained(own, lift);
}

Priority Warehouse::EffectivePagePriority(corpus::PageId id, SimTime now) {
  auto it = pages_.find(id);
  if (it == pages_.end()) return 0.0;
  PhysicalPageRecord& rec = it->second;
  Priority own =
      priorities_.OwnPriority(index::ObjectLevel::kPhysical, id, now) +
      options_.priority.topic_boost_weight * topics_.TopicScore(rec.vector, now);
  Priority lift = 0.0;
  for (LogicalPageId lid : rec.logical_pages) {
    lift = std::max(lift, EffectiveLogicalPriority(lid, now));
  }
  return PriorityManager::CombineContained(own, lift);
}

Priority Warehouse::EffectiveRawPriority(corpus::RawId id, SimTime now) {
  auto it = raws_.find(id);
  if (it == raws_.end()) return 0.0;
  const RawObjectRecord& rec = it->second;
  if (rec.containers.empty()) {
    return priorities_.OwnPriority(index::ObjectLevel::kRaw, id, now);
  }
  // Figure 2: a shared component's priority is the max of its containers'
  // priorities — its raw access count (which double-counts shared use) is
  // deliberately ignored.
  Priority p = 0.0;
  for (corpus::PageId c : rec.containers) {
    p = std::max(p, EffectivePagePriority(c, now));
  }
  return PriorityManager::CombineShared(p);
}

Result<Warehouse::CostedQueryResult> Warehouse::ExecuteQuery(
    std::string_view text, QueryRunOptions options) {
  last_index_used_ = 0;
  // Result cache, keyed by normalized query text + mode and valid only
  // within the current data epoch (any request/modification/tick bumps
  // it). The costed path bypasses the cache: it exists to *measure*
  // execution, and the C5/C7 experiments depend on every run charging its
  // index reads.
  std::string cache_key;
  if (!options.with_cost) {
    cache_key = NormalizedQueryKey(text, options.use_index);
    if (const auto* cached = query_cache_.Get(cache_key, data_epoch_)) {
      ++counters_.query_cache_hits;
      CostedQueryResult out;
      out.result = *cached;
      return out;
    }
  }
  query::QueryExecutor::Options opts;
  opts.use_index = options.use_index;
  query::QueryExecutor executor(this, opts);
  auto result = executor.Execute(text);
  if (!result.ok()) return result.status();
  CostedQueryResult out;
  out.result = std::move(result).value();
  if (!options.with_cost) {
    ++counters_.query_cache_misses;
    query_cache_.Put(cache_key, data_epoch_, out.result);
    return out;
  }
  // Per-candidate evaluation CPU (~2us of predicate work per row).
  constexpr SimTime kRowCost = 2 * kMicrosecond;
  out.cost = static_cast<SimTime>(out.result.candidates_evaluated) * kRowCost;
  if (out.result.used_index && last_index_used_ != 0) {
    // Reading the index costs whatever its storage tier charges; an index
    // that fell out of memory makes the whole query pay disk latency.
    auto read = hierarchy_->Read(last_index_used_);
    if (read.ok()) out.cost += *read;
    ++counters_.indexed_queries;
  } else {
    ++counters_.scan_queries;
  }
  return out;
}

Result<query::QueryExecutionResult> Warehouse::ExecuteQuery(
    std::string_view text, bool use_index) {
  auto costed = ExecuteQuery(text, QueryRunOptions{.use_index = use_index});
  if (!costed.ok()) return costed.status();
  return std::move(costed->result);
}

Result<Warehouse::CostedQueryResult> Warehouse::ExecuteQueryWithCost(
    std::string_view text, bool use_index) {
  return ExecuteQuery(
      text, QueryRunOptions{.use_index = use_index, .with_cost = true});
}

std::vector<index::ScoredDoc> Warehouse::RecommendPages(uint32_t user,
                                                        size_t k) const {
  return recommendations_.RecommendPages(
      user, indexes_.level(index::ObjectLevel::kPhysical), k, now_);
}

std::vector<LogicalPageId> Warehouse::RecommendPaths(corpus::PageId page,
                                                     size_t k) const {
  return recommendations_.RecommendPaths(page, logical_, k);
}

std::vector<index::ScoredDoc> Warehouse::SearchPages(
    std::string_view query_text, size_t k, double popularity_weight) {
  text::TermVector query = vectorizer_.Vectorize(query_text, false);
  // Over-fetch, then re-rank by popularity-boosted relevance.
  auto hits = indexes_.Query(index::ObjectLevel::kPhysical, query, k * 4 + 8);
  for (index::ScoredDoc& hit : hits) {
    const PhysicalPageRecord* rec = FindPage(hit.doc);
    double freq =
        rec == nullptr ? 0.0 : static_cast<double>(rec->history.frequency());
    hit.score *= 1.0 + popularity_weight * std::log1p(freq);
  }
  std::sort(hits.begin(), hits.end(),
            [](const index::ScoredDoc& a, const index::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::vector<index::ScoredDoc> Warehouse::RecommendPagesCacheConscious(
    uint32_t user, size_t k, double tier_weight) const {
  auto hits = recommendations_.RecommendPages(
      user, indexes_.level(index::ObjectLevel::kPhysical), k * 4 + 8, now_);
  for (index::ScoredDoc& hit : hits) {
    const PhysicalPageRecord* rec = FindPage(hit.doc);
    if (rec == nullptr) continue;
    storage::TierIndex tier = hierarchy_->FastestTierOf(
        EncodeStoreId(index::ObjectLevel::kRaw, rec->container));
    // Tier speed factor: memory 1.0, disk 0.5, tertiary 0.33, absent 0.
    double speed =
        tier == storage::kNoTier ? 0.0 : 1.0 / (1.0 + static_cast<double>(tier));
    hit.score *= 1.0 + tier_weight * speed;
  }
  std::sort(hits.begin(), hits.end(),
            [](const index::ScoredDoc& a, const index::ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

uint64_t Warehouse::SimulateTierFailure(storage::TierIndex tier) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  ++data_epoch_;
  ++counters_.tier_losses;
  uint64_t lost = 0;
  for (storage::StoreObjectId id : hierarchy_->ObjectsAtTier(tier)) {
    if (hierarchy_->Evict(id, tier).ok()) ++lost;
  }
  // Displacement registries mirroring the lost tier are now all ghosts.
  storage_.OnTierLost(tier);
  return lost;
}

void Warehouse::AttachFaultInjector(fault::FaultInjector* injector) {
  fault_injector_ = injector;
  hierarchy_->set_fault_policy(injector);
  origin_->set_fault_policy(injector);
}

uint64_t Warehouse::RecoverTier(storage::TierIndex tier) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  ++data_epoch_;
  ++counters_.tier_recoveries;
  std::vector<StorageManager::RankedObject> ranked;
  ranked.reserve(raws_.size());
  for (auto& [rid, rec] : raws_) {
    ranked.push_back({&rec, rec.effective_priority});
  }
  const SimTime migration_before = hierarchy_->stats().migration_time;
  uint64_t restored = storage_.RecoverTier(tier, std::move(ranked));
  counters_.background_time +=
      hierarchy_->stats().migration_time - migration_before;
  counters_.objects_recovered += restored;
  return restored;
}

uint64_t Warehouse::Reconcile(SimTime now) {
  WarehouseJournal::BatchGuard batch(journal_.get());
  if (now < now_) now = now_;
  now_ = now;
  ++data_epoch_;
  // Deterministic iteration order: id-sorted.
  std::vector<corpus::RawId> ids;
  ids.reserve(raws_.size());
  for (const auto& [rid, rec] : raws_) ids.push_back(rid);
  std::sort(ids.begin(), ids.end());

  uint64_t restored = 0;
  for (corpus::RawId rid : ids) {
    RawObjectRecord& rec = raws_.at(rid);
    storage::StoreObjectId full_id =
        EncodeStoreId(index::ObjectLevel::kRaw, rid);
    bool missing = hierarchy_->FastestTierOf(full_id) == storage::kNoTier;
    bool never_fetched = rec.cached_version == 0;
    if (!missing && !never_fetched) continue;
    FetchOutcome out = FetchWithRetry(rid);
    counters_.background_time += out.cost;
    if (!out.fetch.ok()) continue;
    rec.cached_version = out.fetch.version;
    rec.bytes = out.fetch.bytes;
    rec.last_validated = now_;
    versions_.CaptureVersion(rid, out.fetch.version, now_, out.fetch.bytes);
    if (journal_ != nullptr) journal_->OnObjectVersion(rec);
    if (storage_.AdmitNew(rec, rec.effective_priority).ok()) ++restored;
  }
  return restored;
}

Status Warehouse::CheckStorageInvariants() const {
  storage::StorageHierarchy::InvariantOptions opts;
  opts.copy_control = storage_.options().copy_control;
  opts.exempt = [](storage::StoreObjectId id) {
    // LoD summaries (bit 60) and index objects (bit 59) are derived data
    // with no backup copy: summaries are regenerable from the full object,
    // indexes are rebuilt in place by PlaceIndexes.
    return (id & (1ULL << 60)) != 0 || (id & (1ULL << 59)) != 0;
  };
  return hierarchy_->CheckInvariants(opts);
}

void Warehouse::PrintReport(std::ostream& os) const {
  os << "=== CBFWW report ===\n";
  os << StrFormat("requests: %llu  distinct pages: %zu  users: %zu\n",
                  static_cast<unsigned long long>(analyzer_.total_requests()),
                  analyzer_.distinct_pages(), analyzer_.distinct_users());
  os << StrFormat(
      "latency: mean %.1fms  p99 %.1fms\n",
      analyzer_.latency_stats().mean() / 1000.0,
      analyzer_.latency_percentiles().Percentile(99) / 1000.0);
  os << StrFormat(
      "serve mix (page level): memory %llu  disk %llu  tertiary %llu  "
      "origin %llu\n",
      static_cast<unsigned long long>(
          analyzer_.served_from(DataAnalyzer::ServedBy::kMemory)),
      static_cast<unsigned long long>(
          analyzer_.served_from(DataAnalyzer::ServedBy::kDisk)),
      static_cast<unsigned long long>(
          analyzer_.served_from(DataAnalyzer::ServedBy::kTertiary)),
      static_cast<unsigned long long>(
          analyzer_.served_from(DataAnalyzer::ServedBy::kOrigin)));
  os << StrFormat(
      "tiers: %llu objects in memory (%s), %llu on disk (%s), %llu on "
      "tertiary (%s)\n",
      static_cast<unsigned long long>(hierarchy_->resident_count(0)),
      FormatBytes(hierarchy_->used_bytes(0)).c_str(),
      static_cast<unsigned long long>(hierarchy_->resident_count(1)),
      FormatBytes(hierarchy_->used_bytes(1)).c_str(),
      static_cast<unsigned long long>(hierarchy_->resident_count(2)),
      FormatBytes(hierarchy_->used_bytes(2)).c_str());
  os << StrFormat(
      "activity: %llu origin fetches, %llu prefetches (%llu guided), "
      "%llu polls, %llu refreshes, %llu rebalances, %llu migrations\n",
      static_cast<unsigned long long>(counters_.origin_fetches),
      static_cast<unsigned long long>(counters_.prefetches),
      static_cast<unsigned long long>(counters_.path_prefetches),
      static_cast<unsigned long long>(counters_.consistency_polls),
      static_cast<unsigned long long>(counters_.consistency_refreshes),
      static_cast<unsigned long long>(counters_.rebalances),
      static_cast<unsigned long long>(hierarchy_->stats().migrations));
  os << StrFormat(
      "mining: %zu logical pages, %zu semantic regions, %zu user profiles, "
      "%llu versions (%s), %zu standing queries\n",
      logical_.pages().size(), regions_.regions().size(),
      recommendations_.num_users(),
      static_cast<unsigned long long>(versions_.num_versions()),
      FormatBytes(versions_.TotalBytesRetained()).c_str(),
      continuous_.size());
  os << StrFormat(
      "resilience: %llu degraded serves (%llu stale, %llu summary, %llu "
      "failed), %llu fetch retries, %llu fetch failures, %llu tier losses, "
      "%llu recoveries (%llu copies)\n",
      static_cast<unsigned long long>(counters_.degraded_serves),
      static_cast<unsigned long long>(counters_.stale_serves),
      static_cast<unsigned long long>(counters_.summary_serves),
      static_cast<unsigned long long>(counters_.failed_serves),
      static_cast<unsigned long long>(counters_.fetch_retries),
      static_cast<unsigned long long>(counters_.fetch_failures),
      static_cast<unsigned long long>(counters_.tier_losses),
      static_cast<unsigned long long>(counters_.tier_recoveries),
      static_cast<unsigned long long>(counters_.objects_recovered));
  os << StrFormat(
      "queries: %llu indexed, %llu scans, result cache %llu/%llu hits, "
      "%llu prediction-cache hits\n",
      static_cast<unsigned long long>(counters_.indexed_queries),
      static_cast<unsigned long long>(counters_.scan_queries),
      static_cast<unsigned long long>(counters_.query_cache_hits),
      static_cast<unsigned long long>(counters_.query_cache_hits +
                                      counters_.query_cache_misses),
      static_cast<unsigned long long>(counters_.prediction_cache_hits));
}

// ---------------------------------------------------------------------------
// Crash durability
// ---------------------------------------------------------------------------

Result<RecoveryReport> Warehouse::OpenDurability() {
  if (!options_.durability.enabled()) {
    return Status::FailedPrecondition(
        "durability not configured (options.durability.dir is empty)");
  }
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("durability already open");
  }
  if (!raws_.empty() || !pages_.empty() || events_processed_ != 0) {
    return Status::FailedPrecondition(
        "OpenDurability requires a freshly constructed warehouse");
  }
  auto journal = std::make_unique<WarehouseJournal>(this, options_.durability);
  auto report = journal->Open();
  if (!report.ok()) return report.status();
  journal_ = std::move(journal);
  return report;
}

Status Warehouse::CheckpointNow() {
  if (journal_ == nullptr) {
    return Status::FailedPrecondition("durability is not open");
  }
  return journal_->CheckpointNow();
}

void Warehouse::PrintDurableReport(std::ostream& os, bool include_counters) {
  os << "=== CBFWW durable state ===\n";
  os << StrFormat("now=%lld events=%llu\n",
                  static_cast<long long>(now_),
                  static_cast<unsigned long long>(events_processed_));

  std::vector<corpus::RawId> raw_ids;
  raw_ids.reserve(raws_.size());
  for (const auto& [id, rec] : raws_) raw_ids.push_back(id);
  std::sort(raw_ids.begin(), raw_ids.end());
  for (corpus::RawId id : raw_ids) {
    const RawObjectRecord& rec = raws_.at(id);
    os << StrFormat(
        "raw %llu bytes=%llu ver=%u validated=%lld freq=%llu mods=%llu "
        "shared=%u ack=%d prio=%.17g\n",
        static_cast<unsigned long long>(rec.id),
        static_cast<unsigned long long>(rec.bytes), rec.cached_version,
        static_cast<long long>(rec.last_validated),
        static_cast<unsigned long long>(rec.history.frequency()),
        static_cast<unsigned long long>(rec.history.modification_count()),
        rec.history.shared(), rec.acknowledged ? 1 : 0,
        priorities_.OwnPriority(index::ObjectLevel::kRaw, id, now_));
  }

  std::vector<corpus::PageId> page_ids;
  page_ids.reserve(pages_.size());
  for (const auto& [id, rec] : pages_) page_ids.push_back(id);
  std::sort(page_ids.begin(), page_ids.end());
  for (corpus::PageId id : page_ids) {
    const PhysicalPageRecord& rec = pages_.at(id);
    // The vector fingerprint proves content state (TF-IDF over the DF
    // statistics in first-contact order) was rebuilt exactly.
    const VectorFingerprint fp = FingerprintVector(rec.vector);
    os << StrFormat(
        "page %llu freq=%llu mods=%llu prio=%.17g fp=%016llx%016llx\n",
        static_cast<unsigned long long>(rec.id),
        static_cast<unsigned long long>(rec.history.frequency()),
        static_cast<unsigned long long>(rec.history.modification_count()),
        priorities_.OwnPriority(index::ObjectLevel::kPhysical, id, now_),
        static_cast<unsigned long long>(fp.lo),
        static_cast<unsigned long long>(fp.hi));
  }

  for (storage::TierIndex t = 0; t < hierarchy_->num_tiers(); ++t) {
    std::vector<storage::StoreObjectId> ids = hierarchy_->ObjectsAtTier(t);
    std::sort(ids.begin(), ids.end());
    for (storage::StoreObjectId id : ids) {
      os << StrFormat("tier %d %llu bytes=%llu stale=%d\n", t,
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(hierarchy_->SizeOf(id)),
                      hierarchy_->IsStale(id, t) ? 1 : 0);
    }
  }
  if (include_counters) {
    // Diagnostics only — counters are rebuilt by traffic, not recovery, so
    // they sit outside the byte-identity sections above.
    os << "--- counters (non-durable) ---\n";
    WriteCountersText(os, counters_);
  }
}

// ---------------------------------------------------------------------------
// QueryCatalog implementation
// ---------------------------------------------------------------------------

std::vector<uint64_t> Warehouse::AllObjects(query::EntityKind kind) const {
  std::vector<uint64_t> out;
  switch (kind) {
    case query::EntityKind::kRawObject:
      out.reserve(raws_.size());
      for (const auto& [id, rec] : raws_) out.push_back(id);
      break;
    case query::EntityKind::kPhysicalPage:
      out.reserve(pages_.size());
      for (const auto& [id, rec] : pages_) out.push_back(id);
      break;
    case query::EntityKind::kLogicalPage:
      out.reserve(logical_.pages().size());
      for (const auto& [id, rec] : logical_.pages()) out.push_back(id);
      break;
    case query::EntityKind::kSemanticRegion:
      out.reserve(regions_.regions().size());
      for (const auto& [id, rec] : regions_.regions()) out.push_back(id);
      break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Joins term strings for a human-readable title.
std::string RenderTerms(const text::Vocabulary& vocab,
                        const std::vector<text::TermId>& terms) {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " ";
    out += vocab.TermOf(terms[i]);
  }
  return out;
}

std::string RenderPath(const std::vector<corpus::PageId>& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += "-";
    out += StrFormat("%llu", static_cast<unsigned long long>(path[i]));
  }
  return out;
}

}  // namespace

query::Value Warehouse::GetAttribute(query::EntityKind kind, uint64_t oid,
                                     const std::string& attr) const {
  using query::Value;
  switch (kind) {
    case query::EntityKind::kPhysicalPage: {
      const PhysicalPageRecord* rec = FindPage(oid);
      if (rec == nullptr) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(rec->id));
      if (attr == "title") {
        return Value(RenderTerms(corpus_->vocabulary(), rec->title_terms));
      }
      if (attr == "url") return Value(rec->url);
      if (attr == "size") return Value(static_cast<int64_t>(rec->total_bytes));
      if (attr == "frequency") {
        return Value(static_cast<int64_t>(rec->history.frequency()));
      }
      if (attr == "lastref") {
        return Value(static_cast<int64_t>(rec->history.LastKRef(1)));
      }
      if (attr == "firstref") {
        return Value(static_cast<int64_t>(rec->history.firstref()));
      }
      if (attr == "priority") return Value(rec->effective_priority);
      if (attr == "region") {
        return Value(static_cast<int64_t>(rec->region));
      }
      if (attr == "container") {
        return Value(static_cast<int64_t>(rec->container));
      }
      return Value();
    }
    case query::EntityKind::kLogicalPage: {
      const LogicalPageRecord* rec = logical_.FindPage(oid);
      if (rec == nullptr) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(rec->id));
      if (attr == "path") return Value(RenderPath(rec->path));
      if (attr == "physicals") {
        return Value(std::vector<uint64_t>(rec->path.begin(),
                                           rec->path.end()));
      }
      if (attr == "size") {
        return Value(static_cast<int64_t>(rec->path.size()));
      }
      if (attr == "frequency") {
        return Value(static_cast<int64_t>(rec->history.frequency()));
      }
      if (attr == "lastref") {
        return Value(static_cast<int64_t>(rec->history.LastKRef(1)));
      }
      if (attr == "support") {
        return Value(static_cast<int64_t>(rec->support));
      }
      if (attr == "end_at") {
        return Value(static_cast<int64_t>(rec->terminal()));
      }
      if (attr == "start_at") {
        return Value(static_cast<int64_t>(rec->entry()));
      }
      if (attr == "title") {
        return Value(RenderTerms(corpus_->vocabulary(), rec->title_terms));
      }
      if (attr == "priority") return Value(rec->effective_priority);
      return Value();
    }
    case query::EntityKind::kRawObject: {
      const RawObjectRecord* rec = FindRaw(oid);
      if (rec == nullptr) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(rec->id));
      if (attr == "url") return Value(corpus_->raw(oid).url);
      if (attr == "size") return Value(static_cast<int64_t>(rec->bytes));
      if (attr == "kind") {
        return Value(std::string(corpus::MediaKindName(rec->kind)));
      }
      if (attr == "frequency") {
        return Value(static_cast<int64_t>(rec->history.frequency()));
      }
      if (attr == "lastref") {
        return Value(static_cast<int64_t>(rec->history.LastKRef(1)));
      }
      if (attr == "shared") {
        return Value(static_cast<int64_t>(rec->history.shared()));
      }
      if (attr == "priority") return Value(rec->effective_priority);
      return Value();
    }
    case query::EntityKind::kSemanticRegion: {
      const SemanticRegionRecord* rec = regions_.FindRegion(
          static_cast<RegionId>(oid));
      if (rec == nullptr) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(rec->id));
      if (attr == "weight") return Value(rec->weight);
      if (attr == "priority") return Value(rec->MeanMemberPriority());
      if (attr == "size") {
        return Value(static_cast<int64_t>(rec->priority_count));
      }
      if (attr == "frequency") {
        return Value(static_cast<int64_t>(rec->history.frequency()));
      }
      return Value();
    }
  }
  return query::Value();
}

SimTime Warehouse::LastReference(query::EntityKind kind, uint64_t oid) const {
  switch (kind) {
    case query::EntityKind::kPhysicalPage: {
      const PhysicalPageRecord* rec = FindPage(oid);
      return rec == nullptr ? kNeverTime : rec->history.LastKRef(1);
    }
    case query::EntityKind::kLogicalPage: {
      const LogicalPageRecord* rec = logical_.FindPage(oid);
      return rec == nullptr ? kNeverTime : rec->history.LastKRef(1);
    }
    case query::EntityKind::kRawObject: {
      const RawObjectRecord* rec = FindRaw(oid);
      return rec == nullptr ? kNeverTime : rec->history.LastKRef(1);
    }
    case query::EntityKind::kSemanticRegion: {
      const SemanticRegionRecord* rec =
          regions_.FindRegion(static_cast<RegionId>(oid));
      return rec == nullptr ? kNeverTime : rec->history.LastKRef(1);
    }
  }
  return kNeverTime;
}

uint64_t Warehouse::Frequency(query::EntityKind kind, uint64_t oid) const {
  switch (kind) {
    case query::EntityKind::kPhysicalPage: {
      const PhysicalPageRecord* rec = FindPage(oid);
      return rec == nullptr ? 0 : rec->history.frequency();
    }
    case query::EntityKind::kLogicalPage: {
      const LogicalPageRecord* rec = logical_.FindPage(oid);
      return rec == nullptr ? 0 : rec->history.frequency();
    }
    case query::EntityKind::kRawObject: {
      const RawObjectRecord* rec = FindRaw(oid);
      return rec == nullptr ? 0 : rec->history.frequency();
    }
    case query::EntityKind::kSemanticRegion: {
      const SemanticRegionRecord* rec =
          regions_.FindRegion(static_cast<RegionId>(oid));
      return rec == nullptr ? 0 : rec->history.frequency();
    }
  }
  return 0;
}

std::vector<text::TermId> Warehouse::LookupTerms(
    const std::vector<std::string>& terms) const {
  std::vector<text::TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& t : terms) {
    ids.push_back(corpus_->vocabulary().Lookup(t));
  }
  return ids;
}

bool Warehouse::RowMentions(query::EntityKind kind, uint64_t oid,
                            const std::string& attr,
                            const std::vector<std::string>& terms) const {
  std::vector<text::TermId> ids = LookupTerms(terms);
  for (text::TermId id : ids) {
    if (id == text::kInvalidTermId) return false;  // Unknown term: no match.
  }
  auto contains_all_in_terms = [&ids](const std::vector<text::TermId>& have) {
    for (text::TermId id : ids) {
      if (std::find(have.begin(), have.end(), id) == have.end()) return false;
    }
    return true;
  };
  auto contains_all_in_vector = [&ids](const text::TermVector& v) {
    for (text::TermId id : ids) {
      if (v.WeightOf(id) <= 0.0) return false;
    }
    return true;
  };

  switch (kind) {
    case query::EntityKind::kPhysicalPage: {
      const PhysicalPageRecord* rec = FindPage(oid);
      if (rec == nullptr) return false;
      if (attr == "title") return contains_all_in_terms(rec->title_terms);
      if (attr == "content" || attr == "body") {
        return contains_all_in_vector(rec->vector);
      }
      return false;
    }
    case query::EntityKind::kLogicalPage: {
      const LogicalPageRecord* rec = logical_.FindPage(oid);
      if (rec == nullptr) return false;
      if (attr == "title") return contains_all_in_terms(rec->title_terms);
      if (attr == "content" || attr == "body") {
        return contains_all_in_vector(rec->vector);
      }
      return false;
    }
    default:
      return false;
  }
}

std::optional<std::vector<uint64_t>> Warehouse::MentionCandidates(
    query::EntityKind kind, const std::string& attr,
    const std::vector<std::string>& terms) const {
  std::vector<text::TermId> ids = LookupTerms(terms);
  for (text::TermId id : ids) {
    if (id == text::kInvalidTermId) return std::vector<uint64_t>{};
  }
  if (kind == query::EntityKind::kPhysicalPage) {
    if (attr == "title") {
      index_uses_[4] += 1.0;
      last_index_used_ = IndexStoreId(4);
      return title_index_.DocsContainingAll(ids);
    }
    if (attr == "content" || attr == "body") {
      index_uses_[static_cast<int>(index::ObjectLevel::kPhysical)] += 1.0;
      last_index_used_ =
          IndexStoreId(static_cast<int>(index::ObjectLevel::kPhysical));
      return indexes_.level(index::ObjectLevel::kPhysical)
          .DocsContainingAll(ids);
    }
  }
  if (kind == query::EntityKind::kLogicalPage &&
      (attr == "content" || attr == "body" || attr == "title")) {
    index_uses_[static_cast<int>(index::ObjectLevel::kLogical)] += 1.0;
    last_index_used_ =
        IndexStoreId(static_cast<int>(index::ObjectLevel::kLogical));
    return indexes_.level(index::ObjectLevel::kLogical).DocsContainingAll(ids);
  }
  return std::nullopt;
}

}  // namespace cbfww::core
