#include "core/version_manager.h"

namespace cbfww::core {

VersionManager::VersionManager(const Options& options) : options_(options) {}

void VersionManager::CaptureVersion(corpus::RawId id, uint32_t version,
                                    SimTime now, uint64_t bytes) {
  std::vector<VersionRecord>& list = versions_[id];
  if (!list.empty() && list.back().version == version) return;  // Idempotent.
  VersionRecord rec;
  rec.version = version;
  rec.captured = now;
  rec.bytes = bytes;
  list.push_back(rec);
  total_bytes_ += bytes;
  ++num_versions_;
  if (options_.max_versions_per_object != 0 &&
      list.size() > options_.max_versions_per_object) {
    total_bytes_ -= list.front().bytes;
    --num_versions_;
    list.erase(list.begin());
  }
}

Result<VersionRecord> VersionManager::AsOf(corpus::RawId id, SimTime t) const {
  auto it = versions_.find(id);
  if (it == versions_.end()) return Status::NotFound("object has no versions");
  const VersionRecord* best = nullptr;
  for (const VersionRecord& rec : it->second) {
    if (rec.captured <= t) best = &rec;
  }
  if (best == nullptr) {
    return Status::NotFound("no version captured at or before requested time");
  }
  return *best;
}

const std::vector<VersionRecord>& VersionManager::VersionsOf(
    corpus::RawId id) const {
  static const std::vector<VersionRecord> kEmpty;
  auto it = versions_.find(id);
  return it == versions_.end() ? kEmpty : it->second;
}

}  // namespace cbfww::core
