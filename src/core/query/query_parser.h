#ifndef CBFWW_CORE_QUERY_QUERY_PARSER_H_
#define CBFWW_CORE_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "core/query/query_ast.h"
#include "util/result.h"

namespace cbfww::core::query {

/// Parses one SELECT statement of the warehouse query language (paper
/// Section 4.3). Grammar (keywords case-insensitive):
///
///   select    := SELECT [modifier [number]] projlist FROM entity [alias]
///                [WHERE or_expr]
///   modifier  := LRU | MRU | LFU | MFU
///   projlist  := '*' | proj {',' proj}
///   proj      := operand
///   or_expr   := and_expr {OR and_expr}
///   and_expr  := unary {AND unary}
///   unary     := NOT unary | primary
///   primary   := '(' or_expr ')'
///             | EXISTS '(' select ')'
///             | operand MENTION string
///             | operand IN in_target
///             | operand [cmp operand]
///   in_target := '(' select ')' | operand
///   operand   := number | string | ident '(' operand ')'
///             | ident ['.' ident]
///   cmp       := = | != | <> | < | <= | > | >=
///
/// Entities: Raw_Object, Physical_Page, Logical_Page, Semantic_Region.
Result<std::unique_ptr<SelectStatement>> ParseQuery(std::string_view text);

}  // namespace cbfww::core::query

#endif  // CBFWW_CORE_QUERY_QUERY_PARSER_H_
