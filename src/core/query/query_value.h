#ifndef CBFWW_CORE_QUERY_QUERY_VALUE_H_
#define CBFWW_CORE_QUERY_QUERY_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cbfww::core::query {

/// Entity sets a query can range over (the FROM clause).
enum class EntityKind {
  kRawObject = 0,
  kPhysicalPage,
  kLogicalPage,
  kSemanticRegion,
};

/// Runtime value in the query engine: null, int, double, string, bool, or a
/// list of object ids (for attributes like l.physicals).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::vector<uint64_t> oids) : data_(std::move(oids)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_oid_list() const {
    return std::holds_alternative<std::vector<uint64_t>>(data_);
  }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  const std::vector<uint64_t>& AsOidList() const {
    return std::get<std::vector<uint64_t>>(data_);
  }

  /// Rendering for result tables.
  std::string ToString() const;

  /// SQL-style comparison; numeric values compare across int/double.
  /// Returns <0, 0, >0; comparing incompatible types yields 0 == false
  /// equality and ordering by type index (stable but arbitrary).
  int Compare(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool,
               std::vector<uint64_t>>
      data_;
};

}  // namespace cbfww::core::query

#endif  // CBFWW_CORE_QUERY_QUERY_VALUE_H_
