#ifndef CBFWW_CORE_QUERY_QUERY_EXECUTOR_H_
#define CBFWW_CORE_QUERY_QUERY_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/query/query_ast.h"
#include "core/query/query_value.h"
#include "util/clock.h"
#include "util/result.h"

namespace cbfww::core::query {

/// Data access interface the executor runs against. The Warehouse
/// implements this over its object records and indexes; tests implement it
/// over fixtures.
class QueryCatalog {
 public:
  virtual ~QueryCatalog() = default;

  /// All object ids of an entity kind.
  virtual std::vector<uint64_t> AllObjects(EntityKind kind) const = 0;

  /// Attribute value of one object (Null Value when unknown attribute or
  /// missing object).
  virtual Value GetAttribute(EntityKind kind, uint64_t oid,
                             const std::string& attr) const = 0;

  /// Last-reference time for LRU/MRU ordering (kNeverTime if never used).
  virtual SimTime LastReference(EntityKind kind, uint64_t oid) const = 0;

  /// Lifetime reference count for LFU/MFU ordering.
  virtual uint64_t Frequency(EntityKind kind, uint64_t oid) const = 0;

  /// True if the object's `attr` text mentions all of `terms`.
  virtual bool RowMentions(EntityKind kind, uint64_t oid,
                           const std::string& attr,
                           const std::vector<std::string>& terms) const = 0;

  /// Optional index acceleration for MENTION: ids of objects whose `attr`
  /// contains all `terms`. nullopt = no index available (executor scans).
  virtual std::optional<std::vector<uint64_t>> MentionCandidates(
      EntityKind kind, const std::string& attr,
      const std::vector<std::string>& terms) const {
    (void)kind;
    (void)attr;
    (void)terms;
    return std::nullopt;
  }
};

/// A materialized query result.
struct QueryExecutionResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  /// Objects that entered predicate evaluation (for the index-vs-scan
  /// experiment C5).
  uint64_t candidates_evaluated = 0;
  bool used_index = false;
};

/// Executes parsed SELECT statements against a QueryCatalog: filtering
/// (comparisons, MENTION, IN, EXISTS with correlation), usage-modifier
/// ordering (LRU/MRU/LFU/MFU [n]), and projection.
class QueryExecutor {
 public:
  struct Options {
    /// Use MentionCandidates index acceleration when available.
    bool use_index = true;
    /// Hard cap on produced rows (0 = unlimited).
    uint64_t max_rows = 0;
  };

  /// `catalog` is not owned and must outlive the executor.
  explicit QueryExecutor(const QueryCatalog* catalog);
  QueryExecutor(const QueryCatalog* catalog, Options options);

  /// Parses and executes `text`.
  Result<QueryExecutionResult> Execute(std::string_view text) const;

  /// Executes a parsed statement.
  Result<QueryExecutionResult> Execute(const SelectStatement& stmt) const;

 private:
  struct Binding {
    std::string alias;
    EntityKind kind;
    uint64_t oid;
  };
  using Env = std::vector<Binding>;

  Result<QueryExecutionResult> ExecuteWithEnv(const SelectStatement& stmt,
                                              const Env& outer) const;
  Result<Value> EvalOperand(const Expr& e, const Env& env) const;
  Result<bool> EvalPredicate(const Expr& e, const Env& env) const;
  /// Resolves an attribute reference against the environment (innermost
  /// binding wins for empty alias).
  Result<Value> ResolveAttribute(const std::string& alias,
                                 const std::string& attr,
                                 const Env& env) const;

  const QueryCatalog* catalog_;
  Options options_;
};

/// Tokenizes a MENTION phrase the same way documents are tokenized.
std::vector<std::string> MentionTerms(std::string_view phrase);

}  // namespace cbfww::core::query

#endif  // CBFWW_CORE_QUERY_QUERY_EXECUTOR_H_
