#include "core/query/query_executor.h"

#include <algorithm>

#include "core/query/query_parser.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace cbfww::core::query {

std::vector<std::string> MentionTerms(std::string_view phrase) {
  text::Tokenizer tokenizer;
  return tokenizer.Tokenize(phrase);
}

namespace {

/// Renders a projection expression as a column name.
std::string ColumnName(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kStar:
      return "*";
    case ExprKind::kAttribute:
      return e.alias.empty() ? e.attribute : e.alias + "." + e.attribute;
    case ExprKind::kFunction: {
      const Expr* arg = e.children.empty() ? nullptr : e.children[0].get();
      std::string inner = arg == nullptr ? "" : ColumnName(*arg);
      return e.function_name + "(" + inner + ")";
    }
    case ExprKind::kLiteral:
      return e.literal.ToString();
    default:
      return "expr";
  }
}

/// True for SQL-style aggregate function names.
bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

bool HasAggregate(const SelectStatement& stmt) {
  for (const auto& proj : stmt.projections) {
    if (proj->kind == ExprKind::kFunction &&
        IsAggregateName(proj->function_name)) {
      return true;
    }
  }
  return false;
}

/// Flattens nested ANDs into a conjunct list (no ownership transfer).
void CollectConjuncts(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAnd) {
    CollectConjuncts(e->children[0].get(), out);
    CollectConjuncts(e->children[1].get(), out);
  } else {
    out.push_back(e);
  }
}

}  // namespace

QueryExecutor::QueryExecutor(const QueryCatalog* catalog)
    : catalog_(catalog), options_(Options()) {}

QueryExecutor::QueryExecutor(const QueryCatalog* catalog, Options options)
    : catalog_(catalog), options_(options) {}

Result<QueryExecutionResult> QueryExecutor::Execute(
    std::string_view text) const {
  auto stmt = ParseQuery(text);
  if (!stmt.ok()) return stmt.status();
  return Execute(**stmt);
}

Result<QueryExecutionResult> QueryExecutor::Execute(
    const SelectStatement& stmt) const {
  return ExecuteWithEnv(stmt, Env());
}

Result<Value> QueryExecutor::ResolveAttribute(const std::string& alias,
                                              const std::string& attr,
                                              const Env& env) const {
  if (env.empty()) {
    return Status::FailedPrecondition("attribute outside FROM scope");
  }
  // Innermost binding first.
  for (auto it = env.rbegin(); it != env.rend(); ++it) {
    if (alias.empty() || it->alias == alias) {
      return catalog_->GetAttribute(it->kind, it->oid, attr);
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown alias '%s'", alias.c_str()));
}

Result<Value> QueryExecutor::EvalOperand(const Expr& e, const Env& env) const {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kAttribute:
      return ResolveAttribute(e.alias, e.attribute, env);
    case ExprKind::kFunction: {
      // Functions are attribute projections over logical pages:
      // end_at(l.oid), start_at(l.oid).
      auto arg = EvalOperand(*e.children[0], env);
      if (!arg.ok()) return arg.status();
      if (!arg->is_numeric()) {
        return Status::InvalidArgument(
            StrFormat("%s() expects an oid", e.function_name.c_str()));
      }
      uint64_t oid = static_cast<uint64_t>(arg->AsInt());
      return catalog_->GetAttribute(EntityKind::kLogicalPage, oid,
                                    e.function_name);
    }
    case ExprKind::kStar:
      return Value(std::string("*"));
    default:
      return Status::InvalidArgument("expression is not an operand");
  }
}

Result<bool> QueryExecutor::EvalPredicate(const Expr& e,
                                          const Env& env) const {
  switch (e.kind) {
    case ExprKind::kAnd: {
      auto a = EvalPredicate(*e.children[0], env);
      if (!a.ok()) return a;
      if (!*a) return false;
      return EvalPredicate(*e.children[1], env);
    }
    case ExprKind::kOr: {
      auto a = EvalPredicate(*e.children[0], env);
      if (!a.ok()) return a;
      if (*a) return true;
      return EvalPredicate(*e.children[1], env);
    }
    case ExprKind::kNot: {
      auto a = EvalPredicate(*e.children[0], env);
      if (!a.ok()) return a;
      return !*a;
    }
    case ExprKind::kCompare: {
      auto left = EvalOperand(*e.children[0], env);
      if (!left.ok()) return left.status();
      auto right = EvalOperand(*e.children[1], env);
      if (!right.ok()) return right.status();
      if (left->is_null() || right->is_null()) return false;
      int cmp = left->Compare(*right);
      switch (e.op) {
        case CompareOp::kEq:
          return cmp == 0;
        case CompareOp::kNe:
          return cmp != 0;
        case CompareOp::kLt:
          return cmp < 0;
        case CompareOp::kLe:
          return cmp <= 0;
        case CompareOp::kGt:
          return cmp > 0;
        case CompareOp::kGe:
          return cmp >= 0;
      }
      return false;
    }
    case ExprKind::kMention: {
      const Expr& operand = *e.children[0];
      if (operand.kind != ExprKind::kAttribute) {
        return Status::InvalidArgument("MENTION requires an attribute");
      }
      // Resolve the owning binding to know entity kind and oid.
      for (auto it = env.rbegin(); it != env.rend(); ++it) {
        if (operand.alias.empty() || it->alias == operand.alias) {
          return catalog_->RowMentions(it->kind, it->oid, operand.attribute,
                                       MentionTerms(e.phrase));
        }
      }
      return Status::InvalidArgument("MENTION alias not in scope");
    }
    case ExprKind::kExists: {
      // Correlated existence check: run the subquery with the outer env;
      // any row => true.
      auto sub = ExecuteWithEnv(*e.subquery, env);
      if (!sub.ok()) return sub.status();
      return !sub->rows.empty();
    }
    case ExprKind::kIn: {
      auto left = EvalOperand(*e.children[0], env);
      if (!left.ok()) return left.status();
      if (e.subquery != nullptr) {
        auto sub = ExecuteWithEnv(*e.subquery, env);
        if (!sub.ok()) return sub.status();
        for (const auto& row : sub->rows) {
          if (!row.empty() && left->Compare(row[0]) == 0) return true;
        }
        return false;
      }
      auto target = EvalOperand(*e.children[1], env);
      if (!target.ok()) return target.status();
      if (target->is_oid_list() && left->is_numeric()) {
        uint64_t oid = static_cast<uint64_t>(left->AsInt());
        const auto& list = target->AsOidList();
        return std::find(list.begin(), list.end(), oid) != list.end();
      }
      return left->Compare(*target) == 0;
    }
    default:
      return Status::InvalidArgument("expression is not a predicate");
  }
}

Result<QueryExecutionResult> QueryExecutor::ExecuteWithEnv(
    const SelectStatement& stmt, const Env& outer) const {
  QueryExecutionResult result;

  // Candidate set: all objects, or index-accelerated MENTION candidates
  // when a top-level conjunct mentions an attribute of this statement's
  // entity.
  std::vector<uint64_t> candidates;
  bool have_candidates = false;
  if (options_.use_index && stmt.where != nullptr) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.where.get(), conjuncts);
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kMention) continue;
      const Expr& operand = *c->children[0];
      if (operand.kind != ExprKind::kAttribute) continue;
      if (!operand.alias.empty() && operand.alias != stmt.from_alias) continue;
      auto accel = catalog_->MentionCandidates(stmt.from, operand.attribute,
                                               MentionTerms(c->phrase));
      if (accel.has_value()) {
        candidates = std::move(*accel);
        have_candidates = true;
        result.used_index = true;
        break;
      }
    }
  }
  if (!have_candidates) candidates = catalog_->AllObjects(stmt.from);

  // Filter.
  std::vector<uint64_t> selected;
  Env env = outer;
  env.push_back({stmt.from_alias, stmt.from, 0});
  for (uint64_t oid : candidates) {
    env.back().oid = oid;
    ++result.candidates_evaluated;
    if (stmt.where != nullptr) {
      auto keep = EvalPredicate(*stmt.where, env);
      if (!keep.ok()) return keep.status();
      if (!*keep) continue;
    }
    selected.push_back(oid);
  }

  // Usage-modifier ordering.
  if (stmt.modifier != UsageModifier::kNone) {
    auto last_ref = [this, &stmt](uint64_t oid) {
      return catalog_->LastReference(stmt.from, oid);
    };
    auto freq = [this, &stmt](uint64_t oid) {
      return catalog_->Frequency(stmt.from, oid);
    };
    switch (stmt.modifier) {
      case UsageModifier::kLru:
        std::sort(selected.begin(), selected.end(),
                  [&](uint64_t a, uint64_t b) {
                    SimTime ta = last_ref(a);
                    SimTime tb = last_ref(b);
                    if (ta != tb) return ta < tb;
                    return a < b;
                  });
        break;
      case UsageModifier::kMru:
        std::sort(selected.begin(), selected.end(),
                  [&](uint64_t a, uint64_t b) {
                    SimTime ta = last_ref(a);
                    SimTime tb = last_ref(b);
                    if (ta != tb) return ta > tb;
                    return a < b;
                  });
        break;
      case UsageModifier::kLfu:
        std::sort(selected.begin(), selected.end(),
                  [&](uint64_t a, uint64_t b) {
                    uint64_t fa = freq(a);
                    uint64_t fb = freq(b);
                    if (fa != fb) return fa < fb;
                    return a < b;
                  });
        break;
      case UsageModifier::kMfu:
        std::sort(selected.begin(), selected.end(),
                  [&](uint64_t a, uint64_t b) {
                    uint64_t fa = freq(a);
                    uint64_t fb = freq(b);
                    if (fa != fb) return fa > fb;
                    return a < b;
                  });
        break;
      case UsageModifier::kNone:
        break;
    }
    if (stmt.limit > 0 && selected.size() > stmt.limit) {
      selected.resize(stmt.limit);
    }
  }
  if (options_.max_rows > 0 && selected.size() > options_.max_rows) {
    selected.resize(options_.max_rows);
  }

  // Aggregate projections (COUNT/SUM/AVG/MIN/MAX) collapse the selected
  // set into one row.
  if (HasAggregate(stmt)) {
    std::vector<Value> row;
    for (const auto& proj : stmt.projections) {
      if (proj->kind != ExprKind::kFunction ||
          !IsAggregateName(proj->function_name)) {
        return Status::InvalidArgument(
            "cannot mix aggregate and per-row projections");
      }
      result.columns.push_back(ColumnName(*proj));
      const Expr& arg = *proj->children[0];
      if (proj->function_name == "count" && arg.kind == ExprKind::kStar) {
        row.emplace_back(static_cast<int64_t>(selected.size()));
        continue;
      }
      // Numeric aggregate over the argument per row (NULLs skipped).
      int64_t count = 0;
      double sum = 0.0;
      double mn = 0.0;
      double mx = 0.0;
      for (uint64_t oid : selected) {
        env.back().oid = oid;
        auto v = EvalOperand(arg, env);
        if (!v.ok()) return v.status();
        if (v->is_null()) continue;
        if (!v->is_numeric()) {
          if (proj->function_name == "count") {
            ++count;
            continue;
          }
          return Status::InvalidArgument(
              StrFormat("%s() requires a numeric attribute",
                        proj->function_name.c_str()));
        }
        double x = v->AsDouble();
        if (count == 0) {
          mn = mx = x;
        } else {
          mn = std::min(mn, x);
          mx = std::max(mx, x);
        }
        ++count;
        sum += x;
      }
      if (proj->function_name == "count") {
        row.emplace_back(static_cast<int64_t>(count));
      } else if (count == 0) {
        row.emplace_back();  // NULL over the empty set.
      } else if (proj->function_name == "sum") {
        row.emplace_back(sum);
      } else if (proj->function_name == "avg") {
        row.emplace_back(sum / static_cast<double>(count));
      } else if (proj->function_name == "min") {
        row.emplace_back(mn);
      } else {
        row.emplace_back(mx);
      }
    }
    result.rows.push_back(std::move(row));
    return result;
  }

  // Projection.
  bool star = !stmt.projections.empty() &&
              stmt.projections[0]->kind == ExprKind::kStar;
  if (star) {
    result.columns = {"oid"};
  } else {
    for (const auto& proj : stmt.projections) {
      result.columns.push_back(ColumnName(*proj));
    }
  }
  for (uint64_t oid : selected) {
    env.back().oid = oid;
    std::vector<Value> row;
    if (star) {
      row.emplace_back(static_cast<int64_t>(oid));
    } else {
      for (const auto& proj : stmt.projections) {
        auto v = EvalOperand(*proj, env);
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace cbfww::core::query
