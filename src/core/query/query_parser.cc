#include "core/query/query_parser.h"

#include <cmath>

#include "core/query/query_lexer.h"
#include "util/strings.h"

namespace cbfww::core::query {

std::string_view UsageModifierName(UsageModifier m) {
  switch (m) {
    case UsageModifier::kNone:
      return "NONE";
    case UsageModifier::kLru:
      return "LRU";
    case UsageModifier::kMru:
      return "MRU";
    case UsageModifier::kLfu:
      return "LFU";
    case UsageModifier::kMfu:
      return "MFU";
  }
  return "?";
}

std::string_view EntityKindName(EntityKind kind) {
  switch (kind) {
    case EntityKind::kRawObject:
      return "Raw_Object";
    case EntityKind::kPhysicalPage:
      return "Physical_Page";
    case EntityKind::kLogicalPage:
      return "Logical_Page";
    case EntityKind::kSemanticRegion:
      return "Semantic_Region";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseSelect();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdentifier &&
           ToLowerAscii(Peek().text) == ToLowerAscii(kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(
          StrFormat("expected %s at offset %zu", std::string(what).c_str(),
                    Peek().position));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::unique_ptr<Expr>> ParseOr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseUnary();
  Result<std::unique_ptr<Expr>> ParsePrimary();
  Result<std::unique_ptr<Expr>> ParseOperand();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::unique_ptr<Expr>> Parser::ParseOperand() {
  const Token& tok = Peek();
  if (tok.kind == TokenKind::kNumber) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    double v = tok.number;
    if (v == std::floor(v)) {
      e->literal = Value(static_cast<int64_t>(v));
    } else {
      e->literal = Value(v);
    }
    return e;
  }
  if (tok.kind == TokenKind::kString) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = Value(tok.text);
    return e;
  }
  if (tok.kind == TokenKind::kStar) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kStar;
    return e;
  }
  if (tok.kind == TokenKind::kIdentifier) {
    std::string first = Advance().text;
    if (Peek().kind == TokenKind::kLParen) {
      // Function call, e.g. end_at(l.oid).
      Advance();
      auto arg = ParseOperand();
      if (!arg.ok()) return arg.status();
      CBFWW_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFunction;
      e->function_name = ToLowerAscii(first);
      e->children.push_back(std::move(arg).value());
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAttribute;
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Status::InvalidArgument(
            StrFormat("expected attribute after '.' at offset %zu",
                      Peek().position));
      }
      e->alias = first;
      e->attribute = ToLowerAscii(Advance().text);
    } else {
      e->attribute = ToLowerAscii(first);
    }
    return e;
  }
  return Status::InvalidArgument(
      StrFormat("unexpected token at offset %zu", tok.position));
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  if (Peek().kind == TokenKind::kLParen) {
    Advance();
    auto inner = ParseOr();
    if (!inner.ok()) return inner.status();
    CBFWW_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return inner;
  }
  if (PeekKeyword("exists")) {
    Advance();
    CBFWW_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after EXISTS"));
    auto sub = ParseSelect();
    if (!sub.ok()) return sub.status();
    CBFWW_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after subquery"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kExists;
    e->subquery = std::move(sub).value();
    return e;
  }

  auto left = ParseOperand();
  if (!left.ok()) return left.status();

  if (PeekKeyword("mention")) {
    Advance();
    if (Peek().kind != TokenKind::kString) {
      return Status::InvalidArgument(
          StrFormat("MENTION requires a string literal at offset %zu",
                    Peek().position));
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kMention;
    e->phrase = Advance().text;
    e->children.push_back(std::move(left).value());
    return e;
  }
  if (PeekKeyword("in")) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIn;
    e->children.push_back(std::move(left).value());
    if (Peek().kind == TokenKind::kLParen) {
      // Could be a subquery or a parenthesized operand; SELECT decides.
      size_t save = pos_;
      Advance();
      if (PeekKeyword("select")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        CBFWW_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        e->subquery = std::move(sub).value();
        return e;
      }
      pos_ = save;
    }
    auto target = ParseOperand();
    if (!target.ok()) return target.status();
    e->children.push_back(std::move(target).value());
    return e;
  }

  CompareOp op;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = CompareOp::kEq;
      break;
    case TokenKind::kNe:
      op = CompareOp::kNe;
      break;
    case TokenKind::kLt:
      op = CompareOp::kLt;
      break;
    case TokenKind::kLe:
      op = CompareOp::kLe;
      break;
    case TokenKind::kGt:
      op = CompareOp::kGt;
      break;
    case TokenKind::kGe:
      op = CompareOp::kGe;
      break;
    default: {
      // Bare operand as a boolean-ish primary (e.g. projection contexts
      // never reach here; treat as error for WHERE clauses).
      return Status::InvalidArgument(StrFormat(
          "expected comparison, MENTION or IN at offset %zu", Peek().position));
    }
  }
  Advance();
  auto right = ParseOperand();
  if (!right.ok()) return right.status();
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCompare;
  e->op = op;
  e->children.push_back(std::move(left).value());
  e->children.push_back(std::move(right).value());
  return e;
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (ConsumeKeyword("not")) {
    auto inner = ParseUnary();
    if (!inner.ok()) return inner.status();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kNot;
    e->children.push_back(std::move(inner).value());
    return e;
  }
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  auto left = ParseUnary();
  if (!left.ok()) return left;
  while (ConsumeKeyword("and")) {
    auto right = ParseUnary();
    if (!right.ok()) return right;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAnd;
    e->children.push_back(std::move(left).value());
    e->children.push_back(std::move(right).value());
    left = std::move(e);
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  auto left = ParseAnd();
  if (!left.ok()) return left;
  while (ConsumeKeyword("or")) {
    auto right = ParseAnd();
    if (!right.ok()) return right;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kOr;
    e->children.push_back(std::move(left).value());
    e->children.push_back(std::move(right).value());
    left = std::move(e);
  }
  return left;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  if (!ConsumeKeyword("select")) {
    return Status::InvalidArgument(
        StrFormat("expected SELECT at offset %zu", Peek().position));
  }
  auto stmt = std::make_unique<SelectStatement>();

  if (PeekKeyword("lru")) {
    stmt->modifier = UsageModifier::kLru;
    Advance();
  } else if (PeekKeyword("mru")) {
    stmt->modifier = UsageModifier::kMru;
    Advance();
  } else if (PeekKeyword("lfu")) {
    stmt->modifier = UsageModifier::kLfu;
    Advance();
  } else if (PeekKeyword("mfu")) {
    stmt->modifier = UsageModifier::kMfu;
    Advance();
  }
  if (stmt->modifier != UsageModifier::kNone) {
    if (Peek().kind == TokenKind::kNumber) {
      stmt->limit = static_cast<uint64_t>(Advance().number);
    }
    // Optional comma after the modifier (the paper writes "SELECT MFU,
    // l.path").
    if (Peek().kind == TokenKind::kComma) Advance();
  }

  // Projections.
  while (true) {
    auto proj = ParseOperand();
    if (!proj.ok()) return proj.status();
    stmt->projections.push_back(std::move(proj).value());
    if (Peek().kind == TokenKind::kComma) {
      Advance();
      // Tolerate a trailing comma before FROM (appears in the paper's
      // second example: "SELECT MFU 10 l.oid, l.path,").
      if (PeekKeyword("from")) break;
      continue;
    }
    break;
  }

  if (!ConsumeKeyword("from")) {
    return Status::InvalidArgument(
        StrFormat("expected FROM at offset %zu", Peek().position));
  }
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument(
        StrFormat("expected entity name at offset %zu", Peek().position));
  }
  std::string entity = ToLowerAscii(Advance().text);
  if (entity == "raw_object" || entity == "raw_objects") {
    stmt->from = EntityKind::kRawObject;
  } else if (entity == "physical_page" || entity == "physical_pages") {
    stmt->from = EntityKind::kPhysicalPage;
  } else if (entity == "logical_page" || entity == "logical_pages") {
    stmt->from = EntityKind::kLogicalPage;
  } else if (entity == "semantic_region" || entity == "semantic_regions") {
    stmt->from = EntityKind::kSemanticRegion;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown entity '%s'", entity.c_str()));
  }

  if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("where")) {
    stmt->from_alias = Advance().text;
  }

  if (ConsumeKeyword("where")) {
    auto where = ParseOr();
    if (!where.ok()) return where.status();
    stmt->where = std::move(where).value();
  }
  return stmt;
}

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto stmt = parser.ParseSelect();
  if (!stmt.ok()) return stmt.status();
  return stmt;
}

}  // namespace cbfww::core::query
