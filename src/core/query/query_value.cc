#include "core/query/query_value.h"

#include "util/strings.h"

namespace cbfww::core::query {

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(AsInt()));
  if (is_double()) return StrFormat("%.4g", AsDouble());
  if (is_string()) return AsString();
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_oid_list()) {
    std::string out = "[";
    const auto& oids = AsOidList();
    for (size_t i = 0; i < oids.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("%llu", static_cast<unsigned long long>(oids[i]));
    }
    out += "]";
    return out;
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  // Incompatible types: order by variant index for stability.
  int ai = static_cast<int>(data_.index());
  int bi = static_cast<int>(other.data_.index());
  return ai - bi;
}

}  // namespace cbfww::core::query
