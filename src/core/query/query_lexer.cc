#include "core/query/query_lexer.h"

#include <cctype>

#include "util/strings.h"

namespace cbfww::core::query {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (IsDigit(c)) {
      size_t start = i;
      while (i < n && IsDigit(input[i])) ++i;
      // Thousands separators: ",ddd" groups (the paper writes 200,000).
      while (i + 3 < n && input[i] == ',' && IsDigit(input[i + 1]) &&
             IsDigit(input[i + 2]) && IsDigit(input[i + 3]) &&
             (i + 4 >= n || !IsDigit(input[i + 4]))) {
        i += 4;
      }
      bool is_float = false;
      if (i < n && input[i] == '.' && i + 1 < n && IsDigit(input[i + 1])) {
        is_float = true;
        ++i;
        while (i < n && IsDigit(input[i])) ++i;
      }
      (void)is_float;
      std::string digits;
      for (size_t j = start; j < i; ++j) {
        if (input[j] != ',') digits.push_back(input[j]);
      }
      tok.kind = TokenKind::kNumber;
      tok.number = std::stod(digits);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      while (i < n && input[i] != quote) {
        text.push_back(input[i]);
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at offset %zu", tok.position));
      }
      ++i;  // Closing quote.
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Backquote-style double quotes from the paper's listings (``...'')
    // are normalized by treating a backquote as a double quote.
    if (c == '`') {
      size_t q = i;
      while (q < n && input[q] == '`') ++q;
      std::string text;
      i = q;
      while (i < n && input[i] != '\'' && input[i] != '`' && input[i] != '"') {
        text.push_back(input[i]);
        ++i;
      }
      while (i < n && (input[i] == '\'' || input[i] == '`' || input[i] == '"')) {
        ++i;
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case ',':
        tok.kind = TokenKind::kComma;
        ++i;
        break;
      case '.':
        tok.kind = TokenKind::kDot;
        ++i;
        break;
      case '(':
        tok.kind = TokenKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokenKind::kRParen;
        ++i;
        break;
      case '*':
        tok.kind = TokenKind::kStar;
        ++i;
        break;
      case ';':
        ++i;
        continue;  // Statement terminator: ignored.
      case '=':
        tok.kind = TokenKind::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          return Status::InvalidArgument(
              StrFormat("unexpected '!' at offset %zu", i));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cbfww::core::query
