#ifndef CBFWW_CORE_QUERY_QUERY_AST_H_
#define CBFWW_CORE_QUERY_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/query/query_value.h"

namespace cbfww::core::query {

/// Usage-based result modifiers — the paper's extension of OQL (Section
/// 4.3): "We assume LRU, MRU, LFU and MFU as new modifiers for filtering
/// querying results based on their usage information."
enum class UsageModifier {
  kNone = 0,
  kLru,  // Least recently used first (ascending last reference).
  kMru,  // Most recently used first.
  kLfu,  // Least frequently used first.
  kMfu,  // Most frequently used first.
};

std::string_view UsageModifierName(UsageModifier m);

struct SelectStatement;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,    // Constant Value.
  kAttribute,  // alias.attr or bare attr (resolved against the environment).
  kFunction,   // fn(expr), e.g. end_at(l.oid).
  kCompare,    // left op right.
  kMention,    // left MENTION "phrase".
  kAnd,
  kOr,
  kNot,
  kExists,     // EXISTS (subquery).
  kIn,         // left IN (subquery) | left IN attribute-list.
  kStar,       // '*' projection.
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// An expression tree node. Plain struct: the parser owns construction, the
/// executor only reads.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kAttribute: alias may be empty (resolved to the innermost entity).
  std::string alias;
  std::string attribute;

  // kFunction
  std::string function_name;

  // kCompare
  CompareOp op = CompareOp::kEq;

  // Children: unary ops use children[0]; binary use [0], [1].
  std::vector<std::unique_ptr<Expr>> children;

  // kMention: the phrase literal.
  std::string phrase;

  // kExists / kIn subquery.
  std::unique_ptr<SelectStatement> subquery;
};

/// A parsed SELECT statement of the warehouse query language:
///
///   SELECT [LRU|MRU|LFU|MFU [n]] proj {, proj}
///   FROM   Raw_Object|Physical_Page|Logical_Page|Semantic_Region alias
///   [WHERE expr]
struct SelectStatement {
  UsageModifier modifier = UsageModifier::kNone;
  /// Result-count limit attached to the modifier; 0 = unlimited.
  uint64_t limit = 0;
  /// Projections (kAttribute/kFunction/kStar expressions).
  std::vector<std::unique_ptr<Expr>> projections;
  EntityKind from = EntityKind::kPhysicalPage;
  std::string from_alias;
  /// Null when there is no WHERE clause.
  std::unique_ptr<Expr> where;
};

std::string_view EntityKindName(EntityKind kind);

}  // namespace cbfww::core::query

#endif  // CBFWW_CORE_QUERY_QUERY_AST_H_
