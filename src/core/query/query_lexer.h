#ifndef CBFWW_CORE_QUERY_QUERY_LEXER_H_
#define CBFWW_CORE_QUERY_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace cbfww::core::query {

/// Token categories of the query language.
enum class TokenKind {
  kIdentifier,  // SELECT, FROM, aliases, attribute names (case-insensitive
                // keywords are classified by the parser).
  kNumber,
  kString,      // 'single' or "double" quoted.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kEq,          // =
  kNe,          // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // Identifier/keyword text (as written).
  double number = 0.0;   // kNumber value.
  size_t position = 0;   // Byte offset in the input (for error messages).
};

/// Splits a query string into tokens. Numbers may contain a thousands
/// separator comma only inside parentheses-free contexts — the paper writes
/// "200,000"; we accept digit groups joined by commas when the next group
/// is exactly 3 digits (so "LFU 10, l.path" still parses as 10 then comma).
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace cbfww::core::query

#endif  // CBFWW_CORE_QUERY_QUERY_LEXER_H_
