#ifndef CBFWW_CORE_PRIORITY_MANAGER_H_
#define CBFWW_CORE_PRIORITY_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/object_model.h"
#include "core/usage_history.h"
#include "index/index_hierarchy.h"
#include "util/clock.h"

namespace cbfww::core {

/// Tuning knobs for priority computation (paper Sections 3(4), 4.2, 5.3).
struct PriorityOptions {
  /// λ of the aging recurrence used for own-priority (access rate).
  double lambda = 0.3;
  /// Aging period (one recurrence step per period).
  SimTime aging_period = 1 * kHour;
  /// Weight of the topic-sensor hotness term in priorities.
  double topic_boost_weight = 2.0;
  /// Minimum cosine similarity for a semantic region to inform the initial
  /// priority of a new object; below this the object starts cold.
  double similarity_threshold = 0.15;
  /// Scale applied to the region's mean member priority when seeding.
  double region_prior_weight = 1.0;
};

/// Computes and maintains object priorities.
///
/// Own-priority of every object is its λ-aged access rate plus a topic
/// boost. The defining departure from LRU (paper Section 3, Priority
/// Manager): a *newly retrieved* object does not start on top — it is
/// seeded with the mean priority of the semantic region most similar to its
/// content, because ~60% of new pages are never used again.
///
/// Effective (structural) priorities follow the Figure 2 rule and are
/// computed by the Warehouse via the Combine* helpers below.
class PriorityManager {
 public:
  explicit PriorityManager(const PriorityOptions& options);

  /// Records an access to (level, id); advances its aging state.
  void RecordAccess(index::ObjectLevel level, uint64_t id, SimTime now);

  /// Current aged access rate (events per aging period), including any
  /// seeded prior.
  double OwnPriority(index::ObjectLevel level, uint64_t id, SimTime now);

  /// Seeds a newly admitted object's priority at `value` — the
  /// similarity-predicted rate.
  void SeedPriority(index::ObjectLevel level, uint64_t id, double value,
                    SimTime now);

  /// Drops all state for an object.
  void Forget(index::ObjectLevel level, uint64_t id);

  /// The paper's initial-priority rule: if the most similar region clears
  /// the similarity threshold, inherit (scaled) mean member priority;
  /// otherwise start at 0. The topic hotness of the content is always
  /// added (Section 3: "if a web page has hot topic words/phrases, the
  /// priority will be increased").
  double InitialPriority(double region_mean_priority, double similarity,
                         double topic_hotness) const;

  /// Figure 2 rule for shared components: a component's priority is the
  /// *maximum* of its containers' priorities, not the sum of raw counts.
  static Priority CombineShared(Priority container_max) {
    return container_max;
  }

  /// Containment rule for pages: an object inherits the strongest
  /// container's priority but never loses its own.
  static Priority CombineContained(Priority own, Priority container_max) {
    return own > container_max ? own : container_max;
  }

  const PriorityOptions& options() const { return options_; }

  /// One checkpointed aging counter. Entries are sorted by (level, id) so
  /// snapshots are deterministic regardless of hash-map iteration order.
  struct CounterSnapshot {
    index::ObjectLevel level;
    uint64_t id = 0;
    LambdaAgingCounter::State state;
  };

  /// Exports every counter's recurrence state, canonicalized at `now`.
  std::vector<CounterSnapshot> Snapshot(SimTime now);

  /// Replaces all counter state with `snapshot`.
  void Restore(const std::vector<CounterSnapshot>& snapshot);

 private:
  struct Key {
    index::ObjectLevel level;
    uint64_t id;
    bool operator==(const Key& o) const {
      return level == o.level && id == o.id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(k.level) << 61) ^ k.id);
    }
  };

  LambdaAgingCounter& CounterFor(const Key& key);

  PriorityOptions options_;
  std::unordered_map<Key, LambdaAgingCounter, KeyHash> counters_;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_PRIORITY_MANAGER_H_
