#include "core/priority_manager.h"

#include <algorithm>

namespace cbfww::core {

PriorityManager::PriorityManager(const PriorityOptions& options)
    : options_(options) {}

LambdaAgingCounter& PriorityManager::CounterFor(const Key& key) {
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, LambdaAgingCounter(options_.lambda,
                                              options_.aging_period))
             .first;
  }
  return it->second;
}

void PriorityManager::RecordAccess(index::ObjectLevel level, uint64_t id,
                                   SimTime now) {
  CounterFor({level, id}).RecordEvent(now);
}

double PriorityManager::OwnPriority(index::ObjectLevel level, uint64_t id,
                                    SimTime now) {
  return CounterFor({level, id}).Frequency(now);
}

void PriorityManager::SeedPriority(index::ObjectLevel level, uint64_t id,
                                   double value, SimTime now) {
  CounterFor({level, id}).SeedValue(value, now);
}

void PriorityManager::Forget(index::ObjectLevel level, uint64_t id) {
  counters_.erase({level, id});
}

std::vector<PriorityManager::CounterSnapshot> PriorityManager::Snapshot(
    SimTime now) {
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (auto& [key, counter] : counters_) {
    out.push_back(CounterSnapshot{key.level, key.id, counter.ExportState(now)});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.id < b.id;
            });
  return out;
}

void PriorityManager::Restore(const std::vector<CounterSnapshot>& snapshot) {
  counters_.clear();
  for (const auto& entry : snapshot) {
    LambdaAgingCounter counter(options_.lambda, options_.aging_period);
    counter.RestoreState(entry.state);
    counters_.emplace(Key{entry.level, entry.id}, counter);
  }
}

double PriorityManager::InitialPriority(double region_mean_priority,
                                        double similarity,
                                        double topic_hotness) const {
  double prior = 0.0;
  if (similarity >= options_.similarity_threshold) {
    prior = options_.region_prior_weight * region_mean_priority;
  }
  return prior + options_.topic_boost_weight * topic_hotness;
}

}  // namespace cbfww::core
