#ifndef CBFWW_CORE_DURABILITY_H_
#define CBFWW_CORE_DURABILITY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/object_model.h"
#include "core/storage_manager.h"
#include "durability/record_io.h"
#include "durability/wal.h"
#include "index/index_hierarchy.h"
#include "storage/hierarchy.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/status.h"

namespace cbfww::core {

class Warehouse;

/// Crash-durability configuration of one warehouse (see DESIGN.md
/// "Durability & crash recovery"). Durability is off unless `dir` is set.
struct DurabilityOptions {
  /// Directory holding the checkpoint/WAL pair. Empty: durability off.
  std::string dir;
  /// File-name stem: `<dir>/<name>.ckpt.<seq>` + `<dir>/<name>.wal.<seq>`.
  std::string name = "warehouse";
  /// Automatic checkpoint cadence, in processed trace events. 0: only
  /// explicit CheckpointNow() calls rotate the log.
  uint64_t checkpoint_every_events = 0;
  /// Write checkpoints as immutable segment files
  /// (`<dir>/<name>.seg.<seq>`, see src/segment/) instead of the flat
  /// `.ckpt.` format — a checkpoint *is* a segment, and recovery applies
  /// it zero-copy from the mmap. Recovery always accepts both formats
  /// (whichever sequence is newest wins), so flipping this flag on an
  /// existing directory is safe in either direction.
  bool segment_checkpoints = false;

  bool enabled() const { return !dir.empty(); }
};

/// What Warehouse::OpenDurability found and did.
struct RecoveryReport {
  /// True when an existing checkpoint was loaded (restart); false on a
  /// fresh directory (first boot).
  bool recovered = false;
  /// Sequence number of the checkpoint/WAL pair now live.
  uint64_t checkpoint_seq = 0;
  /// WAL frames (event batches) replayed on top of the checkpoint.
  uint64_t frames_replayed = 0;
  /// False when recovery truncated a torn or corrupt WAL tail.
  bool wal_clean = true;
  /// Bytes of WAL retained (append resumes here).
  uint64_t wal_valid_bytes = 0;
  /// Trace events the recovered warehouse has processed — equals the
  /// never-crashed prefix it is byte-equivalent to.
  uint64_t events_processed = 0;
  /// Largest data epoch seen in the log; the recovered warehouse resumes
  /// strictly above it so pre-crash cached query results can never
  /// validate.
  uint64_t max_epoch_seen = 0;
  /// True when the checkpoint that seeded recovery was a segment file
  /// (applied zero-copy from the mmap) rather than a flat `.ckpt.` file.
  bool checkpoint_from_segment = false;
};

/// Where CheckpointNow is when the test-only crash hook fires; the hook
/// returning true simulates process death at that point (the journal
/// breaks, further acks fail, and the on-disk state is left exactly as a
/// real crash would).
enum class CheckpointPhase {
  kBeforeCheckpointWrite,
  kAfterCheckpointWrite,
  kAfterWalCreate,
  kAfterOldCheckpointRemoved,
};

/// The durability engine of one warehouse: buffers every durable mutation
/// of the current event batch, commits the batch as one CRC-framed WAL
/// record (log-before-ack: StorageManager asks the journal to persist the
/// acknowledgement before flipping the flag), writes rotating checkpoints,
/// and replays checkpoint + WAL on reopen.
///
/// All emitters are no-ops unless a batch is active, so replay (which
/// drives the same warehouse mutation paths) never re-journals itself.
class WarehouseJournal : public storage::PlacementListener,
                         public AdmissionJournal {
 public:
  WarehouseJournal(Warehouse* warehouse, const DurabilityOptions& options);
  ~WarehouseJournal() override;

  /// Recover-or-init. On a fresh directory writes checkpoint 1 of the
  /// (empty) warehouse and opens WAL 1; on a restart loads the newest
  /// checkpoint, replays the WAL suffix (truncating any torn tail) and
  /// resumes appending. Installs the placement/admission hooks on success.
  Result<RecoveryReport> Open();

  /// Writes checkpoint seq+1, starts WAL seq+1, deletes the old pair.
  Status CheckpointNow();

  /// Starts buffering a batch. Returns true when this call actually opened
  /// the batch (the caller then owns the commit); false when one is
  /// already active (nested entry points).
  bool BeginBatch();
  /// Seals the buffered batch into one WAL frame and flushes it. Frames
  /// are written even when no mutation was buffered — the batch header
  /// alone keeps clock/epoch/event-count recovery exact.
  Status CommitBatch();
  bool batch_active() const { return batch_active_; }

  /// First error that broke the journal (append/commit failure). Once set,
  /// acknowledgements fail with it (no silent un-durable acks).
  const Status& last_error() const { return last_error_; }

  // --- Emitters called from Warehouse mutation paths ---
  void OnPageContact(uint64_t page);
  void OnCorpusModify(uint64_t id, SimTime time);
  void OnReference(index::ObjectLevel level, uint64_t id, SimTime time);
  void OnSeedPriority(index::ObjectLevel level, uint64_t id, double value,
                      SimTime time);
  void OnModification(index::ObjectLevel level, uint64_t id, SimTime time);
  void OnObjectVersion(const RawObjectRecord& rec);

  // --- AdmissionJournal ---
  Status OnAcknowledge(const RawObjectRecord& rec) override;
  void OnWithdraw(const RawObjectRecord& rec) override;

  // --- storage::PlacementListener ---
  void OnStore(storage::StoreObjectId id, uint64_t bytes,
               storage::TierIndex tier) override;
  void OnEvict(storage::StoreObjectId id, storage::TierIndex tier) override;
  void OnMarkStale(storage::StoreObjectId id,
                   storage::TierIndex tier) override;

  /// RAII batch scope for warehouse entry points. Only the outermost guard
  /// commits; nested guards (Tick inside ProcessEvent) are no-ops. A null
  /// journal makes the guard inert.
  class BatchGuard {
   public:
    explicit BatchGuard(WarehouseJournal* journal)
        : journal_(journal),
          owner_(journal != nullptr && journal->BeginBatch()) {}
    ~BatchGuard() {
      if (owner_) (void)journal_->CommitBatch();
    }
    BatchGuard(const BatchGuard&) = delete;
    BatchGuard& operator=(const BatchGuard&) = delete;
    bool owns_batch() const { return owner_; }

   private:
    WarehouseJournal* journal_;
    bool owner_;
  };

  const DurabilityOptions& options() const { return options_; }

  /// Installs the crash-matrix hook (tests only): consulted at each
  /// CheckpointPhase of every CheckpointNow; returning true kills the
  /// rotation there as a simulated crash. nullptr clears it.
  void set_checkpoint_crash_hook_for_test(
      std::function<bool(CheckpointPhase)> hook) {
    crash_hook_ = std::move(hook);
  }

 private:
  /// One entry of the genesis log: the ordered interleave of page first
  /// contacts and corpus modifications since time zero. Replaying it over
  /// a fresh same-seed corpus reconstructs the vectorizer DF statistics,
  /// indexes, container links and corpus text byte-exactly.
  struct GenesisOp {
    uint8_t kind = 0;  // 0: page contact, 1: corpus modify.
    uint64_t id = 0;
    SimTime time = 0;
  };

  std::string CheckpointPath(uint64_t seq) const;
  /// Segment-format checkpoint: `<dir>/<name>.seg.<seq>`.
  std::string SegmentCheckpointPath(uint64_t seq) const;
  std::string WalPath(uint64_t seq) const;

  /// Writes checkpoint `seq` in the configured format (flat file or
  /// segment).
  Status WriteCheckpoint(uint64_t seq);
  /// Loads + applies segment-format checkpoint `seq` zero-copy from its
  /// mmap. Any damage surfaces as kDataLoss.
  Status RecoverFromSegmentCheckpoint(uint64_t seq);
  /// Fires the test crash hook; when it returns true the journal is marked
  /// broken (simulated death) and this returns the abort status.
  Status MaybeCrash(CheckpointPhase phase);

  /// Serializes the full durable state (metadata, histories, priorities,
  /// placement, genesis log) as a version-1 checkpoint payload.
  std::string SerializeCheckpoint();
  Status ApplyCheckpoint(std::string_view payload);
  /// Applies one committed WAL frame's records to the warehouse.
  Status ApplyFrame(std::string_view frame);
  /// Post-replay fixups: epoch floor, poll queue, memory registry.
  void FinalizeRecovery(RecoveryReport& report);

  Warehouse* wh_;
  DurabilityOptions options_;
  durability::WalWriter wal_;
  uint64_t seq_ = 0;
  std::vector<GenesisOp> genesis_ops_;
  durability::RecordWriter batch_;
  bool batch_active_ = false;
  bool open_ = false;
  Status last_error_ = Status::Ok();
  uint64_t max_epoch_seen_ = 0;
  std::function<bool(CheckpointPhase)> crash_hook_;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_DURABILITY_H_
