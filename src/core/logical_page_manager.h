#ifndef CBFWW_CORE_LOGICAL_PAGE_MANAGER_H_
#define CBFWW_CORE_LOGICAL_PAGE_MANAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/object_model.h"
#include "corpus/web_object.h"
#include "text/term_vector.h"
#include "util/clock.h"
#include "util/hash.h"

namespace cbfww::core {

/// Supplies document content to the miner when a logical page is
/// materialized. Implemented by the Warehouse over its corpus.
class LogicalContentProvider {
 public:
  virtual ~LogicalContentProvider() = default;

  /// Anchor-text terms of the link from -> to (empty if no such link).
  virtual std::vector<text::TermId> AnchorTerms(corpus::PageId from,
                                                corpus::PageId to) const = 0;
  /// Title terms of a page.
  virtual std::vector<text::TermId> TitleTerms(corpus::PageId page) const = 0;
  /// TF-IDF vector of a page's body.
  virtual text::TermVector BodyVector(corpus::PageId page) const = 0;
  /// TF-IDF vector of a bag of terms (for anchor-text titles).
  virtual text::TermVector TermsToVector(
      const std::vector<text::TermId>& terms) const = 0;
};

/// Options for logical-document mining.
struct LogicalPageOptions {
  uint32_t min_path_length = 2;
  uint32_t max_path_length = 5;
  /// Traversal count at which a candidate path becomes a logical page.
  uint64_t support_threshold = 5;
  /// Maximum time between consecutive hops for them to count as one
  /// traversal (the paper's "within a limited time interval").
  SimTime max_hop_gap = 10 * kMinute;
  /// ω in  v = ω·v_title + v_body  (Section 5.3; "stress more on title").
  double omega = 3.0;
  /// Bound on the candidate table (lowest-support candidates are pruned).
  size_t max_candidates = 200000;
};

/// Logical Page Manager (paper Sections 4.1 and 5.2): watches per-session
/// navigation, counts traversed paths, and materializes frequently
/// traversed paths as logical page objects with content
/// <anchor texts + terminal title, terminal body>.
class LogicalPageManager {
 public:
  /// `content` is not owned and must outlive the manager.
  LogicalPageManager(const LogicalPageOptions& options,
                     const LogicalContentProvider* content);

  /// Result of observing one request.
  struct Observation {
    /// Logical pages whose full path was just completed (a "reference" to
    /// the logical document per Section 5.2).
    std::vector<LogicalPageId> completed;
    /// Logical pages newly materialized by this request.
    std::vector<LogicalPageId> materialized;
  };

  /// Feeds one request into the miner.
  Observation ObserveRequest(int64_t session, corpus::PageId page,
                             bool via_link, SimTime now);

  const std::unordered_map<LogicalPageId, LogicalPageRecord>& pages() const {
    return pages_;
  }
  LogicalPageRecord* FindPage(LogicalPageId id);
  const LogicalPageRecord* FindPage(LogicalPageId id) const;

  /// Logical pages whose path contains `page`.
  const std::vector<LogicalPageId>& PagesContaining(corpus::PageId page) const;

  /// Logical pages whose entry document is `page` (guided navigation,
  /// Section 4.1: "supporting guided navigation when a reference is
  /// detected towards the start point of a logical page path").
  std::vector<LogicalPageId> PagesStartingAt(corpus::PageId page) const;

  /// Support observed for an exact candidate path (0 if never seen).
  uint64_t CandidateSupport(const std::vector<corpus::PageId>& path) const;

  size_t num_candidates() const { return candidates_.size(); }

 private:
  struct PathHash {
    size_t operator()(const std::vector<corpus::PageId>& p) const {
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      for (corpus::PageId id : p) h = HashCombine(h, id);
      return static_cast<size_t>(h);
    }
  };
  struct SessionWindow {
    std::deque<corpus::PageId> pages;
    SimTime last_time = 0;
  };

  LogicalPageId Materialize(const std::vector<corpus::PageId>& path);
  void PruneCandidatesIfNeeded();

  LogicalPageOptions options_;
  const LogicalContentProvider* content_;
  std::unordered_map<int64_t, SessionWindow> sessions_;
  std::unordered_map<std::vector<corpus::PageId>, uint64_t, PathHash>
      candidates_;
  std::unordered_map<std::vector<corpus::PageId>, LogicalPageId, PathHash>
      path_to_id_;
  std::unordered_map<LogicalPageId, LogicalPageRecord> pages_;
  std::unordered_map<corpus::PageId, std::vector<LogicalPageId>> containing_;
  std::unordered_map<corpus::PageId, std::vector<LogicalPageId>> starting_at_;
  LogicalPageId next_id_ = 0;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_LOGICAL_PAGE_MANAGER_H_
