#ifndef CBFWW_CORE_TOPIC_H_
#define CBFWW_CORE_TOPIC_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "corpus/news_feed.h"
#include "text/term_vector.h"
#include "text/vocabulary.h"
#include "util/clock.h"

namespace cbfww::core {

/// A decaying weighted term set shared by the sensor and the manager:
/// each term's weight decays exponentially with half-life `half_life`.
class DecayingTermWeights {
 public:
  explicit DecayingTermWeights(SimTime half_life);

  /// Adds `delta` to the term's weight at time `now`.
  void Add(text::TermId term, double delta, SimTime now);

  /// Current (decayed) weight of a term.
  double WeightOf(text::TermId term, SimTime now) const;

  /// Weighted overlap between `v` and the hot-term set, normalized by
  /// ||v||: sum over terms of v_weight * hot_weight / ||v||. 0 for empty v.
  double Overlap(const text::TermVector& v, SimTime now) const;

  /// Scale-free overlap: Overlap / total decayed mass, in ~[0, 1]. Makes
  /// topic scores comparable with access rates regardless of traffic
  /// volume.
  double NormalizedOverlap(const text::TermVector& v, SimTime now) const;

  /// Sum of all decayed weights (the "mass" of the profile).
  double TotalMass(SimTime now) const;

  /// Top-k terms by current weight.
  std::vector<std::pair<text::TermId, double>> TopTerms(SimTime now,
                                                        size_t k) const;

  size_t size() const { return weights_.size(); }

  /// Removes entries whose decayed weight dropped below `epsilon`.
  void Compact(SimTime now, double epsilon = 1e-6);

 private:
  struct Cell {
    double weight = 0.0;
    SimTime updated = 0;
  };
  double Decayed(const Cell& c, SimTime now) const;

  SimTime half_life_;
  std::unordered_map<text::TermId, Cell> weights_;
  Cell total_mass_;
};

/// Topic Sensor (paper Section 3, component (3)): polls the news feed,
/// turning headlines into a decaying hot-term profile. Hot terms predict
/// imminent request bursts because news topics drive web hot spots (the
/// paper's Kyoto-inet observation).
class TopicSensor {
 public:
  struct Options {
    /// Weight contributed by each headline term occurrence.
    double headline_term_weight = 1.0;
    /// Half-life of hot-term weights (hot spots are short-lived).
    SimTime half_life = 2 * kHour;
  };

  /// `feed` is not owned; may be null (sensor stays cold).
  TopicSensor(const corpus::NewsFeed* feed, const Options& options);

  /// Ingests headlines published in [last_poll, now).
  void Poll(SimTime now);

  /// Hotness of a content vector against current hot terms (>= 0).
  double HotnessOf(const text::TermVector& v, SimTime now) const;

  std::vector<std::pair<text::TermId, double>> HotTerms(SimTime now,
                                                        size_t k) const;

  uint64_t headlines_seen() const { return headlines_seen_; }

 private:
  const corpus::NewsFeed* feed_;
  Options options_;
  DecayingTermWeights weights_;
  SimTime last_poll_ = 0;
  uint64_t headlines_seen_ = 0;
};

/// Topic Manager (paper Section 3, component (2)): maintains importance
/// weights of words/phrases from *usage* (weighted by the priority of the
/// content that used them) merged with the Topic Sensor's news-driven
/// weights. Supplies the topic-hotness term of priorities and query
/// expansion terms for the Query Processor.
class TopicManager {
 public:
  struct Options {
    SimTime half_life = 12 * kHour;
    /// Relative weight of sensor hotness vs usage-derived importance in
    /// TopicScore.
    double sensor_weight = 1.0;
    double usage_weight = 0.3;
  };

  TopicManager(const TopicSensor* sensor, const Options& options);

  /// Accumulates usage evidence: content `v` was accessed while carrying
  /// `priority`.
  void RecordUsage(const text::TermVector& v, double priority, SimTime now);

  /// Combined topic score of a content vector (sensor + usage).
  double TopicScore(const text::TermVector& v, SimTime now) const;

  /// Usage-importance top terms.
  std::vector<std::pair<text::TermId, double>> ImportantTerms(SimTime now,
                                                              size_t k) const;

 private:
  const TopicSensor* sensor_;
  Options options_;
  DecayingTermWeights usage_weights_;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_TOPIC_H_
