#ifndef CBFWW_CORE_VERSION_MANAGER_H_
#define CBFWW_CORE_VERSION_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "corpus/web_object.h"
#include "util/clock.h"
#include "util/result.h"

namespace cbfww::core {

/// One retained past version of a raw web object.
struct VersionRecord {
  uint32_t version = 0;
  /// When the warehouse captured this version.
  SimTime captured = 0;
  uint64_t bytes = 0;
};

/// Version Manager (paper Section 3, component (6)): "if there is extra
/// capacity, previous contents of web pages can be stored. A user can know
/// the data in the past." Snapshots live on the tertiary tier; the manager
/// tracks lineage and answers as-of queries.
class VersionManager {
 public:
  struct Options {
    /// Retained versions per object (oldest dropped beyond this); 0 keeps
    /// everything (truly bound-free).
    uint32_t max_versions_per_object = 16;
  };

  explicit VersionManager(const Options& options);

  /// Records that `version` of the object (of `bytes`) was observed at
  /// `now`. Idempotent for repeated captures of the same version.
  void CaptureVersion(corpus::RawId id, uint32_t version, SimTime now,
                      uint64_t bytes);

  /// Latest version captured at or before `t` ("the web as of t").
  /// kNotFound when nothing that old is retained.
  Result<VersionRecord> AsOf(corpus::RawId id, SimTime t) const;

  /// All retained versions, oldest first (empty if unknown object).
  const std::vector<VersionRecord>& VersionsOf(corpus::RawId id) const;

  /// Total bytes across all retained snapshots (the capacity cost of the
  /// version store; experiment C6).
  uint64_t TotalBytesRetained() const { return total_bytes_; }
  uint64_t num_versions() const { return num_versions_; }
  size_t num_objects() const { return versions_.size(); }

 private:
  Options options_;
  std::unordered_map<corpus::RawId, std::vector<VersionRecord>> versions_;
  uint64_t total_bytes_ = 0;
  uint64_t num_versions_ = 0;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_VERSION_MANAGER_H_
