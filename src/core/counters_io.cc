#include "core/counters_io.h"

namespace cbfww::core {

std::vector<CounterEntry> CounterEntries(const Warehouse::Counters& c) {
  return {
      {"requests", c.requests},
      {"origin_fetches", c.origin_fetches},
      {"prefetches", c.prefetches},
      {"path_prefetches", c.path_prefetches},
      {"consistency_polls", c.consistency_polls},
      {"consistency_refreshes", c.consistency_refreshes},
      {"rebalances", c.rebalances},
      {"admission_rejections", c.admission_rejections},
      {"indexed_queries", c.indexed_queries},
      {"scan_queries", c.scan_queries},
      {"query_cache_hits", c.query_cache_hits},
      {"query_cache_misses", c.query_cache_misses},
      {"prediction_cache_hits", c.prediction_cache_hits},
      {"fetch_retries", c.fetch_retries},
      {"fetch_failures", c.fetch_failures},
      {"degraded_serves", c.degraded_serves},
      {"stale_serves", c.stale_serves},
      {"summary_serves", c.summary_serves},
      {"failed_serves", c.failed_serves},
      {"poll_failures", c.poll_failures},
      {"tier_losses", c.tier_losses},
      {"tier_recoveries", c.tier_recoveries},
      {"objects_recovered", c.objects_recovered},
      {"background_time_us", static_cast<uint64_t>(c.background_time)},
  };
}

std::string CountersToJson(const Warehouse::Counters& counters) {
  std::string out = "{";
  bool first = true;
  for (const CounterEntry& e : CounterEntries(counters)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += e.name;
    out += "\":";
    out += std::to_string(e.value);
  }
  out += '}';
  return out;
}

void WriteCountersText(std::ostream& os, const Warehouse::Counters& counters) {
  for (const CounterEntry& e : CounterEntries(counters)) {
    os << e.name << '=' << e.value << '\n';
  }
}

}  // namespace cbfww::core
