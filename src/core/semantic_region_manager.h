#ifndef CBFWW_CORE_SEMANTIC_REGION_MANAGER_H_
#define CBFWW_CORE_SEMANTIC_REGION_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/streaming_kmedian.h"
#include "core/object_model.h"
#include "text/term_vector.h"
#include "util/clock.h"

namespace cbfww::core {

/// Semantic Region Manager (paper Sections 4.1 and 5.3): clusters document
/// content vectors into semantic regions R = (σ, λ) with a single-pass
/// streaming k-median, and maintains per-region priority aggregates so the
/// Priority Manager can predict the priority of a newly retrieved object
/// from the region its content falls into.
class SemanticRegionManager {
 public:
  struct Options {
    cluster::StreamingKMedianOptions clustering;
    /// Exponential-decay factor applied to region priority aggregates per
    /// decay period (keeps the prediction tracking current hot spots).
    double aggregate_decay = 0.98;
    SimTime decay_period = 1 * kHour;
  };

  explicit SemanticRegionManager(const Options& options);

  /// Assigns `v` (should be L2-normalized) to a region, creating one if the
  /// stream opens a new facility. Returns the region id.
  RegionId Assign(const text::TermVector& v);

  /// Nearest region without inserting; kInvalidRegionId when none exist.
  RegionId Nearest(const text::TermVector& v) const;

  /// Records that a member of `region` currently carries `priority`
  /// (called on accesses so the aggregate tracks live popularity).
  void RecordMemberPriority(RegionId region, Priority priority, SimTime now);

  /// Similarity-based priority prediction for new content: returns the
  /// mean member priority of the nearest region and the cosine-style
  /// similarity to its centroid (both 0 when no regions exist).
  struct Prediction {
    RegionId region = kInvalidRegionId;
    double mean_priority = 0.0;
    double similarity = 0.0;
  };
  Prediction PredictPriority(const text::TermVector& v) const;

  /// Region records (centroid, radius, aggregates).
  const std::unordered_map<RegionId, SemanticRegionRecord>& regions() const {
    return regions_;
  }
  SemanticRegionRecord* FindRegion(RegionId id);
  const SemanticRegionRecord* FindRegion(RegionId id) const;

  /// Applies pending cluster merges and refreshes centroids/radii from the
  /// underlying stream state. Call periodically (the Warehouse's Tick).
  void Sync(SimTime now);

  const cluster::StreamingKMedian& stream() const { return stream_; }

  /// Bumped whenever the region *structure* changes (a new region opens,
  /// or Sync applies merges / refreshes centroids). Priority aggregates
  /// drift between bumps, so prediction caches keyed on this epoch may
  /// serve values up to one sync period stale — acceptable for a seeding
  /// heuristic, and Sync runs every rebalance tick.
  uint64_t epoch() const { return epoch_; }

 private:
  void ApplyDecay(SemanticRegionRecord& rec, SimTime now);

  Options options_;
  cluster::StreamingKMedian stream_;
  std::unordered_map<RegionId, SemanticRegionRecord> regions_;
  std::unordered_map<RegionId, SimTime> last_decay_;
  uint64_t epoch_ = 0;
};

}  // namespace cbfww::core

#endif  // CBFWW_CORE_SEMANTIC_REGION_MANAGER_H_
