#include "core/semantic_region_manager.h"

#include <algorithm>
#include <cmath>

namespace cbfww::core {

SemanticRegionManager::SemanticRegionManager(const Options& options)
    : options_(options), stream_(options.clustering) {}

SemanticRegionRecord* SemanticRegionManager::FindRegion(RegionId id) {
  auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : &it->second;
}

const SemanticRegionRecord* SemanticRegionManager::FindRegion(
    RegionId id) const {
  auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : &it->second;
}

RegionId SemanticRegionManager::Assign(const text::TermVector& v) {
  uint32_t facility = stream_.Add(v);
  auto it = regions_.find(facility);
  if (it == regions_.end()) {
    SemanticRegionRecord rec;
    rec.id = facility;
    rec.centroid = v;
    regions_.emplace(facility, std::move(rec));
    ++epoch_;
  }
  regions_[facility].weight += 1.0;
  return facility;
}

RegionId SemanticRegionManager::Nearest(const text::TermVector& v) const {
  uint32_t facility = stream_.Nearest(v);
  return facility == UINT32_MAX ? kInvalidRegionId : facility;
}

void SemanticRegionManager::ApplyDecay(SemanticRegionRecord& rec,
                                       SimTime now) {
  auto [it, inserted] = last_decay_.try_emplace(rec.id, now);
  if (inserted) return;  // First touch: start the decay clock here.
  SimTime& last = it->second;
  while (now >= last + options_.decay_period) {
    rec.priority_sum *= options_.aggregate_decay;
    last += options_.decay_period;
  }
}

void SemanticRegionManager::RecordMemberPriority(RegionId region,
                                                 Priority priority,
                                                 SimTime now) {
  auto it = regions_.find(region);
  if (it == regions_.end()) return;
  ApplyDecay(it->second, now);
  it->second.priority_sum += priority;
  ++it->second.priority_count;
  it->second.history.RecordReference(now);
}

SemanticRegionManager::Prediction SemanticRegionManager::PredictPriority(
    const text::TermVector& v) const {
  Prediction pred;
  RegionId nearest = Nearest(v);
  if (nearest == kInvalidRegionId) return pred;
  auto it = regions_.find(nearest);
  if (it == regions_.end()) return pred;
  pred.region = nearest;
  pred.mean_priority = it->second.MeanMemberPriority();
  pred.similarity = v.Cosine(it->second.centroid);
  return pred;
}

void SemanticRegionManager::Sync(SimTime now) {
  ++epoch_;
  // 1. Replay merges: fold aggregates of absorbed regions into survivors.
  for (const cluster::MergeEvent& merge : stream_.TakeMergeEvents()) {
    auto from = regions_.find(merge.from);
    if (from == regions_.end()) continue;
    SemanticRegionRecord& into = regions_[merge.into];
    if (into.id == kInvalidRegionId) into.id = merge.into;
    ApplyDecay(from->second, now);
    ApplyDecay(into, now);
    into.weight += from->second.weight;
    into.priority_sum += from->second.priority_sum;
    into.priority_count += from->second.priority_count;
    regions_.erase(from);
    last_decay_.erase(merge.from);
  }

  // 2. Refresh centroids and weights from the live facilities; drop regions
  // whose facility vanished without a recorded merge (defensive).
  const auto& facilities = stream_.facilities();
  for (auto it = regions_.begin(); it != regions_.end();) {
    auto fit = facilities.find(it->first);
    if (fit == facilities.end()) {
      last_decay_.erase(it->first);
      it = regions_.erase(it);
      continue;
    }
    it->second.centroid = fit->second.center;
    it->second.weight = fit->second.weight;
    ++it;
  }

  // 3. Radii: mean distance proxy — facility cost is the scale at which
  // points open new facilities, so use it as the region radius λ.
  for (auto& [id, rec] : regions_) {
    (void)id;
    rec.radius = stream_.facility_cost();
  }
}

}  // namespace cbfww::core
