#ifndef CBFWW_STORAGE_DEVICE_H_
#define CBFWW_STORAGE_DEVICE_H_

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace cbfww::storage {

/// Latency/bandwidth/capacity model of one storage device.
///
/// Access time = fixed latency + bytes / bandwidth. Only the *ratios*
/// between tiers matter to the paper's argument (mem << disk << tertiary
/// << origin); the defaults below use early-2000s magnitudes to match the
/// paper's setting.
struct DeviceModel {
  std::string name;
  /// 0 means unbounded ("capacity bound-free").
  uint64_t capacity_bytes = 0;
  /// Fixed per-access latency (seek, robot arm, ...).
  SimTime access_latency = 0;
  /// Sustained bandwidth in bytes per microsecond.
  double bytes_per_us = 1.0;

  /// Simulated time to transfer `bytes` from this device.
  SimTime TransferTime(uint64_t bytes) const {
    double xfer = static_cast<double>(bytes) / bytes_per_us;
    return access_latency + static_cast<SimTime>(xfer);
  }

  /// Main memory: ~1us access, 2 GB/s.
  static DeviceModel Memory(uint64_t capacity_bytes);
  /// Magnetic disk: ~8ms seek, 60 MB/s.
  static DeviceModel Disk(uint64_t capacity_bytes);
  /// Near-line tertiary (tape/optical robot): ~8s load, 12 MB/s.
  static DeviceModel Tertiary(uint64_t capacity_bytes);
};

}  // namespace cbfww::storage

#endif  // CBFWW_STORAGE_DEVICE_H_
