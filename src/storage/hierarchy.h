#ifndef CBFWW_STORAGE_HIERARCHY_H_
#define CBFWW_STORAGE_HIERARCHY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "storage/device.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/status.h"

namespace cbfww::storage {

/// Caller-defined identifier of a stored object (the warehouse uses RawIds
/// and synthetic ids for summaries/indices).
using StoreObjectId = uint64_t;

/// Tier index within a hierarchy: 0 is fastest. Conventional layout is
/// 0 = memory, 1 = disk, 2 = tertiary (paper Figure 3).
using TierIndex = int;

constexpr TierIndex kNoTier = -1;

/// Device operations a fault policy may intercept.
enum class DeviceOp {
  kRead,
  kStore,
};

/// Verdict of a fault policy for one device access.
struct DeviceFaultDecision {
  /// The access fails (I/O error / tier unreachable).
  bool fail = false;
  /// Additional simulated latency charged to the access (latency spike).
  /// Ignored when `fail` is true.
  SimTime extra_latency = 0;
};

/// Injection seam for simulated device faults. The hierarchy consults the
/// policy on every Read (once per candidate tier, fastest first) and on
/// every Store (once for the target tier). Implementations must be
/// deterministic for reproducible runs (see fault::FaultInjector).
class DeviceFaultPolicy {
 public:
  virtual ~DeviceFaultPolicy() = default;
  virtual DeviceFaultDecision OnDeviceAccess(DeviceOp op, TierIndex tier) = 0;
};

/// Observer of successful residency mutations — the single choke point the
/// durability journal uses to capture tier placement without the storage
/// layer depending on core or durability. Refreshing an existing copy
/// (Store on a resident tier, which clears its stale mark) also notifies
/// OnStore; Migrate reports its internal Store/copy-drops through the same
/// three callbacks.
class PlacementListener {
 public:
  virtual ~PlacementListener() = default;
  virtual void OnStore(StoreObjectId id, uint64_t bytes, TierIndex tier) = 0;
  virtual void OnEvict(StoreObjectId id, TierIndex tier) = 0;
  virtual void OnMarkStale(StoreObjectId id, TierIndex tier) = 0;
};

/// Simulated multi-level store with per-tier capacity accounting, copy
/// control, and migration cost tracking (paper Sections 4.3-4.4; the
/// multi-level-store lineage is Stonebraker SIGMOD'91).
///
/// An object may be resident on several tiers at once ("data in main memory
/// have exact copies in the disk; data in the disk have back-up copies in
/// the tertiary storage"). Reads are served from the fastest resident copy.
class StorageHierarchy {
 public:
  explicit StorageHierarchy(std::vector<DeviceModel> tiers);

  StorageHierarchy(const StorageHierarchy&) = delete;
  StorageHierarchy& operator=(const StorageHierarchy&) = delete;

  /// Number of tiers.
  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  const DeviceModel& tier(TierIndex t) const { return tiers_[t]; }

  /// Adds a copy of the object at `tier`. Fails with kResourceExhausted if
  /// the tier has a capacity bound and it would be exceeded. Storing an
  /// already-resident copy refreshes it (marks it non-stale) at no cost.
  Status Store(StoreObjectId id, uint64_t bytes, TierIndex tier);

  /// Drops the copy at `tier`. kNotFound if no such copy.
  Status Evict(StoreObjectId id, TierIndex tier);

  /// Drops all copies of the object.
  void EvictAll(StoreObjectId id);

  bool IsResident(StoreObjectId id, TierIndex tier) const;

  /// Fastest tier holding a copy, or kNoTier.
  TierIndex FastestTierOf(StoreObjectId id) const;

  /// Size recorded for the object, or 0 if absent everywhere.
  uint64_t SizeOf(StoreObjectId id) const;

  /// Simulated read from the fastest resident copy. Returns the access
  /// time; kNotFound if the object is not resident anywhere.
  Result<SimTime> Read(StoreObjectId id);

  /// Detailed outcome of a read, including which tier actually served it.
  struct ReadOutcome {
    SimTime cost = 0;
    /// Tier that served the read.
    TierIndex tier = kNoTier;
    /// True when a faster resident copy failed and a slower one served the
    /// read instead (fault-induced degradation).
    bool degraded = false;
    /// True when the serving copy is marked stale.
    bool stale = false;
  };

  /// Like Read, but falls back tier by tier: when the fault policy fails
  /// the access at the fastest resident tier, the next-slower resident
  /// copy is tried (the paper's copy-control rationale). Each attempted
  /// tier charges its access cost. kNotFound if not resident anywhere;
  /// kUnavailable if every resident copy failed.
  Result<ReadOutcome> ReadWithFallback(StoreObjectId id);

  /// Ensures a copy exists at `dst`. The copy is made from the fastest
  /// current tier (cost = read src + write dst, charged to stats). When
  /// `exclusive` is true all other copies are dropped (a true move);
  /// otherwise existing copies remain (copy control for recovery).
  Status Migrate(StoreObjectId id, TierIndex dst, bool exclusive);

  /// Marks the copy at `tier` stale (e.g. tertiary backup behind newer
  /// versions). Stale copies still serve reads in weak-consistency mode.
  Status MarkStale(StoreObjectId id, TierIndex tier);
  bool IsStale(StoreObjectId id, TierIndex tier) const;

  /// Feeds one *measured* (wall-clock) read cost for a tier, in
  /// nanoseconds. The simulated DeviceModel costs above are assumptions;
  /// real backing stores (the segment store's mmap lookups) report what a
  /// cold serve actually cost, and the tier boundary can be gated on that
  /// measurement instead (PAPERS.md, cache optimization models). Smoothed
  /// with an EWMA (alpha = 1/8).
  void RecordMeasuredRead(TierIndex tier, uint64_t ns);

  /// EWMA of measured read cost at tier t (ns); 0 before any sample.
  uint64_t measured_read_ns(TierIndex t) const { return measured_read_ns_[t]; }
  /// Number of measured-read samples fed for tier t.
  uint64_t measured_read_count(TierIndex t) const {
    return measured_read_count_[t];
  }

  uint64_t used_bytes(TierIndex t) const { return used_bytes_[t]; }
  uint64_t free_bytes(TierIndex t) const;
  /// Number of objects resident at tier t.
  uint64_t resident_count(TierIndex t) const { return resident_count_[t]; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t migrations = 0;
    uint64_t bytes_migrated = 0;
    uint64_t evictions = 0;
    /// Total simulated time spent in reads (excluding migration cost).
    SimTime read_time = 0;
    /// Total simulated migration cost.
    SimTime migration_time = 0;
    /// Fault-injection accounting: accesses the policy failed, reads that
    /// were served by a slower copy after such a failure, and the total
    /// extra latency charged by injected latency spikes.
    uint64_t injected_read_faults = 0;
    uint64_t injected_store_faults = 0;
    uint64_t degraded_reads = 0;
    SimTime injected_latency = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Installs (or clears, with nullptr) the fault-injection policy. Not
  /// owned; must outlive the hierarchy or be cleared first.
  void set_fault_policy(DeviceFaultPolicy* policy) { fault_policy_ = policy; }
  DeviceFaultPolicy* fault_policy() const { return fault_policy_; }

  /// Installs (or clears, with nullptr) the placement observer. Not owned;
  /// must outlive the hierarchy or be cleared first.
  void set_placement_listener(PlacementListener* listener) {
    placement_listener_ = listener;
  }
  PlacementListener* placement_listener() const { return placement_listener_; }

  /// Options of CheckInvariants.
  struct InvariantOptions {
    /// Require the copy-control rule: every copy at a non-bottom tier is
    /// backed by a copy at some lower tier ("data in main memory have
    /// exact copies in the disk; data in the disk have back-up copies in
    /// the tertiary storage"). Objects for which `exempt` returns true are
    /// skipped (e.g. LoD summaries and indexes, which are regenerable).
    bool copy_control = false;
    std::function<bool(StoreObjectId)> exempt;
  };

  /// Verifies internal consistency: per-tier byte/object accounting
  /// matches the sum over resident objects, no tombstoned residents (an
  /// entry with no copies, or a stale mark on a non-resident tier),
  /// capacity bounds respected, and optionally the copy-control rule.
  /// Returns the first violation found.
  Status CheckInvariants(const InvariantOptions& options) const;
  Status CheckInvariants() const;

  /// All objects currently resident at tier t (unordered).
  std::vector<StoreObjectId> ObjectsAtTier(TierIndex t) const;

 private:
  struct Residency {
    uint64_t bytes = 0;
    uint32_t tier_mask = 0;   // Bit t set => copy at tier t.
    uint32_t stale_mask = 0;  // Bit t set => copy at tier t is stale.
  };

  /// Consults the fault policy (when installed) for one access.
  DeviceFaultDecision ConsultFaultPolicy(DeviceOp op, TierIndex tier);

  std::vector<DeviceModel> tiers_;
  std::unordered_map<StoreObjectId, Residency> objects_;
  std::vector<uint64_t> used_bytes_;
  std::vector<uint64_t> resident_count_;
  std::vector<uint64_t> measured_read_ns_;
  std::vector<uint64_t> measured_read_count_;
  Stats stats_;
  DeviceFaultPolicy* fault_policy_ = nullptr;
  PlacementListener* placement_listener_ = nullptr;
};

}  // namespace cbfww::storage

#endif  // CBFWW_STORAGE_HIERARCHY_H_
