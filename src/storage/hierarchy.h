#ifndef CBFWW_STORAGE_HIERARCHY_H_
#define CBFWW_STORAGE_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/device.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/status.h"

namespace cbfww::storage {

/// Caller-defined identifier of a stored object (the warehouse uses RawIds
/// and synthetic ids for summaries/indices).
using StoreObjectId = uint64_t;

/// Tier index within a hierarchy: 0 is fastest. Conventional layout is
/// 0 = memory, 1 = disk, 2 = tertiary (paper Figure 3).
using TierIndex = int;

constexpr TierIndex kNoTier = -1;

/// Simulated multi-level store with per-tier capacity accounting, copy
/// control, and migration cost tracking (paper Sections 4.3-4.4; the
/// multi-level-store lineage is Stonebraker SIGMOD'91).
///
/// An object may be resident on several tiers at once ("data in main memory
/// have exact copies in the disk; data in the disk have back-up copies in
/// the tertiary storage"). Reads are served from the fastest resident copy.
class StorageHierarchy {
 public:
  explicit StorageHierarchy(std::vector<DeviceModel> tiers);

  StorageHierarchy(const StorageHierarchy&) = delete;
  StorageHierarchy& operator=(const StorageHierarchy&) = delete;

  /// Number of tiers.
  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  const DeviceModel& tier(TierIndex t) const { return tiers_[t]; }

  /// Adds a copy of the object at `tier`. Fails with kResourceExhausted if
  /// the tier has a capacity bound and it would be exceeded. Storing an
  /// already-resident copy refreshes it (marks it non-stale) at no cost.
  Status Store(StoreObjectId id, uint64_t bytes, TierIndex tier);

  /// Drops the copy at `tier`. kNotFound if no such copy.
  Status Evict(StoreObjectId id, TierIndex tier);

  /// Drops all copies of the object.
  void EvictAll(StoreObjectId id);

  bool IsResident(StoreObjectId id, TierIndex tier) const;

  /// Fastest tier holding a copy, or kNoTier.
  TierIndex FastestTierOf(StoreObjectId id) const;

  /// Size recorded for the object, or 0 if absent everywhere.
  uint64_t SizeOf(StoreObjectId id) const;

  /// Simulated read from the fastest resident copy. Returns the access
  /// time; kNotFound if the object is not resident anywhere.
  Result<SimTime> Read(StoreObjectId id);

  /// Ensures a copy exists at `dst`. The copy is made from the fastest
  /// current tier (cost = read src + write dst, charged to stats). When
  /// `exclusive` is true all other copies are dropped (a true move);
  /// otherwise existing copies remain (copy control for recovery).
  Status Migrate(StoreObjectId id, TierIndex dst, bool exclusive);

  /// Marks the copy at `tier` stale (e.g. tertiary backup behind newer
  /// versions). Stale copies still serve reads in weak-consistency mode.
  Status MarkStale(StoreObjectId id, TierIndex tier);
  bool IsStale(StoreObjectId id, TierIndex tier) const;

  uint64_t used_bytes(TierIndex t) const { return used_bytes_[t]; }
  uint64_t free_bytes(TierIndex t) const;
  /// Number of objects resident at tier t.
  uint64_t resident_count(TierIndex t) const { return resident_count_[t]; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t migrations = 0;
    uint64_t bytes_migrated = 0;
    uint64_t evictions = 0;
    /// Total simulated time spent in reads (excluding migration cost).
    SimTime read_time = 0;
    /// Total simulated migration cost.
    SimTime migration_time = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// All objects currently resident at tier t (unordered).
  std::vector<StoreObjectId> ObjectsAtTier(TierIndex t) const;

 private:
  struct Residency {
    uint64_t bytes = 0;
    uint32_t tier_mask = 0;   // Bit t set => copy at tier t.
    uint32_t stale_mask = 0;  // Bit t set => copy at tier t is stale.
  };

  std::vector<DeviceModel> tiers_;
  std::unordered_map<StoreObjectId, Residency> objects_;
  std::vector<uint64_t> used_bytes_;
  std::vector<uint64_t> resident_count_;
  Stats stats_;
};

}  // namespace cbfww::storage

#endif  // CBFWW_STORAGE_HIERARCHY_H_
