#include "storage/device.h"

namespace cbfww::storage {

DeviceModel DeviceModel::Memory(uint64_t capacity_bytes) {
  DeviceModel d;
  d.name = "memory";
  d.capacity_bytes = capacity_bytes;
  d.access_latency = 1 * kMicrosecond;
  d.bytes_per_us = 2000.0;  // 2 GB/s
  return d;
}

DeviceModel DeviceModel::Disk(uint64_t capacity_bytes) {
  DeviceModel d;
  d.name = "disk";
  d.capacity_bytes = capacity_bytes;
  d.access_latency = 8 * kMillisecond;
  d.bytes_per_us = 60.0;  // 60 MB/s
  return d;
}

DeviceModel DeviceModel::Tertiary(uint64_t capacity_bytes) {
  DeviceModel d;
  d.name = "tertiary";
  d.capacity_bytes = capacity_bytes;
  // Near-line archive. The paper's premise is explicit: "access time of
  // disks (or even online tapes) is still shorter than time required for
  // retrieving web pages from origin servers" — so the tertiary tier must
  // sit between disk (~8ms) and an origin fetch (~250ms for a typical
  // page).
  d.access_latency = 120 * kMillisecond;
  d.bytes_per_us = 15.0;  // 15 MB/s
  return d;
}

}  // namespace cbfww::storage
