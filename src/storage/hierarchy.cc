#include "storage/hierarchy.h"

#include <cassert>

#include "util/strings.h"

namespace cbfww::storage {

StorageHierarchy::StorageHierarchy(std::vector<DeviceModel> tiers)
    : tiers_(std::move(tiers)) {
  assert(!tiers_.empty());
  assert(tiers_.size() <= 32);
  used_bytes_.assign(tiers_.size(), 0);
  resident_count_.assign(tiers_.size(), 0);
  measured_read_ns_.assign(tiers_.size(), 0);
  measured_read_count_.assign(tiers_.size(), 0);
}

void StorageHierarchy::RecordMeasuredRead(TierIndex tier, uint64_t ns) {
  if (tier < 0 || tier >= num_tiers()) return;
  if (measured_read_count_[tier] == 0) {
    measured_read_ns_[tier] = ns;
  } else {
    // EWMA, alpha = 1/8: new = old + (sample - old) / 8.
    const int64_t delta = static_cast<int64_t>(ns) -
                          static_cast<int64_t>(measured_read_ns_[tier]);
    measured_read_ns_[tier] = static_cast<uint64_t>(
        static_cast<int64_t>(measured_read_ns_[tier]) + delta / 8);
  }
  ++measured_read_count_[tier];
}

DeviceFaultDecision StorageHierarchy::ConsultFaultPolicy(DeviceOp op,
                                                         TierIndex tier) {
  if (fault_policy_ == nullptr) return DeviceFaultDecision{};
  DeviceFaultDecision d = fault_policy_->OnDeviceAccess(op, tier);
  if (d.fail) {
    if (op == DeviceOp::kRead) {
      ++stats_.injected_read_faults;
    } else {
      ++stats_.injected_store_faults;
    }
  } else if (d.extra_latency > 0) {
    stats_.injected_latency += d.extra_latency;
  }
  return d;
}

Status StorageHierarchy::Store(StoreObjectId id, uint64_t bytes,
                               TierIndex tier) {
  if (tier < 0 || tier >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", tier));
  }
  if (ConsultFaultPolicy(DeviceOp::kStore, tier).fail) {
    return Status::Unavailable(
        StrFormat("tier %d (%s) write failed (injected fault)", tier,
                  tiers_[tier].name.c_str()));
  }
  Residency& res = objects_[id];
  uint32_t bit = 1u << tier;
  if (res.tier_mask & bit) {
    // Refresh existing copy.
    res.stale_mask &= ~bit;
    if (placement_listener_ != nullptr) {
      placement_listener_->OnStore(id, res.bytes, tier);
    }
    return Status::Ok();
  }
  const DeviceModel& dev = tiers_[tier];
  if (dev.capacity_bytes != 0 && used_bytes_[tier] + bytes > dev.capacity_bytes) {
    if (res.tier_mask == 0) objects_.erase(id);
    return Status::ResourceExhausted(
        StrFormat("tier %d (%s) full: used=%llu need=%llu cap=%llu", tier,
                  dev.name.c_str(),
                  static_cast<unsigned long long>(used_bytes_[tier]),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(dev.capacity_bytes)));
  }
  if (res.tier_mask != 0 && res.bytes != bytes) {
    // Keep sizes consistent across copies; adopt the latest.
    res.bytes = bytes;
  } else {
    res.bytes = bytes;
  }
  res.tier_mask |= bit;
  res.stale_mask &= ~bit;
  used_bytes_[tier] += bytes;
  ++resident_count_[tier];
  if (placement_listener_ != nullptr) {
    placement_listener_->OnStore(id, bytes, tier);
  }
  return Status::Ok();
}

Status StorageHierarchy::Evict(StoreObjectId id, TierIndex tier) {
  if (tier < 0 || tier >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", tier));
  }
  auto it = objects_.find(id);
  uint32_t bit = 1u << tier;
  if (it == objects_.end() || !(it->second.tier_mask & bit)) {
    return Status::NotFound("no copy at tier");
  }
  it->second.tier_mask &= ~bit;
  it->second.stale_mask &= ~bit;
  used_bytes_[tier] -= it->second.bytes;
  --resident_count_[tier];
  ++stats_.evictions;
  if (it->second.tier_mask == 0) objects_.erase(it);
  if (placement_listener_ != nullptr) {
    placement_listener_->OnEvict(id, tier);
  }
  return Status::Ok();
}

void StorageHierarchy::EvictAll(StoreObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  const uint32_t mask = it->second.tier_mask;
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (mask & (1u << t)) {
      used_bytes_[t] -= it->second.bytes;
      --resident_count_[t];
      ++stats_.evictions;
    }
  }
  objects_.erase(it);
  if (placement_listener_ != nullptr) {
    for (TierIndex t = 0; t < num_tiers(); ++t) {
      if (mask & (1u << t)) placement_listener_->OnEvict(id, t);
    }
  }
}

bool StorageHierarchy::IsResident(StoreObjectId id, TierIndex tier) const {
  auto it = objects_.find(id);
  return it != objects_.end() && tier >= 0 && tier < num_tiers() &&
         (it->second.tier_mask & (1u << tier));
}

TierIndex StorageHierarchy::FastestTierOf(StoreObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return kNoTier;
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (it->second.tier_mask & (1u << t)) return t;
  }
  return kNoTier;
}

uint64_t StorageHierarchy::SizeOf(StoreObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.bytes;
}

Result<SimTime> StorageHierarchy::Read(StoreObjectId id) {
  auto outcome = ReadWithFallback(id);
  if (!outcome.ok()) return outcome.status();
  return outcome->cost;
}

Result<StorageHierarchy::ReadOutcome> StorageHierarchy::ReadWithFallback(
    StoreObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object not resident");
  const Residency& res = it->second;
  ReadOutcome outcome;
  bool any_failed = false;
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (!(res.tier_mask & (1u << t))) continue;
    DeviceFaultDecision d = ConsultFaultPolicy(DeviceOp::kRead, t);
    if (d.fail) {
      // A failed attempt still pays the device's fixed access latency (the
      // seek/robot time spent before the error surfaced).
      outcome.cost += tiers_[t].access_latency;
      any_failed = true;
      continue;  // Copy control: fall back to the next-slower copy.
    }
    outcome.cost += tiers_[t].TransferTime(res.bytes) + d.extra_latency;
    outcome.tier = t;
    outcome.degraded = any_failed;
    outcome.stale = (res.stale_mask & (1u << t)) != 0;
    ++stats_.reads;
    stats_.read_time += outcome.cost;
    if (any_failed) ++stats_.degraded_reads;
    return outcome;
  }
  return Status::Unavailable("all resident copies failed");
}

Status StorageHierarchy::Migrate(StoreObjectId id, TierIndex dst,
                                 bool exclusive) {
  if (dst < 0 || dst >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", dst));
  }
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object not resident");
  TierIndex src = FastestTierOf(id);
  uint64_t bytes = it->second.bytes;

  if (!IsResident(id, dst)) {
    // Secure the destination copy before dropping source copies so a
    // failed store (capacity, or an injected write fault) never loses the
    // object mid-move.
    CBFWW_RETURN_IF_ERROR(Store(id, bytes, dst));
    if (exclusive) {
      // Store may rehash the map; re-find the entry.
      it = objects_.find(id);
      for (TierIndex t = 0; t < num_tiers(); ++t) {
        if (t != dst && (it->second.tier_mask & (1u << t))) {
          used_bytes_[t] -= bytes;
          --resident_count_[t];
          it->second.tier_mask &= ~(1u << t);
          it->second.stale_mask &= ~(1u << t);
          if (placement_listener_ != nullptr) {
            placement_listener_->OnEvict(id, t);
          }
        }
      }
    }
    ++stats_.migrations;
    stats_.bytes_migrated += bytes;
    stats_.migration_time +=
        tiers_[src].TransferTime(bytes) + tiers_[dst].TransferTime(bytes);
    return Status::Ok();
  }

  if (exclusive) {
    for (TierIndex t = 0; t < num_tiers(); ++t) {
      if (t != dst && (it->second.tier_mask & (1u << t))) {
        used_bytes_[t] -= bytes;
        --resident_count_[t];
        it->second.tier_mask &= ~(1u << t);
        it->second.stale_mask &= ~(1u << t);
        if (placement_listener_ != nullptr) {
          placement_listener_->OnEvict(id, t);
        }
      }
    }
  }
  return Status::Ok();
}

Status StorageHierarchy::MarkStale(StoreObjectId id, TierIndex tier) {
  auto it = objects_.find(id);
  uint32_t bit = 1u << tier;
  if (it == objects_.end() || tier < 0 || tier >= num_tiers() ||
      !(it->second.tier_mask & bit)) {
    return Status::NotFound("no copy at tier");
  }
  it->second.stale_mask |= bit;
  if (placement_listener_ != nullptr) {
    placement_listener_->OnMarkStale(id, tier);
  }
  return Status::Ok();
}

bool StorageHierarchy::IsStale(StoreObjectId id, TierIndex tier) const {
  auto it = objects_.find(id);
  return it != objects_.end() && tier >= 0 && tier < num_tiers() &&
         (it->second.stale_mask & (1u << tier));
}

uint64_t StorageHierarchy::free_bytes(TierIndex t) const {
  if (tiers_[t].capacity_bytes == 0) return UINT64_MAX;
  return tiers_[t].capacity_bytes - used_bytes_[t];
}

Status StorageHierarchy::CheckInvariants() const {
  return CheckInvariants(InvariantOptions{});
}

Status StorageHierarchy::CheckInvariants(
    const InvariantOptions& options) const {
  std::vector<uint64_t> bytes_seen(tiers_.size(), 0);
  std::vector<uint64_t> count_seen(tiers_.size(), 0);
  const uint32_t valid_mask =
      num_tiers() >= 32 ? ~0u : ((1u << num_tiers()) - 1u);
  for (const auto& [id, res] : objects_) {
    if (res.tier_mask == 0) {
      return Status::Internal(
          StrFormat("tombstoned resident: object %llu has no copies",
                    static_cast<unsigned long long>(id)));
    }
    if ((res.tier_mask & ~valid_mask) != 0) {
      return Status::Internal(
          StrFormat("object %llu resident on nonexistent tier",
                    static_cast<unsigned long long>(id)));
    }
    if ((res.stale_mask & ~res.tier_mask) != 0) {
      return Status::Internal(
          StrFormat("object %llu has a stale mark on a non-resident tier",
                    static_cast<unsigned long long>(id)));
    }
    for (TierIndex t = 0; t < num_tiers(); ++t) {
      if (res.tier_mask & (1u << t)) {
        bytes_seen[t] += res.bytes;
        ++count_seen[t];
      }
    }
    if (options.copy_control &&
        (!options.exempt || !options.exempt(id))) {
      // Every copy above the bottom tier must be backed by a lower copy.
      TierIndex slowest = kNoTier;
      for (TierIndex t = 0; t < num_tiers(); ++t) {
        if (res.tier_mask & (1u << t)) slowest = t;
      }
      if (slowest != num_tiers() - 1) {
        return Status::FailedPrecondition(StrFormat(
            "copy control violated: object %llu's slowest copy is tier %d",
            static_cast<unsigned long long>(id), slowest));
      }
    }
  }
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (bytes_seen[t] != used_bytes_[t]) {
      return Status::Internal(StrFormat(
          "tier %d byte accounting off: recorded %llu, residents sum to %llu",
          t, static_cast<unsigned long long>(used_bytes_[t]),
          static_cast<unsigned long long>(bytes_seen[t])));
    }
    if (count_seen[t] != resident_count_[t]) {
      return Status::Internal(StrFormat(
          "tier %d object count off: recorded %llu, residents sum to %llu",
          t, static_cast<unsigned long long>(resident_count_[t]),
          static_cast<unsigned long long>(count_seen[t])));
    }
    if (tiers_[t].capacity_bytes != 0 &&
        used_bytes_[t] > tiers_[t].capacity_bytes) {
      return Status::Internal(
          StrFormat("tier %d over capacity: %llu > %llu", t,
                    static_cast<unsigned long long>(used_bytes_[t]),
                    static_cast<unsigned long long>(tiers_[t].capacity_bytes)));
    }
  }
  return Status::Ok();
}

std::vector<StoreObjectId> StorageHierarchy::ObjectsAtTier(TierIndex t) const {
  std::vector<StoreObjectId> out;
  for (const auto& [id, res] : objects_) {
    if (res.tier_mask & (1u << t)) out.push_back(id);
  }
  return out;
}

}  // namespace cbfww::storage
