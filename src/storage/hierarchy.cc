#include "storage/hierarchy.h"

#include <cassert>

#include "util/strings.h"

namespace cbfww::storage {

StorageHierarchy::StorageHierarchy(std::vector<DeviceModel> tiers)
    : tiers_(std::move(tiers)) {
  assert(!tiers_.empty());
  assert(tiers_.size() <= 32);
  used_bytes_.assign(tiers_.size(), 0);
  resident_count_.assign(tiers_.size(), 0);
}

Status StorageHierarchy::Store(StoreObjectId id, uint64_t bytes,
                               TierIndex tier) {
  if (tier < 0 || tier >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", tier));
  }
  Residency& res = objects_[id];
  uint32_t bit = 1u << tier;
  if (res.tier_mask & bit) {
    // Refresh existing copy.
    res.stale_mask &= ~bit;
    return Status::Ok();
  }
  const DeviceModel& dev = tiers_[tier];
  if (dev.capacity_bytes != 0 && used_bytes_[tier] + bytes > dev.capacity_bytes) {
    if (res.tier_mask == 0) objects_.erase(id);
    return Status::ResourceExhausted(
        StrFormat("tier %d (%s) full: used=%llu need=%llu cap=%llu", tier,
                  dev.name.c_str(),
                  static_cast<unsigned long long>(used_bytes_[tier]),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(dev.capacity_bytes)));
  }
  if (res.tier_mask != 0 && res.bytes != bytes) {
    // Keep sizes consistent across copies; adopt the latest.
    res.bytes = bytes;
  } else {
    res.bytes = bytes;
  }
  res.tier_mask |= bit;
  res.stale_mask &= ~bit;
  used_bytes_[tier] += bytes;
  ++resident_count_[tier];
  return Status::Ok();
}

Status StorageHierarchy::Evict(StoreObjectId id, TierIndex tier) {
  if (tier < 0 || tier >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", tier));
  }
  auto it = objects_.find(id);
  uint32_t bit = 1u << tier;
  if (it == objects_.end() || !(it->second.tier_mask & bit)) {
    return Status::NotFound("no copy at tier");
  }
  it->second.tier_mask &= ~bit;
  it->second.stale_mask &= ~bit;
  used_bytes_[tier] -= it->second.bytes;
  --resident_count_[tier];
  ++stats_.evictions;
  if (it->second.tier_mask == 0) objects_.erase(it);
  return Status::Ok();
}

void StorageHierarchy::EvictAll(StoreObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (it->second.tier_mask & (1u << t)) {
      used_bytes_[t] -= it->second.bytes;
      --resident_count_[t];
      ++stats_.evictions;
    }
  }
  objects_.erase(it);
}

bool StorageHierarchy::IsResident(StoreObjectId id, TierIndex tier) const {
  auto it = objects_.find(id);
  return it != objects_.end() && tier >= 0 && tier < num_tiers() &&
         (it->second.tier_mask & (1u << tier));
}

TierIndex StorageHierarchy::FastestTierOf(StoreObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return kNoTier;
  for (TierIndex t = 0; t < num_tiers(); ++t) {
    if (it->second.tier_mask & (1u << t)) return t;
  }
  return kNoTier;
}

uint64_t StorageHierarchy::SizeOf(StoreObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.bytes;
}

Result<SimTime> StorageHierarchy::Read(StoreObjectId id) {
  TierIndex t = FastestTierOf(id);
  if (t == kNoTier) return Status::NotFound("object not resident");
  SimTime cost = tiers_[t].TransferTime(objects_[id].bytes);
  ++stats_.reads;
  stats_.read_time += cost;
  return cost;
}

Status StorageHierarchy::Migrate(StoreObjectId id, TierIndex dst,
                                 bool exclusive) {
  if (dst < 0 || dst >= num_tiers()) {
    return Status::InvalidArgument(StrFormat("bad tier %d", dst));
  }
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object not resident");
  TierIndex src = FastestTierOf(id);
  uint64_t bytes = it->second.bytes;

  if (!IsResident(id, dst)) {
    // Check destination capacity before dropping source copies so a failed
    // exclusive move never loses the object.
    const DeviceModel& dev = tiers_[dst];
    if (dev.capacity_bytes != 0 &&
        used_bytes_[dst] + bytes > dev.capacity_bytes) {
      return Status::ResourceExhausted(
          StrFormat("tier %d (%s) full for migration", dst, dev.name.c_str()));
    }
    if (exclusive) {
      for (TierIndex t = 0; t < num_tiers(); ++t) {
        if (t != dst && (it->second.tier_mask & (1u << t))) {
          used_bytes_[t] -= bytes;
          --resident_count_[t];
          it->second.tier_mask &= ~(1u << t);
          it->second.stale_mask &= ~(1u << t);
        }
      }
    }
    CBFWW_RETURN_IF_ERROR(Store(id, bytes, dst));
    ++stats_.migrations;
    stats_.bytes_migrated += bytes;
    stats_.migration_time +=
        tiers_[src].TransferTime(bytes) + tiers_[dst].TransferTime(bytes);
    return Status::Ok();
  }

  if (exclusive) {
    for (TierIndex t = 0; t < num_tiers(); ++t) {
      if (t != dst && (it->second.tier_mask & (1u << t))) {
        used_bytes_[t] -= bytes;
        --resident_count_[t];
        it->second.tier_mask &= ~(1u << t);
        it->second.stale_mask &= ~(1u << t);
      }
    }
  }
  return Status::Ok();
}

Status StorageHierarchy::MarkStale(StoreObjectId id, TierIndex tier) {
  auto it = objects_.find(id);
  uint32_t bit = 1u << tier;
  if (it == objects_.end() || tier < 0 || tier >= num_tiers() ||
      !(it->second.tier_mask & bit)) {
    return Status::NotFound("no copy at tier");
  }
  it->second.stale_mask |= bit;
  return Status::Ok();
}

bool StorageHierarchy::IsStale(StoreObjectId id, TierIndex tier) const {
  auto it = objects_.find(id);
  return it != objects_.end() && tier >= 0 && tier < num_tiers() &&
         (it->second.stale_mask & (1u << tier));
}

uint64_t StorageHierarchy::free_bytes(TierIndex t) const {
  if (tiers_[t].capacity_bytes == 0) return UINT64_MAX;
  return tiers_[t].capacity_bytes - used_bytes_[t];
}

std::vector<StoreObjectId> StorageHierarchy::ObjectsAtTier(TierIndex t) const {
  std::vector<StoreObjectId> out;
  for (const auto& [id, res] : objects_) {
    if (res.tier_mask & (1u << t)) out.push_back(id);
  }
  return out;
}

}  // namespace cbfww::storage
