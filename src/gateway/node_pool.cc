#include "gateway/node_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace cbfww::gateway {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kUp:
      return "up";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kDown:
      return "down";
    case NodeHealth::kLeft:
      return "left";
  }
  return "unknown";
}

NodePool::NodePool(std::vector<NodeEndpoint> endpoints,
                   NodePoolOptions options)
    : options_(std::move(options)) {
  std::sort(endpoints.begin(), endpoints.end(),
            [](const NodeEndpoint& a, const NodeEndpoint& b) {
              return a.id < b.id;
            });
  nodes_.reserve(endpoints.size());
  for (NodeEndpoint& ep : endpoints) {
    auto node = std::make_unique<Node>();
    node->pool = std::make_unique<server::ClientPool>(ep.host, ep.port,
                                                      options_.pool);
    node->endpoint = std::move(ep);
    nodes_.push_back(std::move(node));
  }
  if (options_.enable_prober) StartProber();
}

NodePool::~NodePool() { StopProber(); }

NodePool::Node* NodePool::Find(std::string_view id) const {
  auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), id,
      [](const std::unique_ptr<Node>& n, std::string_view key) {
        return n->endpoint.id < key;
      });
  if (it == nodes_.end() || (*it)->endpoint.id != id) return nullptr;
  return it->get();
}

std::vector<std::string> NodePool::NodeIds() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->endpoint.id);
  return out;
}

bool NodePool::HasNode(std::string_view id) const {
  return Find(id) != nullptr;
}

NodeHealth NodePool::Health(const std::string& id) const {
  Node* node = Find(id);
  return node == nullptr
             ? NodeHealth::kLeft
             : node->health.load(std::memory_order_acquire);
}

void NodePool::SetHealth(const std::string& id, NodeHealth health) {
  Node* node = Find(id);
  if (node == nullptr) return;
  NodeHealth prev = node->health.exchange(health, std::memory_order_acq_rel);
  if (prev == health) return;
  if (health == NodeHealth::kDown || health == NodeHealth::kLeft) {
    stats_.marked_down.fetch_add(1, std::memory_order_relaxed);
    node->pool->CloseIdle();  // Dead sockets must not be handed out.
  } else if (health == NodeHealth::kUp) {
    stats_.marked_up.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> NodePool::LiveNodes() const {
  std::vector<std::string> out;
  for (const auto& node : nodes_) {
    NodeHealth h = node->health.load(std::memory_order_acquire);
    if (h == NodeHealth::kUp || h == NodeHealth::kDegraded) {
      out.push_back(node->endpoint.id);
    }
  }
  return out;
}

Result<server::ClientResponse> NodePool::RoundTrip(
    const std::string& id, std::string_view method, std::string_view target,
    std::string_view body, std::string_view extra_headers) {
  Node* node = Find(id);
  if (node == nullptr) return Status::NotFound("unknown node: " + id);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  auto lease = node->pool->Acquire();
  if (!lease.ok()) {
    stats_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    SetHealth(id, NodeHealth::kDown);
    return lease.status();
  }
  auto response =
      (*lease)->RoundTripWithRetry(method, target, body, extra_headers);
  if (!response.ok()) {
    stats_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    SetHealth(id, NodeHealth::kDown);
  }
  return response;
}

Status NodePool::ProbeOnce(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr) return Status::NotFound("unknown node: " + id);
  if (node->health.load(std::memory_order_acquire) == NodeHealth::kLeft) {
    return Status::FailedPrecondition("node left: " + id);
  }
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  // Probe on a dedicated connection, not the pool: a probe must not
  // consume (or be blocked behind) serving connections, and a down node
  // would only churn the pool.
  server::SimpleHttpClient probe(options_.pool.client);
  Status status = probe.Connect(node->endpoint.host, node->endpoint.port);
  Result<server::ClientResponse> response = status;
  if (status.ok()) response = probe.RoundTrip("GET", "/healthz");
  if (!response.ok() || response->status != 200) {
    stats_.probe_failures.fetch_add(1, std::memory_order_relaxed);
    SetHealth(id, NodeHealth::kDown);
    return response.ok()
               ? Status::Unavailable("healthz status " +
                                     std::to_string(response->status))
               : response.status();
  }
  const bool healthy =
      response->body.find("\"status\":\"ok\"") != std::string::npos;
  const NodeHealth prev = node->health.load(std::memory_order_acquire);
  SetHealth(id, healthy ? NodeHealth::kUp : NodeHealth::kDegraded);
  if (healthy && prev == NodeHealth::kDown) {
    // Recovery: hand the node everything it missed.
    FlushHints(id);
  }
  return Status::Ok();
}

void NodePool::QueueHint(const std::string& id, Hint hint) {
  Node* node = Find(id);
  if (node == nullptr) return;
  std::lock_guard<std::mutex> lock(node->hints_mu);
  if (node->hints.size() >= options_.max_hints_per_node) {
    node->hints.pop_front();
    stats_.hints_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  node->hints.push_back(std::move(hint));
  stats_.hints_queued.fetch_add(1, std::memory_order_relaxed);
}

size_t NodePool::PendingHints(const std::string& id) const {
  Node* node = Find(id);
  if (node == nullptr) return 0;
  std::lock_guard<std::mutex> lock(node->hints_mu);
  return node->hints.size();
}

size_t NodePool::FlushHints(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr) return 0;
  size_t delivered = 0;
  while (true) {
    Hint hint;
    {
      std::lock_guard<std::mutex> lock(node->hints_mu);
      if (node->hints.empty()) break;
      hint = node->hints.front();
    }
    auto lease = node->pool->Acquire();
    Result<server::ClientResponse> response =
        lease.ok() ? (*lease)->RoundTripWithRetry(hint.method, hint.target,
                                                  hint.body,
                                                  hint.extra_headers)
                   : Result<server::ClientResponse>(lease.status());
    if (!response.ok() || response->status >= 500) {
      // Still unreachable (or shedding): keep the queue, try again later.
      if (!response.ok()) SetHealth(id, NodeHealth::kDown);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(node->hints_mu);
      // Another flusher may have raced the same head; only pop our hint.
      if (!node->hints.empty()) node->hints.pop_front();
    }
    ++delivered;
    stats_.hints_replayed.fetch_add(1, std::memory_order_relaxed);
  }
  return delivered;
}

size_t NodePool::FlushAllHints() {
  size_t delivered = 0;
  for (const auto& node : nodes_) {
    if (node->health.load(std::memory_order_acquire) == NodeHealth::kLeft) {
      continue;
    }
    delivered += FlushHints(node->endpoint.id);
  }
  return delivered;
}

void NodePool::StartProber() {
  std::lock_guard<std::mutex> lock(prober_mu_);
  if (prober_running_) return;
  prober_stop_ = false;
  prober_running_ = true;
  prober_ = std::thread([this] { ProberLoop(); });
}

void NodePool::StopProber() {
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    if (!prober_running_) return;
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  prober_.join();
  std::lock_guard<std::mutex> lock(prober_mu_);
  prober_running_ = false;
}

void NodePool::ProberLoop() {
  Pcg32 rng(options_.seed, 0x9b0b);
  size_t next = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(prober_mu_);
      const double jitter =
          1.0 + options_.probe_jitter * (2.0 * rng.NextDouble() - 1.0);
      const int64_t base =
          std::max<int64_t>(1, options_.probe_interval_ms);
      const auto wait = std::chrono::milliseconds(std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(base) * jitter /
                                  std::max<size_t>(1, nodes_.size()))));
      if (prober_cv_.wait_for(lock, wait, [this] { return prober_stop_; })) {
        return;
      }
    }
    if (nodes_.empty()) continue;
    const std::string id = nodes_[next % nodes_.size()]->endpoint.id;
    next++;
    if (Health(id) != NodeHealth::kLeft) ProbeOnce(id);
  }
}

}  // namespace cbfww::gateway
