#include "gateway/hash_ring.h"

#include <algorithm>

#include "util/hash.h"

namespace cbfww::gateway {

namespace {

/// Splitmix64 finalizer. FNV-1a alone has weak avalanche: short keys that
/// share a prefix ("raw:0".."raw:63") differ only in a few low bits and
/// would cluster on one arc of the ring, all walking the same owner
/// sequence. Both ring points and lookup keys go through this mix.
uint64_t Avalanche(uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Point `v` of member `id`, spread over the whole 64-bit ring.
uint64_t PointOf(std::string_view id, uint32_t v) {
  return Avalanche(HashCombine(Fnv1a64(id), v));
}

}  // namespace

HashRing::HashRing(RingOptions options) : options_(options) {
  if (options_.virtual_nodes == 0) options_.virtual_nodes = 1;
}

void HashRing::AddNode(const std::string& node_id) {
  auto it = std::lower_bound(members_.begin(), members_.end(), node_id);
  if (it != members_.end() && *it == node_id) return;
  members_.insert(it, node_id);
  RebuildPoints();
}

void HashRing::RemoveNode(const std::string& node_id) {
  auto it = std::lower_bound(members_.begin(), members_.end(), node_id);
  if (it == members_.end() || *it != node_id) return;
  members_.erase(it);
  RebuildPoints();
}

bool HashRing::HasNode(std::string_view node_id) const {
  return std::binary_search(members_.begin(), members_.end(), node_id);
}

void HashRing::RebuildPoints() {
  points_.clear();
  points_.reserve(members_.size() * options_.virtual_nodes);
  for (uint32_t m = 0; m < members_.size(); ++m) {
    for (uint32_t v = 0; v < options_.virtual_nodes; ++v) {
      points_.emplace_back(PointOf(members_[m], v), m);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::string HashRing::PrimaryFor(std::string_view key) const {
  std::vector<std::string> one = ReplicasFor(key, 1);
  return one.empty() ? std::string() : std::move(one[0]);
}

std::vector<std::string> HashRing::ReplicasFor(std::string_view key,
                                               uint32_t replicas) const {
  std::vector<std::string> out;
  if (points_.empty() || replicas == 0) return out;
  const uint64_t h = Avalanche(Fnv1a64(key));
  size_t start = std::lower_bound(points_.begin(), points_.end(),
                                  std::make_pair(h, uint32_t{0})) -
                 points_.begin();
  const uint32_t want =
      std::min<uint32_t>(replicas, static_cast<uint32_t>(members_.size()));
  out.reserve(want);
  for (size_t step = 0; step < points_.size() && out.size() < want; ++step) {
    const std::string& id = members_[points_[(start + step) % points_.size()].second];
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<std::string, double>> HashRing::OwnershipShares()
    const {
  std::vector<std::pair<std::string, double>> shares;
  shares.reserve(members_.size());
  for (const std::string& id : members_) shares.emplace_back(id, 0.0);
  if (points_.empty()) return shares;
  // Arc ending at point i is owned by point i's member (clockwise lookup).
  const double whole = 18446744073709551616.0;  // 2^64
  for (size_t i = 0; i < points_.size(); ++i) {
    uint64_t prev = points_[i == 0 ? points_.size() - 1 : i - 1].first;
    uint64_t arc = points_[i].first - prev;  // Wraps correctly (mod 2^64).
    shares[points_[i].second].second += static_cast<double>(arc) / whole;
  }
  return shares;
}

}  // namespace cbfww::gateway
