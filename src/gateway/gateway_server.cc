#include "gateway/gateway_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/wire_format.h"
#include "util/strings.h"

namespace cbfww::gateway {

namespace {

uint64_t MonotonicMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000ull;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Response";
  }
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 19) return false;
  int64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Same conservative charset as the node side: ids travel inside heads.
std::string SanitizeRequestId(std::string_view raw) {
  std::string id;
  id.reserve(std::min<size_t>(raw.size(), 64));
  for (char c : raw) {
    if (id.size() == 64) break;
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.' ||
              c == ':';
    if (ok) id.push_back(c);
  }
  return id;
}

}  // namespace

GatewayServer::GatewayServer(std::vector<NodeEndpoint> endpoints,
                             GatewayOptions options)
    : options_(std::move(options)), ring_(options_.ring) {
  if (options_.replication == 0) options_.replication = 1;
  for (const NodeEndpoint& ep : endpoints) ring_.AddNode(ep.id);
  pool_ = std::make_unique<NodePool>(std::move(endpoints), options_.pool);
}

GatewayServer::~GatewayServer() { Stop(); }

Status GatewayServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::Ok();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::Unavailable(StrFormat("bind/listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void GatewayServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Unblock connection threads parked in poll/read.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  pool_->StopProber();
}

void GatewayServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed (Stop) or fatal.
    }
    if (open_conns_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    uint64_t id = next_conn_id_++;
    conn_fds_[id] = fd;
    conn_threads_.emplace_back([this, fd, id] {
      ConnLoop(fd);
      open_conns_.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> inner(conns_mu_);
      conn_fds_.erase(id);
    });
  }
}

void GatewayServer::ConnLoop(int fd) {
  server::HttpParser parser(options_.limits);
  std::string buf;
  size_t pos = 0;
  ConnCtx ctx;
  ctx.fd = fd;
  while (!stop_.load(std::memory_order_acquire)) {
    if (pos < buf.size()) {
      pos += parser.Consume(std::string_view(buf).substr(pos));
    }
    if (parser.failed()) {
      ctx.keep_alive = false;
      SendResponse(ctx, parser.error_status(), "application/json",
                   "{\"error\":\"" + server::JsonEscape(parser.error()) +
                       "\"}");
      break;
    }
    if (parser.done()) {
      server::HttpRequest request = parser.TakeRequest();
      parser.Reset();
      if (!HandleRequest(ctx, std::move(request))) break;
      continue;
    }
    if (pos >= buf.size()) {
      buf.clear();
      pos = 0;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int n = ::poll(&pfd, 1, static_cast<int>(options_.io_poll_ms));
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;  // Timeout: re-check stop_.
    char chunk[16384];
    ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      break;  // Peer closed or error.
    }
    buf.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
}

Status GatewayServer::WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        if (::poll(&pfd, 1, static_cast<int>(options_.io_poll_ms)) < 0 &&
            errno != EINTR) {
          return Status::Unavailable("poll for write failed");
        }
        if (stop_.load(std::memory_order_acquire)) {
          return Status::Unavailable("gateway stopping");
        }
        continue;
      }
      return Status::Unavailable(StrFormat("write: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status GatewayServer::SendResponse(ConnCtx& ctx, int status,
                                   const std::string& content_type,
                                   const std::string& body,
                                   const std::string& extra_headers) {
  if (status >= 200 && status < 300) {
    stats_.responses_2xx.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400 && status < 500) {
    stats_.responses_4xx.fetch_add(1, std::memory_order_relaxed);
  } else if (status == 503) {
    stats_.responses_503.fetch_add(1, std::memory_order_relaxed);
  }
  std::string head = StrFormat("HTTP/1.%d %d %s\r\n", ctx.version_minor,
                               status, ReasonPhrase(status));
  head += "Content-Type: " + content_type + "\r\n";
  if (!ctx.request_id.empty()) {
    head += "X-Cbfww-Request-Id: " + ctx.request_id + "\r\n";
  }
  head += extra_headers;
  head += StrFormat("Content-Length: %zu\r\n", body.size());
  head += ctx.keep_alive ? "Connection: keep-alive\r\n"
                         : "Connection: close\r\n";
  head += "\r\n";
  head += body;
  return WriteAll(ctx.fd, head);
}

Status GatewayServer::Send503(ConnCtx& ctx, const std::string& error) {
  return SendResponse(
      ctx, 503, "application/json",
      "{\"error\":\"" + server::JsonEscape(error) + "\",\"request_id\":\"" +
          ctx.request_id + "\"}",
      StrFormat("Retry-After: %d\r\n", options_.retry_after_s));
}

std::string GatewayServer::UpstreamHeaders(const ConnCtx& ctx,
                                           int64_t remaining_ms) const {
  std::string headers = "X-Cbfww-Request-Id: " + ctx.request_id + "\r\n";
  if (remaining_ms > 0) {
    headers += StrFormat("X-Deadline-Ms: %lld\r\n",
                         static_cast<long long>(remaining_ms));
  }
  return headers;
}

std::vector<std::string> GatewayServer::ReplicasForKey(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.ReplicasFor(key, options_.replication);
}

std::vector<std::string> GatewayServer::ReplicasForRaw(
    std::string_view raw_id) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.ReplicasFor("raw:" + std::string(raw_id),
                           options_.replication);
}

Status GatewayServer::NodeLeave(const std::string& id) {
  if (!pool_->HasNode(id)) return Status::NotFound("unknown node: " + id);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_.RemoveNode(id);
  }
  pool_->SetHealth(id, NodeHealth::kLeft);
  return Status::Ok();
}

Status GatewayServer::NodeJoin(const std::string& id) {
  if (!pool_->HasNode(id)) return Status::NotFound("unknown node: " + id);
  pool_->SetHealth(id, NodeHealth::kDown);  // Until the probe says up.
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_.AddNode(id);
  }
  Status probed = pool_->ProbeOnce(id);
  // ProbeOnce's down->up transition already replays hints; flush again in
  // case new hints raced the probe.
  if (probed.ok()) pool_->FlushHints(id);
  return probed;
}

bool GatewayServer::HandleRequest(ConnCtx& ctx, server::HttpRequest request) {
  stats_.requests_total.fetch_add(1, std::memory_order_relaxed);
  ctx.keep_alive = request.keep_alive;
  ctx.version_minor = request.version_minor;
  ctx.request_id = SanitizeRequestId(request.Header("x-cbfww-request-id"));
  if (ctx.request_id.empty()) {
    ctx.request_id =
        options_.request_id_prefix + "-" +
        std::to_string(
            next_request_id_.fetch_add(1, std::memory_order_relaxed));
    stats_.request_ids_stamped.fetch_add(1, std::memory_order_relaxed);
  }

  server::RequestTarget target = server::ParseTarget(request.target);
  const uint64_t start_ms = MonotonicMs();
  int64_t budget_ms = options_.default_deadline_ms;
  {
    int64_t parsed = 0;
    if (ParseI64(target.Param("deadline_ms"), &parsed) &&
        parsed > 0) {
      budget_ms = parsed;
    } else {
      std::string_view hdr = request.Header("x-deadline-ms");
      if (!hdr.empty() && ParseI64(hdr, &parsed) && parsed > 0) {
        budget_ms = parsed;
      }
    }
  }

  if (target.path == "/healthz") {
    if (request.method != "GET") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use GET\"}");
      return ctx.keep_alive;
    }
    SendResponse(ctx, 200, "application/json", HealthzJson());
    return ctx.keep_alive;
  }
  if (target.path == "/metrics") {
    if (request.method != "GET") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use GET\"}");
      return ctx.keep_alive;
    }
    SendResponse(ctx, 200, "text/plain; version=0.0.4", MetricsText());
    return ctx.keep_alive;
  }

  bool is_page = target.path.rfind("/page/", 0) == 0;
  bool is_body = target.path.rfind("/body/", 0) == 0;
  if (is_page || is_body) {
    if (request.method != "GET") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use GET\"}");
      return ctx.keep_alive;
    }
    HandleRead(ctx, request.target, target.path.substr(6), budget_ms,
               start_ms);
    return ctx.keep_alive;
  }

  if (target.path == "/query") {
    if (request.method != "POST") {
      SendResponse(ctx, 405, "application/json",
                   "{\"error\":\"use POST with the OQL text as the body\"}");
      return ctx.keep_alive;
    }
    HandleQuery(ctx, request.target, request, budget_ms, start_ms);
    return ctx.keep_alive;
  }

  if (target.path.rfind("/modify/", 0) == 0) {
    if (request.method != "POST") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use POST\"}");
      return ctx.keep_alive;
    }
    HandleModify(ctx, request.target,
                 target.path.substr(std::strlen("/modify/")), budget_ms,
                 start_ms);
    return ctx.keep_alive;
  }

  if (target.path.rfind("/admin/", 0) == 0) {
    HandleAdmin(ctx, target.path, request);
    return ctx.keep_alive;
  }

  SendResponse(ctx, 404, "application/json",
               "{\"error\":\"no such route: " +
                   server::JsonEscape(target.path) + "\"}");
  return ctx.keep_alive;
}

void GatewayServer::HandleRead(ConnCtx& ctx, const std::string& raw_target,
                               std::string_view key, int64_t budget_ms,
                               uint64_t start_ms) {
  // The failover ladder: the key's replica set (primary first), then any
  // other live node — the peer and origin rungs the degradation ladder
  // anticipated, now spanning processes.
  std::vector<std::string> replicas = ReplicasForKey(key);
  std::vector<std::string> candidates;
  candidates.reserve(replicas.size() + 2);
  for (const std::string& id : replicas) {
    NodeHealth h = pool_->Health(id);
    if (h == NodeHealth::kUp || h == NodeHealth::kDegraded) {
      candidates.push_back(id);
    }
  }
  const size_t replica_rungs = candidates.size();
  for (const std::string& id : pool_->LiveNodes()) {
    if (std::find(replicas.begin(), replicas.end(), id) == replicas.end()) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) {
    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    Send503(ctx, "no live nodes");
    return;
  }
  const std::string& primary_id =
      replicas.empty() ? candidates.front() : replicas.front();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const int64_t remaining =
        budget_ms - static_cast<int64_t>(MonotonicMs() - start_ms);
    if (remaining <= 0) {
      stats_.deadline_exhausted.fetch_add(1, std::memory_order_relaxed);
      Send503(ctx, "deadline exhausted in failover ladder");
      return;
    }
    const std::string& id = candidates[i];
    auto response = pool_->RoundTrip(id, "GET", raw_target, {},
                                     UpstreamHeaders(ctx, remaining));
    if (!response.ok() || response->status >= 500) {
      continue;  // Transport failure (marked down) or shed: next rung.
    }
    // Rung accounting: primary / peer replica / any-live-node fallback.
    const char* rung;
    if (id == primary_id) {
      rung = "primary";
      stats_.served_primary.fetch_add(1, std::memory_order_relaxed);
    } else if (i < replica_rungs) {
      rung = "peer";
      stats_.peer_failovers.fetch_add(1, std::memory_order_relaxed);
    } else {
      rung = "origin";
      stats_.origin_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    if (id != primary_id && pool_->PendingHints(primary_id) > 0 &&
        pool_->Health(primary_id) != NodeHealth::kLeft) {
      // Read-repair: a peer had to answer for the primary — try to close
      // the primary's gap right now instead of waiting for a probe.
      stats_.read_repairs.fetch_add(1, std::memory_order_relaxed);
      pool_->FlushHints(primary_id);
    }
    std::string content_type(response->Header("content-type"));
    if (content_type.empty()) content_type = "application/json";
    std::string extra = "X-Cbfww-Served-By: " + id + "\r\n";
    extra += StrFormat("X-Cbfww-Gateway-Rung: %s\r\n", rung);
    std::string_view degraded = response->Header("x-cbfww-degraded");
    if (!degraded.empty()) {
      extra += "X-Cbfww-Degraded: " + std::string(degraded) + "\r\n";
    }
    std::string_view node = response->Header("x-cbfww-node");
    if (!node.empty()) {
      extra += "X-Cbfww-Node: " + std::string(node) + "\r\n";
    }
    SendResponse(ctx, response->status, content_type, response->body, extra);
    return;
  }
  stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
  Send503(ctx, "all failover rungs exhausted");
}

void GatewayServer::HandleQuery(ConnCtx& ctx, const std::string& raw_target,
                                const server::HttpRequest& request,
                                int64_t budget_ms, uint64_t start_ms) {
  if (request.body.empty()) {
    SendResponse(ctx, 400, "application/json",
                 "{\"error\":\"empty query body\"}");
    return;
  }
  stats_.scatter_queries.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> nodes = pool_->LiveNodes();
  if (nodes.empty()) {
    Send503(ctx, "no live nodes");
    return;
  }
  const int64_t remaining =
      budget_ms - static_cast<int64_t>(MonotonicMs() - start_ms);
  if (remaining <= 0) {
    stats_.deadline_exhausted.fetch_add(1, std::memory_order_relaxed);
    Send503(ctx, "deadline exhausted before scatter");
    return;
  }
  // Scatter: one worker per live node, upstream deadline = the whole
  // remaining budget (legs run concurrently, not sequentially). Results
  // land in node order, so the merged body is deterministic given the
  // fleet's answers.
  struct Leg {
    bool ok = false;
    int status = 0;
    std::string body;
    std::string error;
  };
  std::vector<Leg> legs(nodes.size());
  std::string upstream_headers = UpstreamHeaders(ctx, remaining);
  {
    std::vector<std::thread> workers;
    workers.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      workers.emplace_back([&, i] {
        auto response = pool_->RoundTrip(nodes[i], "POST", raw_target,
                                         request.body, upstream_headers);
        if (!response.ok()) {
          legs[i].error = response.status().message();
          return;
        }
        legs[i].status = response->status;
        if (response->status == 200) {
          legs[i].ok = true;
          legs[i].body = std::move(response->body);
        } else {
          legs[i].error = "status " + std::to_string(response->status);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  size_t ok_count = 0;
  std::ostringstream os;
  os << "{\"request_id\":\"" << ctx.request_id << "\",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"node\":\"" << server::JsonEscape(nodes[i]) << "\"";
    if (legs[i].ok) {
      ++ok_count;
      os << ",\"ok\":true,\"result\":" << legs[i].body;
    } else {
      stats_.scatter_node_errors.fetch_add(1, std::memory_order_relaxed);
      os << ",\"ok\":false,\"error\":\"" << server::JsonEscape(legs[i].error)
         << "\"";
      if (legs[i].status != 0) os << ",\"status\":" << legs[i].status;
    }
    os << "}";
  }
  os << "],\"nodes_ok\":" << ok_count
     << ",\"nodes_failed\":" << (nodes.size() - ok_count) << "}";
  if (ok_count == 0) {
    // All-4xx means the request itself is bad (e.g. malformed OQL) — the
    // client's fault, not the fleet's.
    bool all_client_errors = true;
    for (const Leg& leg : legs) {
      if (leg.status < 400 || leg.status >= 500) {
        all_client_errors = false;
        break;
      }
    }
    if (all_client_errors && !legs.empty()) {
      SendResponse(ctx, 400, "application/json", os.str());
    } else {
      Send503(ctx, "query failed on every live node");
    }
    return;
  }
  SendResponse(ctx, 200, "application/json", os.str());
}

void GatewayServer::HandleModify(ConnCtx& ctx, const std::string& raw_target,
                                 std::string_view raw_id, int64_t budget_ms,
                                 uint64_t start_ms) {
  // Write-through replication: the modification goes to every non-left
  // node (any node may embed the raw object in pages it owns), but the
  // acknowledgement contract is the ring's R designated replicas — the
  // 202 means "R real processes hold this", which is what survives a
  // node kill. Unreachable nodes get hinted handoff instead.
  std::vector<std::string> required = ReplicasForRaw(raw_id);
  std::vector<std::string> all = pool_->NodeIds();
  size_t delivered = 0;
  std::vector<std::string> hinted;
  std::vector<std::string> failed_required;
  for (const std::string& id : all) {
    NodeHealth health = pool_->Health(id);
    if (health == NodeHealth::kLeft) continue;
    const bool is_required =
        std::find(required.begin(), required.end(), id) != required.end();
    const int64_t remaining =
        budget_ms - static_cast<int64_t>(MonotonicMs() - start_ms);
    bool sent = false;
    if (health != NodeHealth::kDown && remaining > 0) {
      auto response = pool_->RoundTrip(id, "POST", raw_target, {},
                                       UpstreamHeaders(ctx, remaining));
      sent = response.ok() && response->status < 500;
    }
    if (sent) {
      ++delivered;
      continue;
    }
    if (is_required) {
      failed_required.push_back(id);
    }
    // Either way the node must converge eventually: queue the mutation
    // for replay when it comes back (or when an admin flushes).
    pool_->QueueHint(id, NodePool::Hint{"POST", raw_target, "",
                                        "X-Cbfww-Request-Id: " +
                                            ctx.request_id + "\r\n"});
    hinted.push_back(id);
    stats_.write_hints_queued.fetch_add(1, std::memory_order_relaxed);
  }
  std::ostringstream os;
  os << "{\"modified\":\"" << server::JsonEscape(raw_id) << "\",\"required\":[";
  for (size_t i = 0; i < required.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << server::JsonEscape(required[i]) << "\"";
  }
  os << "],\"delivered\":" << delivered << ",\"hinted\":" << hinted.size()
     << ",\"request_id\":\"" << ctx.request_id << "\"";
  if (!failed_required.empty()) {
    stats_.writes_unacked.fetch_add(1, std::memory_order_relaxed);
    os << ",\"acked\":false,\"failed_required\":[";
    for (size_t i = 0; i < failed_required.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << server::JsonEscape(failed_required[i]) << "\"";
    }
    os << "]}";
    SendResponse(ctx, 503, "application/json", os.str(),
                 StrFormat("Retry-After: %d\r\n", options_.retry_after_s));
    return;
  }
  stats_.writes_acked.fetch_add(1, std::memory_order_relaxed);
  os << ",\"acked\":true}";
  SendResponse(ctx, 202, "application/json", os.str());
}

void GatewayServer::HandleAdmin(ConnCtx& ctx, const std::string& path,
                                const server::HttpRequest& request) {
  if (path == "/admin/nodes") {
    if (request.method != "GET") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use GET\"}");
      return;
    }
    SendResponse(ctx, 200, "application/json", NodesJson());
    return;
  }
  if (path == "/admin/flush-hints") {
    if (request.method != "POST") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use POST\"}");
      return;
    }
    size_t delivered = pool_->FlushAllHints();
    SendResponse(ctx, 200, "application/json",
                 StrFormat("{\"hints_delivered\":%zu}", delivered));
    return;
  }
  // /admin/node/<id>/leave|join
  const std::string prefix = "/admin/node/";
  if (path.rfind(prefix, 0) == 0) {
    if (request.method != "POST") {
      SendResponse(ctx, 405, "application/json", "{\"error\":\"use POST\"}");
      return;
    }
    std::string rest = path.substr(prefix.size());
    size_t slash = rest.rfind('/');
    if (slash == std::string::npos) {
      SendResponse(ctx, 404, "application/json",
                   "{\"error\":\"use /admin/node/<id>/leave|join\"}");
      return;
    }
    std::string id = rest.substr(0, slash);
    std::string action = rest.substr(slash + 1);
    Status status;
    if (action == "leave") {
      status = NodeLeave(id);
    } else if (action == "join") {
      status = NodeJoin(id);
    } else {
      SendResponse(ctx, 404, "application/json",
                   "{\"error\":\"unknown node action: " +
                       server::JsonEscape(action) + "\"}");
      return;
    }
    if (!status.ok() && status.code() == StatusCode::kNotFound) {
      SendResponse(ctx, 404, "application/json",
                   "{\"error\":\"" + server::JsonEscape(status.message()) +
                       "\"}");
      return;
    }
    // A join whose probe failed still joined the ring; report the state.
    SendResponse(ctx, 200, "application/json", NodesJson());
    return;
  }
  SendResponse(ctx, 404, "application/json",
               "{\"error\":\"no such admin route: " +
                   server::JsonEscape(path) + "\"}");
}

std::string GatewayServer::NodesJson() {
  std::ostringstream os;
  os << "{\"replication\":" << options_.replication << ",\"nodes\":[";
  std::vector<std::string> ids = pool_->NodeIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << ",";
    bool in_ring;
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      in_ring = ring_.HasNode(ids[i]);
    }
    os << "{\"node\":\"" << server::JsonEscape(ids[i]) << "\",\"health\":\""
       << NodeHealthName(pool_->Health(ids[i])) << "\",\"in_ring\":"
       << (in_ring ? "true" : "false")
       << ",\"pending_hints\":" << pool_->PendingHints(ids[i]) << "}";
  }
  os << "]}";
  return os.str();
}

std::string GatewayServer::HealthzJson() {
  std::vector<std::string> live = pool_->LiveNodes();
  std::ostringstream os;
  os << "{\"status\":\"" << (live.empty() ? "down" : "ok")
     << "\",\"role\":\"gateway\",\"live_nodes\":" << live.size()
     << ",\"nodes\":[";
  std::vector<std::string> ids = pool_->NodeIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"node\":\"" << server::JsonEscape(ids[i]) << "\",\"health\":\""
       << NodeHealthName(pool_->Health(ids[i])) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string GatewayServer::MetricsText() {
  const NodePoolStats& pool_stats = pool_->stats();
  std::ostringstream os;
  os << "# HELP cbfww_gateway_up Gateway liveness.\n"
     << "# TYPE cbfww_gateway_up gauge\ncbfww_gateway_up 1\n";
  os << "# TYPE cbfww_gateway_requests_total counter\n"
     << "cbfww_gateway_requests_total "
     << stats_.requests_total.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_responses_total counter\n"
     << "cbfww_gateway_responses_total{code=\"2xx\"} "
     << stats_.responses_2xx.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_responses_total{code=\"4xx\"} "
     << stats_.responses_4xx.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_responses_total{code=\"503\"} "
     << stats_.responses_503.load(std::memory_order_relaxed) << "\n";
  os << "# HELP cbfww_gateway_read_rung_total Reads answered per failover "
        "rung (primary replica, peer replica, any live node).\n"
     << "# TYPE cbfww_gateway_read_rung_total counter\n"
     << "cbfww_gateway_read_rung_total{rung=\"primary\"} "
     << stats_.served_primary.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_read_rung_total{rung=\"peer\"} "
     << stats_.peer_failovers.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_read_rung_total{rung=\"origin\"} "
     << stats_.origin_fallbacks.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_unavailable_total counter\n"
     << "cbfww_gateway_unavailable_total "
     << stats_.unavailable.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_deadline_exhausted_total counter\n"
     << "cbfww_gateway_deadline_exhausted_total "
     << stats_.deadline_exhausted.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_writes_total counter\n"
     << "cbfww_gateway_writes_total{result=\"acked\"} "
     << stats_.writes_acked.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_writes_total{result=\"unacked\"} "
     << stats_.writes_unacked.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_scatter_queries_total counter\n"
     << "cbfww_gateway_scatter_queries_total "
     << stats_.scatter_queries.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_scatter_node_errors_total counter\n"
     << "cbfww_gateway_scatter_node_errors_total "
     << stats_.scatter_node_errors.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_read_repairs_total counter\n"
     << "cbfww_gateway_read_repairs_total "
     << stats_.read_repairs.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_request_ids_stamped_total counter\n"
     << "cbfww_gateway_request_ids_stamped_total "
     << stats_.request_ids_stamped.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_hints_total counter\n"
     << "cbfww_gateway_hints_total{event=\"queued\"} "
     << pool_stats.hints_queued.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_hints_total{event=\"replayed\"} "
     << pool_stats.hints_replayed.load(std::memory_order_relaxed) << "\n"
     << "cbfww_gateway_hints_total{event=\"dropped\"} "
     << pool_stats.hints_dropped.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_upstream_round_trips_total counter\n"
     << "cbfww_gateway_upstream_round_trips_total "
     << pool_stats.round_trips.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_upstream_transport_errors_total counter\n"
     << "cbfww_gateway_upstream_transport_errors_total "
     << pool_stats.transport_errors.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE cbfww_gateway_probes_total counter\n"
     << "cbfww_gateway_probes_total "
     << pool_stats.probes.load(std::memory_order_relaxed) << "\n"
     << "# TYPE cbfww_gateway_probe_failures_total counter\n"
     << "cbfww_gateway_probe_failures_total "
     << pool_stats.probe_failures.load(std::memory_order_relaxed) << "\n";
  os << "# HELP cbfww_gateway_node_health Health of each upstream node "
        "(0=up, 1=degraded, 2=down, 3=left).\n"
     << "# TYPE cbfww_gateway_node_health gauge\n";
  for (const std::string& id : pool_->NodeIds()) {
    os << "cbfww_gateway_node_health{node=\"" << id << "\"} "
       << static_cast<int>(pool_->Health(id)) << "\n";
  }
  os << "# TYPE cbfww_gateway_pending_hints gauge\n";
  for (const std::string& id : pool_->NodeIds()) {
    os << "cbfww_gateway_pending_hints{node=\"" << id << "\"} "
       << pool_->PendingHints(id) << "\n";
  }
  return os.str();
}

}  // namespace cbfww::gateway
