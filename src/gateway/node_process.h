#ifndef CBFWW_GATEWAY_NODE_PROCESS_H_
#define CBFWW_GATEWAY_NODE_PROCESS_H_

#include <cstdint>
#include <string>

#include <sys/types.h>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "server/http_server.h"
#include "util/result.h"
#include "util/status.h"

namespace cbfww::gateway {

/// Configuration of one forked warehouse node.
struct NodeProcessOptions {
  /// Server identity: responses carry X-Cbfww-Node and /healthz reports it.
  std::string node_id = "node";
  corpus::CorpusOptions corpus;
  /// Per-node cluster (set durability.dir for crash-recoverable nodes —
  /// each node must get its OWN directory).
  cluster::ClusterOptions cluster;
  server::ServerOptions server;
};

/// A real warehouse server running in a forked child process — the only
/// honest way to test node-failure failover: SIGKILL takes the whole
/// process (threads, sockets, page cache view), exactly like a crashed
/// node, which no in-process Stop() can imitate.
///
/// Spawn() forks without exec: the child constructs its own
/// WarehouseCluster + HttpServer (recovering from durability.dir when
/// set), reports the bound port back over a pipe, and serves until
/// SIGTERM (graceful drain) or SIGKILL. The parent must treat the
/// returned object as the sole handle: the destructor kills and reaps a
/// still-running child.
///
/// Fork-safety: call Spawn() before the parent creates unrelated threads
/// where possible; the child executes only freshly-constructed state.
class NodeProcess {
 public:
  /// Forks and boots a node; blocks until the child reports its port (or
  /// dies trying).
  static Result<NodeProcess> Spawn(const NodeProcessOptions& options);

  NodeProcess() = default;
  ~NodeProcess();

  NodeProcess(NodeProcess&& other) noexcept;
  NodeProcess& operator=(NodeProcess&& other) noexcept;
  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  pid_t pid() const { return pid_; }
  uint16_t port() const { return port_; }
  bool running() const { return pid_ > 0; }

  /// SIGKILL + reap: the crash case. Idempotent.
  void Kill();
  /// SIGTERM + reap: the graceful case (child drains via
  /// InstallSignalDrain). Idempotent.
  void Terminate();

 private:
  NodeProcess(pid_t pid, uint16_t port) : pid_(pid), port_(port) {}
  void Signal(int signo);

  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

}  // namespace cbfww::gateway

#endif  // CBFWW_GATEWAY_NODE_PROCESS_H_
