#ifndef CBFWW_GATEWAY_NODE_POOL_H_
#define CBFWW_GATEWAY_NODE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/client_pool.h"
#include "server/http_client.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace cbfww::gateway {

/// Health ladder of one upstream node, as the gateway sees it.
enum class NodeHealth : uint8_t {
  kUp = 0,
  /// Answering /healthz but draining or overloaded: kept out of the read
  /// path when an up replica exists, still written through.
  kDegraded,
  /// Transport failures or failed probes: skipped until a probe (or a
  /// successful hint replay) brings it back.
  kDown,
  /// Administratively removed (node leave); only a join re-admits it.
  kLeft,
};
const char* NodeHealthName(NodeHealth health);

struct NodeEndpoint {
  std::string id;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct NodePoolOptions {
  /// Per-node keep-alive pool configuration (timeouts + retry policy ride
  /// in pool.client).
  server::ClientPoolOptions pool;
  /// Background /healthz prober. Off by default: deterministic tests
  /// drive ProbeOnce explicitly and rely on passive down-detection.
  bool enable_prober = false;
  int64_t probe_interval_ms = 250;
  /// Probe sleep is multiplied by uniform [1-jitter, 1+jitter] per node
  /// (decorrelates probes across gateways).
  double probe_jitter = 0.3;
  /// Seeds probe jitter.
  uint64_t seed = 0x90de;
  /// Hints retained per node before the oldest is dropped (bounded queue;
  /// drops are counted, never silent).
  size_t max_hints_per_node = 4096;
};

/// Lifetime counters (atomic; scraped by the gateway's /metrics).
struct NodePoolStats {
  std::atomic<uint64_t> round_trips{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> probe_failures{0};
  std::atomic<uint64_t> marked_down{0};
  std::atomic<uint64_t> marked_up{0};
  std::atomic<uint64_t> hints_queued{0};
  std::atomic<uint64_t> hints_replayed{0};
  std::atomic<uint64_t> hints_dropped{0};
};

/// The gateway's view of its upstream fleet: one keep-alive ClientPool
/// per node, a health state driven by /healthz probes and passive
/// transport outcomes, and a per-node hinted-handoff queue of mutations
/// the node missed while unreachable.
///
/// Thread-safe; RoundTrip runs concurrently from the gateway's connection
/// threads and the prober.
class NodePool {
 public:
  NodePool(std::vector<NodeEndpoint> endpoints, NodePoolOptions options);
  ~NodePool();

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  std::vector<std::string> NodeIds() const;  // All, sorted, any health.
  bool HasNode(std::string_view id) const;

  /// One HTTP round trip to node `id` over its pool (RoundTripWithRetry
  /// semantics within the node). A transport failure marks the node down
  /// (passive detection) and drops its idle connections.
  Result<server::ClientResponse> RoundTrip(const std::string& id,
                                           std::string_view method,
                                           std::string_view target,
                                           std::string_view body = {},
                                           std::string_view extra_headers = {});

  NodeHealth Health(const std::string& id) const;
  void SetHealth(const std::string& id, NodeHealth health);
  /// Nodes whose health is kUp or kDegraded, sorted by id.
  std::vector<std::string> LiveNodes() const;

  /// Probes `id`'s /healthz once and applies the result: ok -> kUp,
  /// draining/overloaded -> kDegraded, unreachable/non-200 -> kDown.
  /// A down->up transition replays the node's queued hints.
  Status ProbeOnce(const std::string& id);

  /// Jittered background probe loop over all nodes (no-op when
  /// enable_prober is false or already started).
  void StartProber();
  void StopProber();

  /// Queues a missed mutation for replay when `id` recovers. The queue is
  /// bounded (oldest dropped, counted in hints_dropped).
  struct Hint {
    std::string method;
    std::string target;
    std::string body;
    std::string extra_headers;
  };
  void QueueHint(const std::string& id, Hint hint);
  size_t PendingHints(const std::string& id) const;

  /// Replays `id`'s queued hints in order; stops at the first failure
  /// (remaining hints stay queued). Returns hints delivered.
  size_t FlushHints(const std::string& id);
  /// FlushHints over every non-left node; returns total delivered.
  size_t FlushAllHints();

  const NodePoolStats& stats() const { return stats_; }

 private:
  struct Node {
    NodeEndpoint endpoint;
    std::unique_ptr<server::ClientPool> pool;
    std::atomic<NodeHealth> health{NodeHealth::kUp};
    /// Guards the hint queue (health is atomic; the pool locks itself).
    std::mutex hints_mu;
    std::deque<Hint> hints;
  };

  Node* Find(std::string_view id) const;
  void ProberLoop();

  NodePoolOptions options_;
  /// Fixed at construction (join/leave flips health, never membership —
  /// the fleet roster is configuration, liveness is state).
  std::vector<std::unique_ptr<Node>> nodes_;  // Sorted by endpoint.id.
  NodePoolStats stats_;

  std::thread prober_;
  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  bool prober_running_ = false;
};

}  // namespace cbfww::gateway

#endif  // CBFWW_GATEWAY_NODE_POOL_H_
