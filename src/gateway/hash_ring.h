#ifndef CBFWW_GATEWAY_HASH_RING_H_
#define CBFWW_GATEWAY_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbfww::gateway {

struct RingOptions {
  /// Virtual nodes (points) per member. More points = better balance at
  /// O(points) membership-change cost; 64 keeps the max/min key share
  /// under ~1.4x for small clusters.
  uint32_t virtual_nodes = 64;
};

/// Consistent-hash ring with virtual nodes. Each member contributes
/// `virtual_nodes` points derived only from its own id, so adding or
/// removing a member never moves a key between two surviving members —
/// the stability property the gateway's replica placement depends on.
///
/// Not thread-safe; the gateway guards it with its membership mutex.
class HashRing {
 public:
  explicit HashRing(RingOptions options = {});

  /// Idempotent; point positions depend only on `node_id`.
  void AddNode(const std::string& node_id);
  void RemoveNode(const std::string& node_id);
  bool HasNode(std::string_view node_id) const;

  /// Member ids, sorted (deterministic iteration for scatter-gather).
  const std::vector<std::string>& nodes() const { return members_; }
  size_t num_nodes() const { return members_.size(); }
  size_t num_points() const { return points_.size(); }

  /// Owner of `key`: the first point clockwise from hash(key). Empty
  /// string when the ring is empty.
  std::string PrimaryFor(std::string_view key) const;

  /// The first min(replicas, num_nodes) DISTINCT members clockwise from
  /// hash(key), primary first — the replica set for `key`.
  std::vector<std::string> ReplicasFor(std::string_view key,
                                       uint32_t replicas) const;

  /// Fraction of the keyspace owned by each member (diagnostics/tests).
  std::vector<std::pair<std::string, double>> OwnershipShares() const;

 private:
  void RebuildPoints();

  RingOptions options_;
  std::vector<std::string> members_;  // Sorted.
  /// (point, index into members_), sorted by point.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace cbfww::gateway

#endif  // CBFWW_GATEWAY_HASH_RING_H_
