#ifndef CBFWW_GATEWAY_GATEWAY_SERVER_H_
#define CBFWW_GATEWAY_GATEWAY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gateway/hash_ring.h"
#include "gateway/node_pool.h"
#include "server/http_parser.h"
#include "util/status.h"

namespace cbfww::gateway {

struct GatewayOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  int backlog = 64;
  size_t max_connections = 512;
  /// Acknowledged-object replication factor R: a /modify is acked (202)
  /// only once the key's R ring-designated replicas all accepted it.
  uint32_t replication = 2;
  RingOptions ring;
  NodePoolOptions pool;
  /// Per-request budget when the client sends neither ?deadline_ms= nor
  /// X-Deadline-Ms. The remaining budget is propagated upstream on every
  /// failover rung.
  int64_t default_deadline_ms = 2000;
  int retry_after_s = 1;
  server::ParserLimits limits;
  /// Generated request ids are `<prefix>-<counter>` (deterministic).
  std::string request_id_prefix = "gw";
  /// Blocking-IO granularity for connection reads/writes; Stop() latency
  /// is bounded by it.
  int64_t io_poll_ms = 100;
};

/// Gateway lifetime counters (atomics; /metrics scrapes them).
struct GatewayStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> responses_2xx{0};
  std::atomic<uint64_t> responses_4xx{0};
  std::atomic<uint64_t> responses_503{0};
  /// Reads answered by the key's primary replica.
  std::atomic<uint64_t> served_primary{0};
  /// Reads that failed over to a non-primary replica (the peer rung).
  std::atomic<uint64_t> peer_failovers{0};
  /// Reads that fell through the replica set to any live node (the origin
  /// rung of the gateway ladder).
  std::atomic<uint64_t> origin_fallbacks{0};
  /// Reads for which every rung failed (503 to the client).
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> deadline_exhausted{0};
  std::atomic<uint64_t> scatter_queries{0};
  std::atomic<uint64_t> scatter_node_errors{0};
  std::atomic<uint64_t> writes_acked{0};
  std::atomic<uint64_t> writes_unacked{0};
  std::atomic<uint64_t> write_hints_queued{0};
  /// Peer-rung hits that triggered a hint replay toward the primary.
  std::atomic<uint64_t> read_repairs{0};
  std::atomic<uint64_t> request_ids_stamped{0};
};

/// HTTP front-end over N warehouse server processes: consistent-hash
/// routing with an R-replica failover ladder for reads, write-through
/// replication with hinted handoff for /modify, scatter-gather for
/// /query, and node join/leave. Blocking thread-per-connection IO — the
/// gateway's work is waiting on upstreams, and its connection count is
/// the handful of load-generator/driver sockets, not the nodes' fan-in.
///
/// Routes:
///   GET  /healthz                      gateway + fleet health JSON
///   GET  /metrics                      Prometheus text
///   GET  /page/<key>?... | /body/<key> route to owner; failover ladder
///                                      primary -> peers -> any live node
///   POST /query                        scatter to all live nodes, merge
///                                      with per-node error slots
///   POST /modify/<raw-id>?t=           write-through to the fleet; 202
///                                      iff all R designated replicas ack
///   GET  /admin/nodes                  fleet table JSON
///   POST /admin/node/<id>/leave|join   membership (ring + health)
///   POST /admin/flush-hints            replay all queued hints now
///
/// Every ingress request is stamped with X-Cbfww-Request-Id (client value
/// propagated, else generated) and the id travels to every upstream hop
/// and back on the gateway's own response.
class GatewayServer {
 public:
  GatewayServer(std::vector<NodeEndpoint> endpoints, GatewayOptions options);
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  Status Start();
  void Stop();
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  NodePool& pool() { return *pool_; }
  const GatewayStats& stats() const { return stats_; }
  uint32_t replication() const { return options_.replication; }

  /// Replica set the ring currently assigns to a read key (test hook;
  /// takes the membership lock).
  std::vector<std::string> ReplicasForKey(std::string_view key) const;
  /// Replica set for a /modify raw-object id.
  std::vector<std::string> ReplicasForRaw(std::string_view raw_id) const;

  /// Membership: leave removes the node from the ring and marks it kLeft
  /// (its keyspace hands off to the ring successors); join re-adds it,
  /// probes it, and replays its queued hints.
  Status NodeLeave(const std::string& id);
  Status NodeJoin(const std::string& id);

 private:
  struct ConnCtx {
    int fd = -1;
    bool keep_alive = true;
    int version_minor = 1;
    std::string request_id;
  };

  void AcceptLoop();
  void ConnLoop(int fd);
  /// Handles one parsed request; returns false when the connection must
  /// close.
  bool HandleRequest(ConnCtx& ctx, server::HttpRequest request);

  void HandleRead(ConnCtx& ctx, const std::string& raw_target,
                  std::string_view key, int64_t budget_ms, uint64_t start_ms);
  void HandleQuery(ConnCtx& ctx, const std::string& raw_target,
                   const server::HttpRequest& request, int64_t budget_ms,
                   uint64_t start_ms);
  void HandleModify(ConnCtx& ctx, const std::string& raw_target,
                    std::string_view raw_id, int64_t budget_ms,
                    uint64_t start_ms);
  void HandleAdmin(ConnCtx& ctx, const std::string& path,
                   const server::HttpRequest& request);

  std::string HealthzJson();
  std::string NodesJson();
  std::string MetricsText();

  /// Upstream headers for one hop: request id + remaining deadline.
  std::string UpstreamHeaders(const ConnCtx& ctx, int64_t remaining_ms) const;

  Status SendResponse(ConnCtx& ctx, int status,
                      const std::string& content_type, const std::string& body,
                      const std::string& extra_headers = {});
  Status Send503(ConnCtx& ctx, const std::string& error);
  Status WriteAll(int fd, std::string_view data);

  GatewayOptions options_;
  GatewayStats stats_;
  std::unique_ptr<NodePool> pool_;

  mutable std::mutex ring_mu_;
  HashRing ring_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::map<uint64_t, int> conn_fds_;
  uint64_t next_conn_id_ = 1;
  std::vector<std::thread> conn_threads_;
  std::atomic<size_t> open_conns_{0};

  std::atomic<uint64_t> next_request_id_{1};
};

}  // namespace cbfww::gateway

#endif  // CBFWW_GATEWAY_GATEWAY_SERVER_H_
