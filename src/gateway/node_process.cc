#include "gateway/node_process.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

namespace cbfww::gateway {

namespace {

/// Reads exactly `len` bytes (the child's port report) or fails.
bool ReadFull(int fd, void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd, p + off, len - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<NodeProcess> NodeProcess::Spawn(const NodeProcessOptions& options) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // === Child: a whole warehouse node. Never returns. ===
    ::close(pipe_fds[0]);
    // A dying gateway/test must not leave orphans: default SIGTERM kills
    // us, and the parent's destructor reaps. Build everything fresh —
    // recovery from options.cluster.durability.dir happens here, so a
    // re-spawned node resumes from its own checkpoint/WAL.
    {
      cluster::WarehouseCluster cluster(options.corpus, std::nullopt,
                                        options.cluster);
      if (!cluster.durability_status().ok()) _exit(3);
      server::ServerOptions server_options = options.server;
      server_options.node_id = options.node_id;
      server_options.port = 0;  // Always ephemeral; the pipe reports it.
      server::HttpServer server(&cluster, server_options);
      if (!server.Start().ok()) _exit(2);
      const uint16_t port = server.port();
      if (::write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) {
        _exit(2);
      }
      ::close(pipe_fds[1]);
      server::HttpServer::InstallSignalDrain(&server);
      server.Join();  // Until SIGTERM drain (SIGKILL never gets here).
      server::HttpServer::InstallSignalDrain(nullptr);
    }
    _exit(0);
  }
  // === Parent ===
  ::close(pipe_fds[1]);
  uint16_t port = 0;
  const bool got_port = ReadFull(pipe_fds[0], &port, sizeof(port));
  ::close(pipe_fds[0]);
  if (!got_port || port == 0) {
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    return Status::Unavailable("node child died before reporting its port");
  }
  return NodeProcess(pid, port);
}

NodeProcess::~NodeProcess() { Kill(); }

NodeProcess::NodeProcess(NodeProcess&& other) noexcept
    : pid_(other.pid_), port_(other.port_) {
  other.pid_ = -1;
  other.port_ = 0;
}

NodeProcess& NodeProcess::operator=(NodeProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = other.pid_;
    port_ = other.port_;
    other.pid_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void NodeProcess::Signal(int signo) {
  if (pid_ <= 0) return;
  ::kill(pid_, signo);
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
}

void NodeProcess::Kill() { Signal(SIGKILL); }

void NodeProcess::Terminate() { Signal(SIGTERM); }

}  // namespace cbfww::gateway
