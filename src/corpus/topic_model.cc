#include "corpus/topic_model.h"

#include <cassert>

#include "util/strings.h"

namespace cbfww::corpus {

TopicModel::TopicModel(const Options& options, text::Vocabulary* vocabulary)
    : options_(options),
      vocabulary_(vocabulary),
      topic_zipf_(options.terms_per_topic, options.zipf_theta),
      shared_zipf_(options.shared_terms, options.zipf_theta) {
  assert(options.num_topics >= 1);
  assert(options.terms_per_topic >= 1);
  assert(options.shared_terms >= 1);
  topic_terms_.resize(options.num_topics);
  for (uint32_t t = 0; t < options.num_topics; ++t) {
    topic_terms_[t].reserve(options.terms_per_topic);
    for (uint32_t i = 0; i < options.terms_per_topic; ++i) {
      // No separators that the tokenizer would split on: these strings must
      // round-trip through Tokenize() unchanged for MENTION queries.
      topic_terms_[t].push_back(
          vocabulary_->Intern(StrFormat("topic%uterm%u", t, i)));
    }
  }
  shared_terms_.reserve(options.shared_terms);
  for (uint32_t i = 0; i < options.shared_terms; ++i) {
    shared_terms_.push_back(vocabulary_->Intern(StrFormat("commonterm%u", i)));
  }
}

text::TermId TopicModel::SampleTerm(TopicId topic, Pcg32& rng) const {
  bool from_topic = topic != kNoTopic &&
                    topic >= 0 &&
                    static_cast<uint32_t>(topic) < options_.num_topics &&
                    rng.NextBernoulli(options_.concentration);
  if (from_topic) {
    uint64_t rank = topic_zipf_.Sample(rng);
    return topic_terms_[static_cast<uint32_t>(topic)][rank];
  }
  uint64_t rank = shared_zipf_.Sample(rng);
  return shared_terms_[rank];
}

std::vector<text::TermId> TopicModel::SampleTerms(TopicId topic, uint32_t count,
                                                  Pcg32& rng) const {
  std::vector<text::TermId> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(SampleTerm(topic, rng));
  return out;
}

std::vector<text::TermId> TopicModel::TopicSignature(TopicId topic,
                                                     uint32_t k) const {
  std::vector<text::TermId> out;
  if (topic < 0 || static_cast<uint32_t>(topic) >= options_.num_topics) return out;
  const auto& terms = topic_terms_[static_cast<uint32_t>(topic)];
  uint32_t n = std::min<uint32_t>(k, static_cast<uint32_t>(terms.size()));
  out.assign(terms.begin(), terms.begin() + n);
  return out;
}

bool TopicModel::TermInTopic(text::TermId term, TopicId topic) const {
  return TopicOfTerm(term) == topic;
}

TopicId TopicModel::TopicOfTerm(text::TermId term) const {
  // Topic blocks were interned contiguously; recover by range.
  for (uint32_t t = 0; t < options_.num_topics; ++t) {
    if (!topic_terms_[t].empty() && term >= topic_terms_[t].front() &&
        term <= topic_terms_[t].back()) {
      return static_cast<TopicId>(t);
    }
  }
  return kNoTopic;
}

}  // namespace cbfww::corpus
