#ifndef CBFWW_CORPUS_TOPIC_MODEL_H_
#define CBFWW_CORPUS_TOPIC_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace cbfww::corpus {

/// Index of a topic in the generator's topic space.
using TopicId = int32_t;

constexpr TopicId kNoTopic = -1;

/// Synthetic topic-mixture language model.
///
/// Each topic owns a block of topic-specific terms; a shared background
/// vocabulary is mixed in. Term frequencies within each block are Zipfian.
/// Pages generated with a dominant topic draw a `concentration` fraction of
/// their tokens from that topic's block, which gives the TF-IDF vectorizer
/// and the clustering substrate a recoverable ground truth (used to score
/// semantic-region purity in experiment F7).
class TopicModel {
 public:
  struct Options {
    uint32_t num_topics = 10;
    uint32_t terms_per_topic = 200;
    uint32_t shared_terms = 500;
    /// Probability that a token is drawn from the dominant topic's block.
    double concentration = 0.8;
    /// Zipf exponent for term frequency within each block.
    double zipf_theta = 1.0;
  };

  /// Interns all topic/background terms into `vocabulary` (not owned; must
  /// outlive the model).
  TopicModel(const Options& options, text::Vocabulary* vocabulary);

  /// Samples one token for a document whose dominant topic is `topic`
  /// (kNoTopic = pure background).
  text::TermId SampleTerm(TopicId topic, Pcg32& rng) const;

  /// Samples `count` tokens.
  std::vector<text::TermId> SampleTerms(TopicId topic, uint32_t count,
                                        Pcg32& rng) const;

  /// The most characteristic (most frequent) `k` terms of a topic — these
  /// are what the news feed emits as headline terms.
  std::vector<text::TermId> TopicSignature(TopicId topic, uint32_t k) const;

  /// True if `term` belongs to `topic`'s block.
  bool TermInTopic(text::TermId term, TopicId topic) const;

  /// Ground-truth topic owning `term`, or kNoTopic if background.
  TopicId TopicOfTerm(text::TermId term) const;

  uint32_t num_topics() const { return options_.num_topics; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  text::Vocabulary* vocabulary_;
  // topic_terms_[t] holds TermIds of topic t, in decreasing frequency.
  std::vector<std::vector<text::TermId>> topic_terms_;
  std::vector<text::TermId> shared_terms_;
  ZipfSampler topic_zipf_;
  ZipfSampler shared_zipf_;
};

}  // namespace cbfww::corpus

#endif  // CBFWW_CORPUS_TOPIC_MODEL_H_
