#ifndef CBFWW_CORPUS_WEB_OBJECT_H_
#define CBFWW_CORPUS_WEB_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/topic_model.h"
#include "text/vocabulary.h"
#include "util/clock.h"

namespace cbfww::corpus {

/// Identifier of a raw web object (single file) in the corpus.
using RawId = uint64_t;

/// Identifier of a physical page (container + components) in the corpus.
using PageId = uint64_t;

constexpr RawId kInvalidRawId = UINT64_MAX;
constexpr PageId kInvalidPageId = UINT64_MAX;

/// Media type of a raw web object (paper Figure 4).
enum class MediaKind {
  kHtml = 0,
  kImage,
  kAudio,
  kVideo,
};

std::string_view MediaKindName(MediaKind kind);

/// A single file on a web site — the smallest unit the warehouse handles
/// (paper Section 4.1, "Raw Web Objects").
struct RawWebObject {
  RawId id = kInvalidRawId;
  std::string url;
  MediaKind kind = MediaKind::kHtml;
  uint64_t size_bytes = 0;
  uint32_t site = 0;
  /// Content version; bumped on each modification at the origin.
  uint32_t version = 1;
  /// Simulated time of last modification at the origin.
  SimTime last_modified = 0;
  /// Title terms (HTML containers only).
  std::vector<text::TermId> title_terms;
  /// Body terms in document order (HTML containers only).
  std::vector<text::TermId> body_terms;
  /// Ground-truth dominant topic (HTML containers; kNoTopic for media).
  TopicId topic = kNoTopic;

  bool is_html() const { return kind == MediaKind::kHtml; }
};

/// A link from an anchor inside a page to a destination page
/// (span-to-node link, paper Section 5.1).
struct Anchor {
  /// Anchor text terms — the paper uses these to form logical-document
  /// titles (Section 5.2).
  std::vector<text::TermId> text_terms;
  /// Destination physical page.
  PageId target = kInvalidPageId;
};

/// A complete visual unit in a browser: one HTML container plus embedded
/// media components (paper Section 4.1, "Physical Page Objects"). Components
/// may be shared between pages of the same site, which drives the Figure 2
/// priority experiment.
struct PhysicalPageSpec {
  PageId id = kInvalidPageId;
  RawId container = kInvalidRawId;
  std::vector<RawId> components;
  std::vector<Anchor> anchors;
  uint32_t site = 0;
  TopicId topic = kNoTopic;
};

}  // namespace cbfww::corpus

#endif  // CBFWW_CORPUS_WEB_OBJECT_H_
