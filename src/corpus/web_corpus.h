#ifndef CBFWW_CORPUS_WEB_CORPUS_H_
#define CBFWW_CORPUS_WEB_CORPUS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "corpus/topic_model.h"
#include "corpus/web_object.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace cbfww::corpus {

/// Parameters for synthetic corpus generation. Defaults give a ~4k-page
/// corpus that runs every experiment in seconds; benches scale them up.
struct CorpusOptions {
  uint32_t num_sites = 20;
  uint32_t pages_per_site = 200;

  TopicModel::Options topic;

  /// Tokens in a page title / body.
  uint32_t title_terms = 6;
  uint32_t body_terms = 120;

  /// Embedded media components per page (Poisson-ish around the mean) and
  /// the per-site pool they are drawn from. Sharing is what creates the
  /// Figure 2 situation (one image embedded by many pages).
  uint32_t components_per_page_mean = 3;
  uint32_t component_pool_per_site = 40;
  double component_share_prob = 0.6;

  /// Size model (bytes). HTML and media sizes are lognormal-ish around the
  /// mean; a small fraction of documents is made very large to exercise
  /// levels-of-detail (experiment C4).
  uint64_t html_size_mean = 24 * 1024;
  uint64_t media_size_mean = 64 * 1024;
  double large_doc_fraction = 0.02;
  uint64_t large_doc_size = 4 * 1024 * 1024;

  /// Out-links per page and the probability a link crosses sites.
  uint32_t links_per_page = 6;
  double cross_site_link_prob = 0.15;
  uint32_t anchor_text_terms = 3;

  uint64_t seed = 42;
};

/// A fully generated synthetic web: sites, raw objects, physical pages, and
/// a link graph with anchor texts. Substitutes for the live web (see
/// DESIGN.md, substitution table). Deterministic given `seed`.
class WebCorpus {
 public:
  /// Generates the corpus. The corpus owns its vocabulary and topic model.
  explicit WebCorpus(const CorpusOptions& options);

  WebCorpus(const WebCorpus&) = delete;
  WebCorpus& operator=(const WebCorpus&) = delete;

  const CorpusOptions& options() const { return options_; }
  const text::Vocabulary& vocabulary() const { return *vocabulary_; }
  text::Vocabulary* mutable_vocabulary() { return vocabulary_.get(); }
  const TopicModel& topic_model() const { return *topic_model_; }

  size_t num_raw_objects() const { return raw_objects_.size(); }
  size_t num_pages() const { return pages_.size(); }

  const RawWebObject& raw(RawId id) const { return raw_objects_[id]; }
  RawWebObject& mutable_raw(RawId id) { return raw_objects_[id]; }
  const PhysicalPageSpec& page(PageId id) const { return pages_[id]; }

  const std::vector<RawWebObject>& raw_objects() const { return raw_objects_; }
  const std::vector<PhysicalPageSpec>& pages() const { return pages_; }

  /// Pages of one site, in generation order.
  std::vector<PageId> PagesOfSite(uint32_t site) const;

  /// Applies an origin-side modification to a raw object: bumps version,
  /// sets last_modified, and (for HTML) re-samples a fraction of body terms.
  void ModifyObject(RawId id, SimTime now, Pcg32& rng);

  /// All pages embedding the given component (reverse of
  /// PhysicalPageSpec::components).
  const std::vector<PageId>& ContainersOf(RawId component) const;

 private:
  void Generate();

  CorpusOptions options_;
  std::unique_ptr<text::Vocabulary> vocabulary_;
  std::unique_ptr<TopicModel> topic_model_;
  std::vector<RawWebObject> raw_objects_;
  std::vector<PhysicalPageSpec> pages_;
  std::vector<std::vector<PageId>> containers_of_;  // indexed by RawId
  Pcg32 rng_;
};

}  // namespace cbfww::corpus

#endif  // CBFWW_CORPUS_WEB_CORPUS_H_
