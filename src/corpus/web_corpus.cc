#include "corpus/web_corpus.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace cbfww::corpus {

std::string_view MediaKindName(MediaKind kind) {
  switch (kind) {
    case MediaKind::kHtml:
      return "html";
    case MediaKind::kImage:
      return "image";
    case MediaKind::kAudio:
      return "audio";
    case MediaKind::kVideo:
      return "video";
  }
  return "unknown";
}

namespace {

/// Lognormal-ish size: mean * exp(sigma * gaussian), clamped to >= 512.
uint64_t SampleSize(uint64_t mean, Pcg32& rng) {
  double factor = std::exp(0.5 * rng.NextGaussian());
  double v = static_cast<double>(mean) * factor;
  return static_cast<uint64_t>(std::max(512.0, v));
}

}  // namespace

WebCorpus::WebCorpus(const CorpusOptions& options)
    : options_(options),
      vocabulary_(std::make_unique<text::Vocabulary>()),
      rng_(options.seed, /*stream=*/0xC0FFEE) {
  topic_model_ = std::make_unique<TopicModel>(options.topic, vocabulary_.get());
  Generate();
}

void WebCorpus::Generate() {
  const uint32_t sites = options_.num_sites;
  const uint32_t pages_per_site = options_.pages_per_site;
  const uint32_t topics = topic_model_->num_topics();

  // Reserve: each page has one container; each site has a media pool.
  pages_.reserve(static_cast<size_t>(sites) * pages_per_site);

  // Per-site component pools (RawIds of media objects).
  std::vector<std::vector<RawId>> site_pools(sites);

  auto new_raw = [&](MediaKind kind, uint32_t site, uint64_t size) -> RawId {
    RawWebObject obj;
    obj.id = raw_objects_.size();
    obj.kind = kind;
    obj.site = site;
    obj.size_bytes = size;
    obj.url = StrFormat("http://site%u.example.org/%s/%llu", site,
                        std::string(MediaKindName(kind)).c_str(),
                        static_cast<unsigned long long>(obj.id));
    raw_objects_.push_back(std::move(obj));
    return raw_objects_.back().id;
  };

  // 1. Media pools.
  for (uint32_t s = 0; s < sites; ++s) {
    Pcg32 rng = rng_.Fork(0x1000 + s);
    site_pools[s].reserve(options_.component_pool_per_site);
    for (uint32_t i = 0; i < options_.component_pool_per_site; ++i) {
      MediaKind kind = MediaKind::kImage;
      double r = rng.NextDouble();
      if (r > 0.9) {
        kind = MediaKind::kVideo;
      } else if (r > 0.8) {
        kind = MediaKind::kAudio;
      }
      site_pools[s].push_back(
          new_raw(kind, s, SampleSize(options_.media_size_mean, rng)));
    }
  }

  // 2. Pages: container + components. Sites lean toward a home topic so
  // semantic regions correlate with (but do not equal) sites.
  for (uint32_t s = 0; s < sites; ++s) {
    Pcg32 rng = rng_.Fork(0x2000 + s);
    TopicId site_topic = static_cast<TopicId>(s % topics);
    for (uint32_t p = 0; p < pages_per_site; ++p) {
      TopicId topic = rng.NextBernoulli(0.7)
                          ? site_topic
                          : static_cast<TopicId>(rng.NextBounded(topics));
      uint64_t size = SampleSize(options_.html_size_mean, rng);
      if (rng.NextBernoulli(options_.large_doc_fraction)) {
        size = options_.large_doc_size +
               rng.NextBounded(static_cast<uint32_t>(options_.large_doc_size / 2));
      }
      RawId container = new_raw(MediaKind::kHtml, s, size);
      RawWebObject& raw = raw_objects_[container];
      raw.topic = topic;
      raw.title_terms = topic_model_->SampleTerms(topic, options_.title_terms, rng);
      raw.body_terms = topic_model_->SampleTerms(topic, options_.body_terms, rng);

      PhysicalPageSpec page;
      page.id = pages_.size();
      page.container = container;
      page.site = s;
      page.topic = topic;
      // Components: shared from the site pool or fresh.
      uint32_t ncomp = rng.NextBounded(2 * options_.components_per_page_mean + 1);
      for (uint32_t c = 0; c < ncomp; ++c) {
        if (!site_pools[s].empty() &&
            rng.NextBernoulli(options_.component_share_prob)) {
          page.components.push_back(
              site_pools[s][rng.NextBounded(
                  static_cast<uint32_t>(site_pools[s].size()))]);
        } else {
          page.components.push_back(
              new_raw(MediaKind::kImage, s,
                      SampleSize(options_.media_size_mean, rng)));
        }
      }
      std::sort(page.components.begin(), page.components.end());
      page.components.erase(
          std::unique(page.components.begin(), page.components.end()),
          page.components.end());
      pages_.push_back(std::move(page));
    }
  }

  // 3. Link graph with anchor texts. Links prefer the same site (navigation
  // structure); anchor text previews the destination's topic.
  const uint64_t total_pages = pages_.size();
  std::vector<std::vector<PageId>> pages_by_site(sites);
  for (const PhysicalPageSpec& page : pages_) {
    pages_by_site[page.site].push_back(page.id);
  }
  for (PhysicalPageSpec& page : pages_) {
    Pcg32 rng = rng_.Fork(0x3000 + page.id);
    const std::vector<PageId>& site_pages = pages_by_site[page.site];
    for (uint32_t l = 0; l < options_.links_per_page; ++l) {
      PageId target;
      if (!site_pages.empty() &&
          !rng.NextBernoulli(options_.cross_site_link_prob)) {
        target = site_pages[rng.NextBounded(
            static_cast<uint32_t>(site_pages.size()))];
      } else {
        target = rng.NextBounded(static_cast<uint32_t>(total_pages));
      }
      if (target == page.id) continue;
      Anchor anchor;
      anchor.target = target;
      anchor.text_terms = topic_model_->SampleTerms(
          pages_[target].topic, options_.anchor_text_terms, rng);
      page.anchors.push_back(std::move(anchor));
    }
  }

  // 4. Reverse component index.
  containers_of_.assign(raw_objects_.size(), {});
  for (const PhysicalPageSpec& page : pages_) {
    for (RawId c : page.components) containers_of_[c].push_back(page.id);
  }
  for (auto& v : containers_of_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
}

std::vector<PageId> WebCorpus::PagesOfSite(uint32_t site) const {
  std::vector<PageId> out;
  // Pages are generated site-by-site; compute the contiguous range.
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (pages_[id].site == site) out.push_back(id);
  }
  return out;
}

void WebCorpus::ModifyObject(RawId id, SimTime now, Pcg32& rng) {
  assert(id < raw_objects_.size());
  RawWebObject& obj = raw_objects_[id];
  ++obj.version;
  obj.last_modified = now;
  if (obj.is_html() && !obj.body_terms.empty()) {
    // Re-sample ~20% of body tokens: content drift under the same topic.
    uint32_t n = static_cast<uint32_t>(obj.body_terms.size()) / 5;
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t pos = rng.NextBounded(static_cast<uint32_t>(obj.body_terms.size()));
      obj.body_terms[pos] = topic_model_->SampleTerm(obj.topic, rng);
    }
  }
}

const std::vector<PageId>& WebCorpus::ContainersOf(RawId component) const {
  static const std::vector<PageId> kEmpty;
  if (component >= containers_of_.size()) return kEmpty;
  return containers_of_[component];
}

}  // namespace cbfww::corpus
