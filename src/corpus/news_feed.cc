#include "corpus/news_feed.h"

#include <algorithm>

namespace cbfww::corpus {

NewsFeed::NewsFeed(const Options& options, const TopicModel* topics)
    : options_(options), topics_(topics) {
  Pcg32 rng(options.seed, /*stream=*/0xBEEF);
  const uint32_t num_topics = topics_->num_topics();
  for (uint32_t b = 0; b < options.num_bursts; ++b) {
    BurstSpec burst;
    // Bursts begin after one lead interval so every burst has headlines.
    SimTime earliest = options.headline_lead;
    SimTime span = std::max<SimTime>(1, options.horizon - earliest);
    burst.start = earliest + rng.NextInt(0, span - 1);
    burst.duration = std::max<SimTime>(
        kMinute, static_cast<SimTime>(options.burst_duration_mean *
                                      (0.5 + rng.NextDouble())));
    burst.topic = static_cast<TopicId>(rng.NextBounded(num_topics));
    burst.intensity = options.intensity * (0.5 + rng.NextDouble());
    bursts_.push_back(burst);

    // Headlines announcing the burst, spread over the lead window.
    for (uint32_t h = 0; h < options.headlines_per_burst; ++h) {
      NewsHeadline headline;
      headline.topic = burst.topic;
      SimTime lead = options.headline_lead;
      headline.time = burst.start - lead +
                      rng.NextInt(0, std::max<SimTime>(1, lead) - 1);
      if (headline.time < 0) headline.time = 0;
      // Headlines are dense in topic signature terms plus a couple of
      // sampled ones (noise).
      headline.terms = topics_->TopicSignature(
          burst.topic, options.terms_per_headline > 2
                           ? options.terms_per_headline - 2
                           : options.terms_per_headline);
      Pcg32 hrng = rng.Fork(b * 131 + h);
      while (headline.terms.size() < options.terms_per_headline) {
        headline.terms.push_back(topics_->SampleTerm(burst.topic, hrng));
      }
      headlines_.push_back(std::move(headline));
    }
  }
  std::sort(bursts_.begin(), bursts_.end(),
            [](const BurstSpec& a, const BurstSpec& b) { return a.start < b.start; });
  std::sort(headlines_.begin(), headlines_.end(),
            [](const NewsHeadline& a, const NewsHeadline& b) {
              return a.time < b.time;
            });
}

std::vector<NewsHeadline> NewsFeed::HeadlinesBetween(SimTime from,
                                                     SimTime to) const {
  std::vector<NewsHeadline> out;
  auto lo = std::lower_bound(headlines_.begin(), headlines_.end(), from,
                             [](const NewsHeadline& h, SimTime t) {
                               return h.time < t;
                             });
  for (auto it = lo; it != headlines_.end() && it->time < to; ++it) {
    out.push_back(*it);
  }
  return out;
}

double NewsFeed::TopicBoostAt(TopicId topic, SimTime t) const {
  double boost = 1.0;
  for (const BurstSpec& b : bursts_) {
    if (b.topic == topic && b.ActiveAt(t)) boost += b.intensity;
  }
  return boost;
}

}  // namespace cbfww::corpus
