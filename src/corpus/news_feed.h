#ifndef CBFWW_CORPUS_NEWS_FEED_H_
#define CBFWW_CORPUS_NEWS_FEED_H_

#include <cstdint>
#include <vector>

#include "corpus/topic_model.h"
#include "text/vocabulary.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cbfww::corpus {

/// One hot-spot episode: between [start, start + duration) requests for
/// pages of `topic` are inflated by `intensity`. The paper's Kyoto-inet
/// observation: hot spots are topic-driven and short-lived (Section 4.4).
struct BurstSpec {
  SimTime start = 0;
  SimTime duration = 0;
  TopicId topic = kNoTopic;
  /// Multiplier on the probability mass of the topic's pages while active.
  double intensity = 10.0;

  bool ActiveAt(SimTime t) const { return t >= start && t < start + duration; }
};

/// A headline emitted by the simulated news wire.
struct NewsHeadline {
  SimTime time = 0;
  TopicId topic = kNoTopic;
  std::vector<text::TermId> terms;
};

/// Simulated news sites: generates a schedule of topic bursts and the
/// headlines announcing them. Headlines precede the corresponding request
/// burst by `headline_lead`, which is the signal the Topic Sensor exploits
/// for prediction/prefetch (paper Section 3, component (3)).
class NewsFeed {
 public:
  struct Options {
    /// Number of bursts across the horizon.
    uint32_t num_bursts = 8;
    SimTime horizon = 7 * kDay;
    SimTime burst_duration_mean = 4 * kHour;
    double intensity = 15.0;
    /// How long before the request burst the headlines appear.
    SimTime headline_lead = 30 * kMinute;
    /// Headlines per burst.
    uint32_t headlines_per_burst = 5;
    uint32_t terms_per_headline = 8;
    uint64_t seed = 7;
  };

  /// Generates the schedule. The topic model is not owned and must outlive
  /// the feed.
  NewsFeed(const Options& options, const TopicModel* topics);

  const std::vector<BurstSpec>& bursts() const { return bursts_; }
  const std::vector<NewsHeadline>& headlines() const { return headlines_; }

  /// Headlines with time in [from, to). Both lists are time-sorted.
  std::vector<NewsHeadline> HeadlinesBetween(SimTime from, SimTime to) const;

  /// Total popularity multiplier for `topic` at time `t` (1.0 when no burst
  /// is active).
  double TopicBoostAt(TopicId topic, SimTime t) const;

 private:
  Options options_;
  const TopicModel* topics_;
  std::vector<BurstSpec> bursts_;
  std::vector<NewsHeadline> headlines_;
};

}  // namespace cbfww::corpus

#endif  // CBFWW_CORPUS_NEWS_FEED_H_
