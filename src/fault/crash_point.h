#ifndef CBFWW_FAULT_CRASH_POINT_H_
#define CBFWW_FAULT_CRASH_POINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cbfww::fault {

/// How a crash mangles the durability log it interrupted. Models what real
/// filesystems leave behind when power dies mid-append.
enum class CrashEffect {
  /// The tail past the crash offset never reached the platter.
  kTruncate,
  /// One sector arm twitch: a single byte at the crash offset flips.
  kCorruptByte,
  /// A partially-written sector reads back as zeroes from the crash
  /// offset onward.
  kZeroRange,
};

std::string_view CrashEffectName(CrashEffect effect);

/// One scheduled crash: kill the workload after `event_index` processed
/// events, then apply `effect` to the WAL at `offset_fraction` of its
/// length. Recovery must survive whatever is left.
struct CrashPoint {
  /// Crash lands after this many processed trace events.
  uint64_t event_index = 0;
  /// Where in the surviving file the damage starts, as a fraction of its
  /// size in [0, 1]. 1.0 with kTruncate is a no-op crash (clean file).
  double offset_fraction = 1.0;
  CrashEffect effect = CrashEffect::kTruncate;
  /// Bytes zeroed by kZeroRange (clamped to the file end).
  uint32_t zero_len = 0;
};

/// Knobs of CrashSchedule::Generate.
struct CrashScheduleOptions {
  /// Workload length; crash indices are drawn from [min_event,
  /// total_events].
  uint64_t total_events = 0;
  uint32_t num_crashes = 10;
  uint64_t min_event = 1;
};

/// A deterministic crash schedule: points sorted by event_index. Equal
/// seeds and options generate identical schedules, so a failing matrix
/// cell reproduces from (seed, cell index) alone.
struct CrashSchedule {
  std::vector<CrashPoint> points;

  static CrashSchedule Generate(uint64_t seed,
                                const CrashScheduleOptions& options);

  /// Deterministic human-readable rendering (matrix reports).
  std::string ToString() const;
};

/// Applies the crash effect to `path` in place (file surgery after the
/// process "died"). NotFound when the file does not exist; kTruncate of an
/// empty file and damage offsets past the end are harmless no-ops.
Status ApplyCrash(const std::string& path, const CrashPoint& point);

}  // namespace cbfww::fault

#endif  // CBFWW_FAULT_CRASH_POINT_H_
