#include "fault/socket_fault_injector.h"

#include <algorithm>

#include "util/strings.h"

namespace cbfww::fault {

namespace {

// Tags for the per-connection sub-streams (Pcg32::Fork), so the profile
// draw order is fixed regardless of which direction is consulted first.
constexpr uint64_t kProfileTag = 0x50524f46;   // "PROF"
constexpr uint64_t kBoundaryTag = 0x424f554e;  // "BOUN"

uint64_t DrawOffset(Pcg32& rng, uint64_t lo, uint64_t hi) {
  if (hi <= lo) return lo;
  return static_cast<uint64_t>(rng.NextInt(static_cast<int64_t>(lo),
                                           static_cast<int64_t>(hi - 1)));
}

}  // namespace

SocketFaultInjector::SocketFaultInjector(uint64_t seed,
                                         const SocketFaultOptions& options)
    : seed_(seed), options_(options) {}

SocketFaultInjector::ConnState& SocketFaultInjector::State(uint64_t serial) {
  auto it = conns_.find(serial);
  if (it != conns_.end()) return it->second;

  // The whole plan is a function of (seed, serial): draws happen in one
  // fixed order here, and the boundary stream advances only as the byte
  // offset does, so replays with identical byte streams see identical
  // faults.
  Pcg32 base(seed_, serial);
  Pcg32 profile = base.Fork(kProfileTag);
  ConnState state(base.Fork(kBoundaryTag));
  state.accept_reset = profile.NextBernoulli(options_.accept_reset_probability);
  state.dribble = profile.NextBernoulli(options_.dribble_probability);
  state.short_io = profile.NextBernoulli(options_.short_io_probability);
  for (DirState* dir : {&state.read, &state.write}) {
    bool is_read = dir == &state.read;
    double reset_p = is_read ? options_.read_reset_probability
                             : options_.write_reset_probability;
    if (profile.NextBernoulli(reset_p)) {
      dir->reset_at = DrawOffset(profile, options_.min_reset_offset,
                                 options_.max_reset_offset);
    }
    if (profile.NextBernoulli(options_.eagain_probability)) {
      dir->eagain_at = DrawOffset(profile, options_.min_reset_offset,
                                  options_.max_reset_offset);
      dir->eagain_left = options_.eagain_burst;
    }
  }
  return conns_.emplace(serial, std::move(state)).first->second;
}

uint64_t SocketFaultInjector::OnConnection() {
  return next_serial_.fetch_add(1, std::memory_order_relaxed);
}

net::SocketAcceptFault SocketFaultInjector::OnAccept(uint64_t serial) {
  std::lock_guard<std::mutex> lock(mu_);
  net::SocketAcceptFault fault;
  if (State(serial).accept_reset) {
    fault.action = net::SocketAcceptFault::Action::kResetAfterAccept;
    stats_.accept_resets.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

net::SocketIoFault SocketFaultInjector::OnIo(uint64_t serial, uint64_t offset,
                                             bool is_read) {
  std::lock_guard<std::mutex> lock(mu_);
  ConnState& conn = State(serial);
  DirState& dir = is_read ? conn.read : conn.write;
  net::SocketIoFault fault;

  if (offset >= dir.reset_at) {
    fault.action = net::SocketIoFault::Action::kReset;
    (is_read ? stats_.read_resets : stats_.write_resets)
        .fetch_add(1, std::memory_order_relaxed);
    return fault;
  }
  if (offset >= dir.eagain_at && dir.eagain_left > 0) {
    dir.eagain_left--;
    if (dir.eagain_left == 0) dir.eagain_at = UINT64_MAX;
    fault.action = net::SocketIoFault::Action::kEAgain;
    stats_.eagain_injected.fetch_add(1, std::memory_order_relaxed);
    return fault;
  }

  if (conn.dribble) {
    fault.max_bytes = std::max<size_t>(1, options_.dribble_bytes);
    fault.pace_us = options_.dribble_pace_us;
    stats_.dribbled_ios.fetch_add(1, std::memory_order_relaxed);
  } else if (conn.short_io) {
    // Budget = distance to the next seeded byte boundary. Offset-driven:
    // however the kernel chunked earlier IO, the boundaries land on the
    // same absolute offsets.
    while (dir.next_boundary <= offset) {
      uint64_t gap = 1 + static_cast<uint64_t>(conn.rng.NextExponential(
                             1.0 / static_cast<double>(std::max<uint64_t>(
                                       1, options_.short_io_mean_gap))));
      dir.next_boundary += gap;
    }
    fault.max_bytes = static_cast<size_t>(dir.next_boundary - offset);
    stats_.short_ios.fetch_add(1, std::memory_order_relaxed);
  }
  // A reset scheduled ahead also caps the budget so the reset offset is
  // hit exactly (chunk-independent placement).
  if (dir.reset_at != UINT64_MAX && offset < dir.reset_at) {
    fault.max_bytes =
        std::min<size_t>(fault.max_bytes,
                         static_cast<size_t>(dir.reset_at - offset));
  }
  if (dir.eagain_at != UINT64_MAX && offset < dir.eagain_at) {
    fault.max_bytes =
        std::min<size_t>(fault.max_bytes,
                         static_cast<size_t>(dir.eagain_at - offset));
  }
  return fault;
}

net::SocketIoFault SocketFaultInjector::OnRead(uint64_t serial,
                                               uint64_t offset) {
  return OnIo(serial, offset, /*is_read=*/true);
}

net::SocketIoFault SocketFaultInjector::OnWrite(uint64_t serial,
                                                uint64_t offset) {
  return OnIo(serial, offset, /*is_read=*/false);
}

std::string SocketFaultInjector::PlanString(uint64_t serial) {
  std::lock_guard<std::mutex> lock(mu_);
  ConnState& conn = State(serial);
  auto dir_text = [](const DirState& dir) {
    std::string out;
    if (dir.reset_at != UINT64_MAX) {
      out += StrFormat(" reset@%llu",
                       static_cast<unsigned long long>(dir.reset_at));
    }
    if (dir.eagain_at != UINT64_MAX || dir.eagain_left > 0) {
      out += StrFormat(" eagain@%llu x%u",
                       static_cast<unsigned long long>(dir.eagain_at),
                       dir.eagain_left);
    }
    if (out.empty()) out = " clean";
    return out;
  };
  std::string line =
      StrFormat("conn %llu:", static_cast<unsigned long long>(serial));
  if (conn.accept_reset) line += " accept-reset";
  if (conn.dribble) {
    line += StrFormat(" dribble=%zu", options_.dribble_bytes);
  }
  if (conn.short_io) line += " short-io";
  line += " read:" + dir_text(conn.read);
  line += " write:" + dir_text(conn.write);
  return line;
}

}  // namespace cbfww::fault
