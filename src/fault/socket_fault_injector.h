#ifndef CBFWW_FAULT_SOCKET_FAULT_INJECTOR_H_
#define CBFWW_FAULT_SOCKET_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/socket_fault.h"
#include "util/rng.h"

namespace cbfww::fault {

/// Knobs of SocketFaultInjector. Probabilities are per connection: each
/// accepted/connected socket draws its fault profile once, from a PCG
/// stream derived from (seed, serial) alone.
struct SocketFaultOptions {
  /// Connection is reset the instant it is accepted (client sees RST
  /// before the first byte).
  double accept_reset_probability = 0.02;
  /// A read on the connection hits RST at a random byte offset.
  double read_reset_probability = 0.05;
  /// A write hits RST mid-response at a random byte offset.
  double write_reset_probability = 0.05;
  /// All IO on the connection is capped to dribble_bytes per attempt
  /// (byte-dribble pacing; slowloris-shaped when combined with pace).
  double dribble_probability = 0.10;
  size_t dribble_bytes = 3;
  /// Client-side pacing applied with each dribbled IO (servers ignore it).
  int64_t dribble_pace_us = 0;
  /// IO budgets are randomly shortened (short reads/writes at seeded byte
  /// boundaries).
  double short_io_probability = 0.20;
  /// Mean gap between short-IO boundaries, in bytes.
  uint64_t short_io_mean_gap = 512;
  /// An EAGAIN storm starts at a random byte offset: the next
  /// `eagain_burst` attempts at/after it report not-ready.
  double eagain_probability = 0.10;
  uint32_t eagain_burst = 3;
  /// Reset offsets are drawn uniformly from [min, max).
  uint64_t min_reset_offset = 16;
  uint64_t max_reset_offset = 4096;
};

/// Seeded, deterministic socket-fault policy. Every connection's complete
/// fault plan — resets, dribble, short-IO boundaries, EAGAIN storms — is a
/// pure function of (seed, serial), and IO decisions key on the byte
/// offset the caller reports, never on attempt count or chunk size. Two
/// runs with the same seed and the same per-connection byte streams
/// therefore inject byte-identically, which is what the netchaos replay
/// gate asserts.
///
/// Thread-safe: IO threads consult it concurrently (one mutex; the serving
/// path tolerates this — fault runs are diagnostics, not benchmarks).
class SocketFaultInjector : public net::SocketFaultPolicy {
 public:
  explicit SocketFaultInjector(uint64_t seed,
                               const SocketFaultOptions& options = {});

  // net::SocketFaultPolicy
  uint64_t OnConnection() override;
  net::SocketAcceptFault OnAccept(uint64_t serial) override;
  net::SocketIoFault OnRead(uint64_t serial, uint64_t offset) override;
  net::SocketIoFault OnWrite(uint64_t serial, uint64_t offset) override;

  /// Deterministic rendering of one connection's fault plan (replay gates
  /// compare these across same-seed runs). Valid for serials already
  /// handed out by OnConnection.
  std::string PlanString(uint64_t serial);

  uint64_t connections() const {
    return next_serial_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::atomic<uint64_t> accept_resets{0};
    std::atomic<uint64_t> read_resets{0};
    std::atomic<uint64_t> write_resets{0};
    std::atomic<uint64_t> eagain_injected{0};
    std::atomic<uint64_t> short_ios{0};
    std::atomic<uint64_t> dribbled_ios{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  /// One direction's offset-keyed stream state.
  struct DirState {
    uint64_t reset_at = UINT64_MAX;   // RST once offset reaches this.
    uint64_t eagain_at = UINT64_MAX;  // Storm trigger offset.
    uint32_t eagain_left = 0;         // Remaining not-ready verdicts.
    uint64_t next_boundary = 0;       // Next short-IO byte boundary.
  };
  struct ConnState {
    bool accept_reset = false;
    bool dribble = false;
    bool short_io = false;
    DirState read;
    DirState write;
    Pcg32 rng;  // Advances boundaries (offset-driven, so replay-stable).

    explicit ConnState(Pcg32 r) : rng(r) {}
  };

  ConnState& State(uint64_t serial);  // Callers must hold mu_.
  net::SocketIoFault OnIo(uint64_t serial, uint64_t offset, bool is_read);

  const uint64_t seed_;
  const SocketFaultOptions options_;
  std::atomic<uint64_t> next_serial_{0};
  std::mutex mu_;
  std::unordered_map<uint64_t, ConnState> conns_;
  Stats stats_;
};

}  // namespace cbfww::fault

#endif  // CBFWW_FAULT_SOCKET_FAULT_INJECTOR_H_
