#include "fault/crash_point.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/rng.h"
#include "util/strings.h"

namespace cbfww::fault {

std::string_view CrashEffectName(CrashEffect effect) {
  switch (effect) {
    case CrashEffect::kTruncate:
      return "truncate";
    case CrashEffect::kCorruptByte:
      return "corrupt-byte";
    case CrashEffect::kZeroRange:
      return "zero-range";
  }
  return "unknown";
}

CrashSchedule CrashSchedule::Generate(uint64_t seed,
                                      const CrashScheduleOptions& options) {
  CrashSchedule schedule;
  if (options.total_events == 0 || options.num_crashes == 0) return schedule;
  Pcg32 rng(seed, /*stream=*/0xC4A54);
  uint64_t lo = std::min(options.min_event, options.total_events);
  schedule.points.reserve(options.num_crashes);
  for (uint32_t i = 0; i < options.num_crashes; ++i) {
    CrashPoint point;
    point.event_index = static_cast<uint64_t>(
        rng.NextInt(static_cast<int64_t>(lo),
                    static_cast<int64_t>(options.total_events)));
    point.offset_fraction = rng.NextDouble();
    switch (rng.NextBounded(3)) {
      case 0:
        point.effect = CrashEffect::kTruncate;
        break;
      case 1:
        point.effect = CrashEffect::kCorruptByte;
        break;
      default:
        point.effect = CrashEffect::kZeroRange;
        point.zero_len = 1 + rng.NextBounded(64);
        break;
    }
    schedule.points.push_back(point);
  }
  std::sort(schedule.points.begin(), schedule.points.end(),
            [](const CrashPoint& a, const CrashPoint& b) {
              if (a.event_index != b.event_index) {
                return a.event_index < b.event_index;
              }
              return a.offset_fraction < b.offset_fraction;
            });
  return schedule;
}

std::string CrashSchedule::ToString() const {
  std::string out;
  for (const CrashPoint& point : points) {
    out += StrFormat("crash @%llu event: %s at %.3f",
                     static_cast<unsigned long long>(point.event_index),
                     std::string(CrashEffectName(point.effect)).c_str(),
                     point.offset_fraction);
    if (point.effect == CrashEffect::kZeroRange) {
      out += StrFormat(" (%u bytes)", point.zero_len);
    }
    out += '\n';
  }
  return out;
}

Status ApplyCrash(const std::string& path, const CrashPoint& point) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("crash target missing: " + path);
  double fraction = std::clamp(point.offset_fraction, 0.0, 1.0);
  uint64_t offset = static_cast<uint64_t>(fraction * static_cast<double>(size));
  if (offset > size) offset = size;

  if (point.effect == CrashEffect::kTruncate) {
    std::filesystem::resize_file(path, offset, ec);
    if (ec) return Status::Internal("truncate failed: " + path);
    return Status::Ok();
  }
  if (offset >= size) return Status::Ok();  // Damage past the end: no-op.

  FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return Status::Internal("cannot reopen: " + path);
  Status status = Status::Ok();
  if (point.effect == CrashEffect::kCorruptByte) {
    unsigned char byte = 0;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(&byte, 1, 1, f) != 1) {
      status = Status::Internal("read failed: " + path);
    } else {
      byte ^= 0x5A;
      if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
          std::fwrite(&byte, 1, 1, f) != 1) {
        status = Status::Internal("write failed: " + path);
      }
    }
  } else {  // kZeroRange
    uint64_t len = std::min<uint64_t>(point.zero_len, size - offset);
    std::string zeros(static_cast<size_t>(len), '\0');
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fwrite(zeros.data(), 1, zeros.size(), f) != zeros.size()) {
      status = Status::Internal("zero-range failed: " + path);
    }
  }
  std::fclose(f);
  return status;
}

}  // namespace cbfww::fault
