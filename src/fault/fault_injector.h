#ifndef CBFWW_FAULT_FAULT_INJECTOR_H_
#define CBFWW_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/origin_server.h"
#include "storage/hierarchy.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cbfww::fault {

/// Kinds of injectable faults. Tier faults target one storage tier; origin
/// faults target the simulated wide-area origin.
enum class FaultKind {
  /// Every access to the tier fails for the window (controller crash,
  /// cable pull).
  kTierDown,
  /// Reads on the tier fail with probability `magnitude` (media errors).
  kTierReadError,
  /// Stores on the tier fail with probability `magnitude` (write errors).
  kTierStoreError,
  /// Accesses to the tier charge `magnitude` extra microseconds
  /// (contention / degraded RAID).
  kTierLatency,
  /// Instantaneous event at `start`: the tier's entire contents vanish.
  /// Consumed by the warehouse via TakeDueTierLosses (copy-control
  /// recovery, paper Section 4.4).
  kTierLoss,
  /// Origin requests time out for the window (origin outage / partition).
  kOriginOutage,
  /// Origin requests fail with a 5xx with probability `magnitude`
  /// (flapping origin).
  kOriginError,
  /// Origin responses are delayed by `magnitude` extra microseconds.
  kOriginSlow,
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault. For kTierLoss only `start` matters; every other
/// kind is active on [start, end).
struct FaultWindow {
  SimTime start = 0;
  SimTime end = 0;
  FaultKind kind = FaultKind::kTierDown;
  /// Target tier for kTier* kinds; ignored for origin kinds.
  storage::TierIndex tier = storage::kNoTier;
  /// Probability for *Error kinds, extra latency (us) for *Latency/*Slow.
  double magnitude = 1.0;
};

/// Knobs of FaultSchedule::Generate. Counts are events over the horizon.
struct FaultScheduleOptions {
  SimTime horizon = kDay;
  uint32_t tier_losses = 1;
  uint32_t tier_outages = 1;
  uint32_t read_error_bursts = 2;
  uint32_t store_error_bursts = 1;
  uint32_t latency_spikes = 2;
  uint32_t origin_outages = 2;
  uint32_t origin_error_bursts = 2;
  uint32_t origin_slowdowns = 1;
  /// Failure probability inside *Error windows.
  double error_probability = 0.5;
  /// Mean window duration (exponential, clamped to [1min, horizon/4]).
  SimTime mean_window = 30 * kMinute;
  /// Extra latency charged by kTierLatency windows.
  SimTime tier_extra_latency = 50 * kMillisecond;
  /// Extra latency charged by kOriginSlow windows.
  SimTime origin_extra_latency = 800 * kMillisecond;
  /// Fastest..max_faulted_tier are fault candidates. Tertiary (the backup
  /// of last resort) is never faulted by default, mirroring the paper's
  /// assumption that the bound-free bottom tier is durable.
  storage::TierIndex max_faulted_tier = 1;
};

/// A deterministic fault schedule: windows sorted by (start, end, kind,
/// tier). Equal seeds and options generate identical schedules.
struct FaultSchedule {
  std::vector<FaultWindow> windows;

  static FaultSchedule Generate(uint64_t seed,
                                const FaultScheduleOptions& options);

  /// True if any non-loss window covers `now`.
  bool AnyActiveAt(SimTime now) const;

  /// Deterministic human-readable rendering (chaos reports).
  std::string ToString() const;
};

/// Seeded, deterministic fault injector: implements both the storage and
/// the origin fault-policy seams, driven by a FaultSchedule and a PCG
/// stream. All probabilistic decisions draw from one RNG in call order, so
/// a fixed (seed, workload) pair reproduces the exact same fault sequence
/// byte for byte.
///
/// Time does not advance on its own: the owner (Warehouse::Tick, or a test
/// harness) calls AdvanceTo with simulation time.
class FaultInjector : public storage::DeviceFaultPolicy,
                      public net::OriginFaultPolicy {
 public:
  FaultInjector(FaultSchedule schedule, uint64_t seed);

  /// Moves the injector clock forward (never backward).
  void AdvanceTo(SimTime now) {
    if (now > now_) now_ = now;
  }
  SimTime now() const { return now_; }

  // storage::DeviceFaultPolicy
  storage::DeviceFaultDecision OnDeviceAccess(
      storage::DeviceOp op, storage::TierIndex tier) override;

  // net::OriginFaultPolicy
  net::OriginFaultDecision OnOriginRequest(bool is_validate) override;

  /// Tier-loss events due at or before `now`, each delivered exactly once.
  /// The caller applies them (Warehouse::SimulateTierFailure) and triggers
  /// recovery.
  std::vector<storage::TierIndex> TakeDueTierLosses(SimTime now);

  const FaultSchedule& schedule() const { return schedule_; }

  struct Stats {
    uint64_t device_faults = 0;
    uint64_t device_latency_hits = 0;
    uint64_t origin_faults = 0;
    uint64_t origin_latency_hits = 0;
    uint64_t tier_losses_delivered = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Deterministic one-line summary (byte-identical across same-seed runs).
  std::string ReportLine() const;

 private:
  FaultSchedule schedule_;
  /// Indices into schedule_.windows of kTierLoss events, in time order;
  /// next_loss_ points at the first undelivered one.
  std::vector<size_t> loss_events_;
  size_t next_loss_ = 0;
  Pcg32 rng_;
  SimTime now_ = 0;
  Stats stats_;
};

}  // namespace cbfww::fault

#endif  // CBFWW_FAULT_FAULT_INJECTOR_H_
