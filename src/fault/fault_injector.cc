#include "fault/fault_injector.h"

#include <algorithm>

#include "util/strings.h"

namespace cbfww::fault {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTierDown:
      return "tier-down";
    case FaultKind::kTierReadError:
      return "tier-read-error";
    case FaultKind::kTierStoreError:
      return "tier-store-error";
    case FaultKind::kTierLatency:
      return "tier-latency";
    case FaultKind::kTierLoss:
      return "tier-loss";
    case FaultKind::kOriginOutage:
      return "origin-outage";
    case FaultKind::kOriginError:
      return "origin-error";
    case FaultKind::kOriginSlow:
      return "origin-slow";
  }
  return "unknown";
}

namespace {

SimTime ClampedWindow(Pcg32& rng, const FaultScheduleOptions& options) {
  double mean = static_cast<double>(options.mean_window);
  auto duration = static_cast<SimTime>(rng.NextExponential(1.0 / mean));
  SimTime lo = 1 * kMinute;
  SimTime hi = std::max<SimTime>(lo, options.horizon / 4);
  return std::clamp(duration, lo, hi);
}

}  // namespace

FaultSchedule FaultSchedule::Generate(uint64_t seed,
                                      const FaultScheduleOptions& options) {
  FaultSchedule schedule;
  Pcg32 rng(seed, /*stream=*/0xFA17);
  storage::TierIndex num_tiers =
      std::max<storage::TierIndex>(1, options.max_faulted_tier + 1);

  auto start_time = [&rng, &options]() -> SimTime {
    // Keep a head start and a tail clear of faults so every run has a
    // warm-up and a fault-free convalescence before final assertions.
    SimTime lo = options.horizon / 10;
    SimTime hi = (options.horizon * 8) / 10;
    return lo + static_cast<SimTime>(
                    rng.NextDouble() * static_cast<double>(hi - lo));
  };
  auto add_windows = [&](uint32_t count, FaultKind kind, bool per_tier,
                         double magnitude) {
    for (uint32_t i = 0; i < count; ++i) {
      FaultWindow w;
      w.kind = kind;
      w.start = start_time();
      w.end = kind == FaultKind::kTierLoss
                  ? w.start
                  : std::min<SimTime>(options.horizon,
                                      w.start + ClampedWindow(rng, options));
      w.tier = per_tier ? static_cast<storage::TierIndex>(
                              rng.NextBounded(static_cast<uint32_t>(num_tiers)))
                        : storage::kNoTier;
      w.magnitude = magnitude;
      schedule.windows.push_back(w);
    }
  };

  add_windows(options.tier_losses, FaultKind::kTierLoss, true, 1.0);
  add_windows(options.tier_outages, FaultKind::kTierDown, true, 1.0);
  add_windows(options.read_error_bursts, FaultKind::kTierReadError, true,
              options.error_probability);
  add_windows(options.store_error_bursts, FaultKind::kTierStoreError, true,
              options.error_probability);
  add_windows(options.latency_spikes, FaultKind::kTierLatency, true,
              static_cast<double>(options.tier_extra_latency));
  add_windows(options.origin_outages, FaultKind::kOriginOutage, false, 1.0);
  add_windows(options.origin_error_bursts, FaultKind::kOriginError, false,
              options.error_probability);
  add_windows(options.origin_slowdowns, FaultKind::kOriginSlow, false,
              static_cast<double>(options.origin_extra_latency));

  std::sort(schedule.windows.begin(), schedule.windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.tier < b.tier;
            });
  return schedule;
}

bool FaultSchedule::AnyActiveAt(SimTime now) const {
  for (const FaultWindow& w : windows) {
    if (w.kind == FaultKind::kTierLoss) continue;
    if (w.start <= now && now < w.end) return true;
  }
  return false;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultWindow& w : windows) {
    out += StrFormat(
        "[%8.1fs .. %8.1fs] %-16s tier=%d magnitude=%.3f\n",
        static_cast<double>(w.start) / kSecond,
        static_cast<double>(w.end) / kSecond,
        std::string(FaultKindName(w.kind)).c_str(), w.tier, w.magnitude);
  }
  return out;
}

FaultInjector::FaultInjector(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed, /*stream=*/0x1AB) {
  for (size_t i = 0; i < schedule_.windows.size(); ++i) {
    if (schedule_.windows[i].kind == FaultKind::kTierLoss) {
      loss_events_.push_back(i);
    }
  }
  std::sort(loss_events_.begin(), loss_events_.end(),
            [this](size_t a, size_t b) {
              return schedule_.windows[a].start < schedule_.windows[b].start;
            });
}

storage::DeviceFaultDecision FaultInjector::OnDeviceAccess(
    storage::DeviceOp op, storage::TierIndex tier) {
  storage::DeviceFaultDecision decision;
  for (const FaultWindow& w : schedule_.windows) {
    if (w.tier != tier) continue;
    if (!(w.start <= now_ && now_ < w.end)) continue;
    switch (w.kind) {
      case FaultKind::kTierDown:
        decision.fail = true;
        break;
      case FaultKind::kTierReadError:
        if (op == storage::DeviceOp::kRead &&
            rng_.NextBernoulli(w.magnitude)) {
          decision.fail = true;
        }
        break;
      case FaultKind::kTierStoreError:
        if (op == storage::DeviceOp::kStore &&
            rng_.NextBernoulli(w.magnitude)) {
          decision.fail = true;
        }
        break;
      case FaultKind::kTierLatency:
        decision.extra_latency += static_cast<SimTime>(w.magnitude);
        break;
      default:
        break;
    }
    if (decision.fail) break;
  }
  if (decision.fail) {
    ++stats_.device_faults;
    decision.extra_latency = 0;
  } else if (decision.extra_latency > 0) {
    ++stats_.device_latency_hits;
  }
  return decision;
}

net::OriginFaultDecision FaultInjector::OnOriginRequest(bool is_validate) {
  (void)is_validate;
  net::OriginFaultDecision decision;
  for (const FaultWindow& w : schedule_.windows) {
    if (!(w.start <= now_ && now_ < w.end)) continue;
    switch (w.kind) {
      case FaultKind::kOriginOutage:
        decision.outcome = net::OriginFaultDecision::Outcome::kTimeout;
        break;
      case FaultKind::kOriginError:
        if (rng_.NextBernoulli(w.magnitude)) {
          decision.outcome = net::OriginFaultDecision::Outcome::kServerError;
        }
        break;
      case FaultKind::kOriginSlow:
        decision.extra_latency += static_cast<SimTime>(w.magnitude);
        break;
      default:
        break;
    }
    if (decision.outcome != net::OriginFaultDecision::Outcome::kOk) break;
  }
  if (decision.outcome != net::OriginFaultDecision::Outcome::kOk) {
    ++stats_.origin_faults;
    decision.extra_latency = 0;
  } else if (decision.extra_latency > 0) {
    ++stats_.origin_latency_hits;
  }
  return decision;
}

std::vector<storage::TierIndex> FaultInjector::TakeDueTierLosses(SimTime now) {
  AdvanceTo(now);
  std::vector<storage::TierIndex> due;
  while (next_loss_ < loss_events_.size() &&
         schedule_.windows[loss_events_[next_loss_]].start <= now_) {
    due.push_back(schedule_.windows[loss_events_[next_loss_]].tier);
    ++next_loss_;
    ++stats_.tier_losses_delivered;
  }
  return due;
}

std::string FaultInjector::ReportLine() const {
  return StrFormat(
      "faults: %llu device, %llu origin, %llu+%llu latency hits, "
      "%llu tier losses",
      static_cast<unsigned long long>(stats_.device_faults),
      static_cast<unsigned long long>(stats_.origin_faults),
      static_cast<unsigned long long>(stats_.device_latency_hits),
      static_cast<unsigned long long>(stats_.origin_latency_hits),
      static_cast<unsigned long long>(stats_.tier_losses_delivered));
}

}  // namespace cbfww::fault
