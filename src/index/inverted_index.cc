#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>

namespace cbfww::index {

void InvertedIndex::Add(uint64_t doc, const text::TermVector& vec) {
  if (Contains(doc)) Remove(doc);
  std::vector<text::TermId> terms;
  terms.reserve(vec.size());
  for (const auto& [term, weight] : vec.entries()) {
    if (weight == 0.0) continue;
    auto& list = postings_[term];
    auto it = std::lower_bound(
        list.begin(), list.end(), doc,
        [](const Posting& p, uint64_t d) { return p.doc < d; });
    list.insert(it, Posting{doc, weight});
    terms.push_back(term);
  }
  doc_norms_[doc] = vec.Norm();
  doc_terms_[doc] = std::move(terms);
}

void InvertedIndex::Remove(uint64_t doc) {
  auto it = doc_terms_.find(doc);
  if (it == doc_terms_.end()) return;
  for (text::TermId term : it->second) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    auto& list = pit->second;
    auto lit = std::lower_bound(
        list.begin(), list.end(), doc,
        [](const Posting& p, uint64_t d) { return p.doc < d; });
    if (lit != list.end() && lit->doc == doc) list.erase(lit);
    if (list.empty()) postings_.erase(pit);
  }
  doc_terms_.erase(it);
  doc_norms_.erase(doc);
}

std::vector<ScoredDoc> InvertedIndex::QueryVector(const text::TermVector& query,
                                                  size_t k) const {
  std::unordered_map<uint64_t, double> dots;
  for (const auto& [term, qweight] : query.entries()) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) dots[p.doc] += qweight * p.weight;
  }
  double qnorm = query.Norm();
  std::vector<ScoredDoc> scored;
  scored.reserve(dots.size());
  for (const auto& [doc, dot] : dots) {
    auto nit = doc_norms_.find(doc);
    double dnorm = nit != doc_norms_.end() ? nit->second : 0.0;
    if (dnorm <= 0.0 || qnorm <= 0.0) continue;
    scored.push_back({doc, dot / (dnorm * qnorm)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<uint64_t> InvertedIndex::DocsContainingAll(
    const std::vector<text::TermId>& terms) const {
  if (terms.empty()) return {};
  // Intersect posting lists, smallest first.
  std::vector<const std::vector<Posting>*> lists;
  for (text::TermId t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return {};
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<uint64_t> result;
  for (const Posting& p : *lists[0]) result.push_back(p.doc);
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    std::vector<uint64_t> next;
    const auto& list = *lists[i];
    size_t a = 0;
    size_t b = 0;
    while (a < result.size() && b < list.size()) {
      if (result[a] < list[b].doc) {
        ++a;
      } else if (list[b].doc < result[a]) {
        ++b;
      } else {
        next.push_back(result[a]);
        ++a;
        ++b;
      }
    }
    result = std::move(next);
  }
  return result;
}

std::vector<uint64_t> InvertedIndex::DocsContainingAny(
    const std::vector<text::TermId>& terms) const {
  std::vector<uint64_t> result;
  for (text::TermId t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) result.push_back(p.doc);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

uint64_t InvertedIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& [term, list] : postings_) {
    (void)term;
    bytes += sizeof(text::TermId) + list.size() * sizeof(Posting);
  }
  bytes += doc_norms_.size() * (sizeof(uint64_t) + sizeof(double));
  for (const auto& [doc, terms] : doc_terms_) {
    (void)doc;
    bytes += sizeof(uint64_t) + terms.size() * sizeof(text::TermId);
  }
  return bytes;
}

}  // namespace cbfww::index
