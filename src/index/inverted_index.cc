#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <queue>

namespace cbfww::index {

namespace {

// Relative slack applied to pruning bounds so floating-point rounding in
// the suffix sums can never evict a document the exhaustive path keeps.
constexpr double kBoundSlack = 1.0 + 1e-9;

// Compaction triggers once tombstones are both numerous and a sizable
// fraction of the live corpus.
constexpr size_t kCompactMinDead = 64;

}  // namespace

void InvertedIndex::Add(uint64_t doc, const text::TermVector& vec) {
  AddInternal(doc, vec);
  ++epoch_;
}

void InvertedIndex::AddBatch(
    const std::vector<std::pair<uint64_t, text::TermVector>>& docs) {
  for (const auto& [doc, vec] : docs) AddInternal(doc, vec);
  ++epoch_;
}

void InvertedIndex::AddInternal(uint64_t doc, const text::TermVector& vec) {
  if (Contains(doc)) {
    // Replace: the old postings are still live — erase them eagerly so a
    // list never holds two postings for one doc.
    auto it = doc_terms_.find(doc);
    ErasePostingsOf(doc, it->second, /*live_postings=*/true);
    doc_terms_.erase(it);
    doc_norms_.erase(doc);
  } else if (auto dit = dead_.find(doc); dit != dead_.end()) {
    // Re-add of a tombstoned doc: purge its stale postings before the new
    // ones land, or queries would filter the fresh postings too.
    ErasePostingsOf(doc, dit->second, /*live_postings=*/false);
    dead_.erase(dit);
  }

  const double norm = vec.Norm();
  auto [sit, new_slot] = doc_slots_.try_emplace(
      doc, static_cast<uint32_t>(slot_docs_.size()));
  if (new_slot) slot_docs_.push_back(doc);
  const uint32_t slot = sit->second;
  std::vector<text::TermId> terms;
  terms.reserve(vec.size());
  for (const auto& [term, weight] : vec.entries()) {
    if (weight == 0.0) continue;
    if (weight < 0.0) nonnegative_ = false;
    const double folded = norm > 0.0 ? weight / norm : 0.0;
    PostingList& list = postings_[term];
    if (!list.docs.empty() && list.docs.back().doc > doc) list.sorted = false;
    list.docs.push_back(Posting{doc, folded, slot});
    ++list.live;
    if (folded > list.max_weight) list.max_weight = folded;
    terms.push_back(term);
  }
  doc_norms_[doc] = norm;
  doc_terms_[doc] = std::move(terms);
}

void InvertedIndex::Remove(uint64_t doc) {
  auto it = doc_terms_.find(doc);
  if (it == doc_terms_.end()) return;
  for (text::TermId term : it->second) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    if (--pit->second.live == 0) postings_.erase(pit);
  }
  if (!it->second.empty()) dead_[doc] = std::move(it->second);
  doc_terms_.erase(it);
  doc_norms_.erase(doc);
  ++epoch_;
  if (dead_.size() >= kCompactMinDead &&
      dead_.size() * 4 >= doc_norms_.size()) {
    CompactAll();
  }
}

void InvertedIndex::ErasePostingsOf(uint64_t doc,
                                    const std::vector<text::TermId>& terms,
                                    bool live_postings) {
  for (text::TermId term : terms) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    PostingList& list = pit->second;
    auto lit = list.docs.end();
    if (list.sorted) {
      lit = std::lower_bound(
          list.docs.begin(), list.docs.end(), doc,
          [](const Posting& p, uint64_t d) { return p.doc < d; });
      if (lit != list.docs.end() && lit->doc != doc) lit = list.docs.end();
    } else {
      lit = std::find_if(list.docs.begin(), list.docs.end(),
                         [doc](const Posting& p) { return p.doc == doc; });
    }
    if (lit == list.docs.end()) continue;
    // Swap-with-back erase is O(1) but breaks sort order; keep order when
    // the list is sorted so conjunctive queries stay cheap.
    if (list.sorted) {
      list.docs.erase(lit);
    } else {
      *lit = list.docs.back();
      list.docs.pop_back();
    }
    if (live_postings && --list.live == 0) postings_.erase(pit);
  }
}

void InvertedIndex::EnsureSorted(PostingList& list) const {
  // live == size means no tombstoned posting hides in this list, so the
  // sweep scan is needed only when the counts disagree.
  const bool has_dead =
      !dead_.empty() && list.live != static_cast<uint32_t>(list.docs.size());
  if (list.sorted && !has_dead) return;
  if (has_dead) {
    auto stale = std::remove_if(
        list.docs.begin(), list.docs.end(),
        [this](const Posting& p) { return dead_.contains(p.doc); });
    if (stale != list.docs.end()) {
      list.docs.erase(stale, list.docs.end());
      double maxw = 0.0;
      for (const Posting& p : list.docs) maxw = std::max(maxw, p.weight);
      list.max_weight = maxw;
    }
  }
  if (!list.sorted) {
    std::sort(list.docs.begin(), list.docs.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    list.sorted = true;
  }
}

void InvertedIndex::CompactAll() const {
  for (auto& [term, list] : postings_) {
    (void)term;
    EnsureSorted(list);
  }
  dead_.clear();
}

namespace {

struct BetterScored {
  // "a ranks above b": higher score, ties by smaller doc id. As the
  // priority_queue comparator this puts the *weakest* kept hit on top.
  bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }
};

}  // namespace

std::vector<ScoredDoc> InvertedIndex::QueryVector(const text::TermVector& query,
                                                  size_t k) const {
  if (k == 0) return {};
  if (!nonnegative_) return QueryVectorExhaustive(query, k);
  const double qnorm = query.Norm();
  if (qnorm <= 0.0) return {};

  // Collect live query terms with their impact bounds; negative query
  // weights break the bound math, so they take the exhaustive path.
  struct Term {
    const PostingList* list;
    text::TermId id;
    double qweight;
    double bound;
  };
  std::vector<Term> terms;
  terms.reserve(query.size());
  for (const auto& [term, qweight] : query.entries()) {
    if (qweight == 0.0) continue;
    if (qweight < 0.0) return QueryVectorExhaustive(query, k);
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    terms.push_back(
        Term{&it->second, term, qweight, qweight * it->second.max_weight});
  }
  if (terms.empty()) return {};
  // Impact order (deterministic: ties by term id). The exhaustive path
  // uses the same order, so surviving documents accumulate their dot
  // products in the same sequence — results match bitwise.
  std::sort(terms.begin(), terms.end(), [](const Term& a, const Term& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  });

  const size_t n = terms.size();
  std::vector<double> suffix(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] + terms[i].bound;

  const bool has_dead = !dead_.empty();
  // Dense stamped accumulators: postings carry a per-document slot, so the
  // hot loop is an array write, and "clearing" between queries is a stamp
  // bump. (The exhaustive reference deliberately keeps the pre-optimization
  // hash-map accumulator as the before/after baseline.)
  if (acc_scores_.size() < slot_docs_.size()) {
    acc_scores_.resize(slot_docs_.size(), 0.0);
    acc_stamp_.resize(slot_docs_.size(), 0);
  }
  const uint64_t cur = ++acc_query_;
  touched_.clear();
  // θ: current k-th best partial dot — a lower bound on the final k-th
  // best score's numerator, so any doc whose total remaining upper bound
  // is strictly below θ can never reach the top k.
  double theta = -std::numeric_limits<double>::infinity();
  std::vector<double> scratch;
  // θ refreshes sample at most this many accumulators (or k, if larger):
  // the ones opened by the highest-impact lists, which hold the largest
  // partials. Any subset of >= k partials yields a valid k-th-best lower
  // bound, and the cap keeps the refresh cost flat as the corpus grows.
  constexpr size_t kThetaSample = 4096;
  size_t i = 0;
  for (; i < n; ++i) {
    if (touched_.size() >= k) {
      if (!(suffix[i] * kBoundSlack < theta)) {
        // Cached θ too weak to prune — refresh it from current partials.
        // The sample must hold at least k scores (touched_ does: the loop
        // guard checked it), or the k-th-best selection below would read
        // past the end when k exceeds kThetaSample.
        const size_t sample =
            std::min(touched_.size(), std::max(kThetaSample, k));
        scratch.clear();
        scratch.reserve(sample);
        for (size_t s = 0; s < sample; ++s) {
          scratch.push_back(acc_scores_[touched_[s]]);
        }
        std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                         scratch.end(), std::greater<double>());
        theta = std::max(theta, scratch[k - 1]);
      }
      // A doc first seen at term i scores at most suffix[i]: stop opening
      // accumulators once that cannot beat the current k-th best.
      if (suffix[i] * kBoundSlack < theta) break;
    }
    const Term& t = terms[i];
    // Only lists actually holding tombstoned postings pay the dead check.
    const bool filter =
        has_dead &&
        t.list->live != static_cast<uint32_t>(t.list->docs.size());
    for (const Posting& p : t.list->docs) {
      if (filter && dead_.contains(p.doc)) continue;
      if (acc_stamp_[p.slot] != cur) {
        acc_stamp_[p.slot] = cur;
        acc_scores_[p.slot] = 0.0;
        touched_.push_back(p.slot);
      }
      acc_scores_[p.slot] += t.qweight * p.weight;
    }
  }
  if (i < n) {
    // AND mode: drop accumulators that cannot reach θ (un-stamping them),
    // then let the remaining (low-impact) terms update survivors only.
    // Tombstoned docs never got this query's stamp, so the dead check is
    // free here.
    const double remaining = suffix[i] * kBoundSlack;
    size_t w = 0;
    for (uint32_t slot : touched_) {
      if (acc_scores_[slot] + remaining < theta) {
        acc_stamp_[slot] = 0;
      } else {
        touched_[w++] = slot;
      }
    }
    touched_.resize(w);
    for (; i < n; ++i) {
      const Term& t = terms[i];
      for (const Posting& p : t.list->docs) {
        if (acc_stamp_[p.slot] == cur) {
          acc_scores_[p.slot] += t.qweight * p.weight;
        }
      }
    }
  }

  // Bounded selection: k-element heap instead of sorting every candidate.
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, BetterScored> heap;
  for (uint32_t slot : touched_) {
    ScoredDoc cand{slot_docs_[slot], acc_scores_[slot] / qnorm};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (cand.score > heap.top().score ||
               (cand.score == heap.top().score && cand.doc < heap.top().doc)) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredDoc> out(heap.size());
  for (size_t j = heap.size(); j-- > 0;) {
    out[j] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<ScoredDoc> InvertedIndex::QueryVectorExhaustive(
    const text::TermVector& query, size_t k) const {
  const double qnorm = query.Norm();
  if (qnorm <= 0.0) return {};
  struct Term {
    const PostingList* list;
    text::TermId id;
    double qweight;
    double bound;
  };
  std::vector<Term> terms;
  terms.reserve(query.size());
  for (const auto& [term, qweight] : query.entries()) {
    if (qweight == 0.0) continue;
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    terms.push_back(Term{&it->second, term, qweight,
                         std::abs(qweight) * it->second.max_weight});
  }
  // Same accumulation order as the pruned path (see QueryVector) so both
  // paths produce bitwise-identical scores.
  std::sort(terms.begin(), terms.end(), [](const Term& a, const Term& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  });

  const bool has_dead = !dead_.empty();
  std::unordered_map<uint64_t, double> dots;
  for (const Term& t : terms) {
    const bool filter =
        has_dead &&
        t.list->live != static_cast<uint32_t>(t.list->docs.size());
    for (const Posting& p : t.list->docs) {
      if (filter && dead_.contains(p.doc)) continue;
      dots[p.doc] += t.qweight * p.weight;
    }
  }
  std::vector<ScoredDoc> scored;
  scored.reserve(dots.size());
  for (const auto& [doc, dot] : dots) scored.push_back({doc, dot / qnorm});
  std::sort(scored.begin(), scored.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

namespace {

// First index in [from, docs.size()) with docs[i].doc >= target: gallop
// out of `from`, then binary-search the bracketed range.
template <typename PostingT>
size_t GallopLowerBound(const std::vector<PostingT>& docs, size_t from,
                        uint64_t target) {
  const size_t n = docs.size();
  if (from >= n || docs[from].doc >= target) return from;
  size_t step = 1;
  size_t lo = from;
  while (lo + step < n && docs[lo + step].doc < target) {
    lo += step;
    step <<= 1;
  }
  const size_t hi = std::min(lo + step, n);
  // Invariant: docs[lo].doc < target <= docs[hi].doc (or hi == n).
  auto it = std::lower_bound(
      docs.begin() + static_cast<ptrdiff_t>(lo + 1),
      docs.begin() + static_cast<ptrdiff_t>(hi), target,
      [](const PostingT& p, uint64_t d) { return p.doc < d; });
  return static_cast<size_t>(it - docs.begin());
}

}  // namespace

std::vector<uint64_t> InvertedIndex::DocsContainingAll(
    const std::vector<text::TermId>& terms) const {
  if (terms.empty()) return {};
  std::vector<PostingList*> lists;
  lists.reserve(terms.size());
  for (text::TermId t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return {};
    EnsureSorted(it->second);
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(), [](const auto* a, const auto* b) {
    return a->docs.size() < b->docs.size();
  });
  std::vector<uint64_t> result;
  result.reserve(lists[0]->docs.size());
  for (const Posting& p : lists[0]->docs) result.push_back(p.doc);
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    const auto& docs = lists[i]->docs;
    std::vector<uint64_t> next;
    next.reserve(result.size());
    size_t pos = 0;
    for (uint64_t d : result) {
      pos = GallopLowerBound(docs, pos, d);
      if (pos == docs.size()) break;
      if (docs[pos].doc == d) next.push_back(d);
    }
    result = std::move(next);
  }
  return result;
}

std::vector<uint64_t> InvertedIndex::DocsContainingAny(
    const std::vector<text::TermId>& terms) const {
  std::vector<const PostingList*> lists;
  lists.reserve(terms.size());
  for (text::TermId t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    EnsureSorted(it->second);
    if (!it->second.docs.empty()) lists.push_back(&it->second);
  }
  if (lists.empty()) return {};
  if (lists.size() == 1) {
    std::vector<uint64_t> only;
    only.reserve(lists[0]->docs.size());
    for (const Posting& p : lists[0]->docs) only.push_back(p.doc);
    return only;
  }
  // Multi-way merge of sorted lists with duplicate suppression.
  struct Cursor {
    uint64_t doc;
    size_t list;
    size_t pos;
    bool operator>(const Cursor& other) const { return doc > other.doc; }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heads;
  size_t total = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    heads.push(Cursor{lists[i]->docs[0].doc, i, 0});
    total += lists[i]->docs.size();
  }
  std::vector<uint64_t> result;
  result.reserve(total);
  while (!heads.empty()) {
    Cursor c = heads.top();
    heads.pop();
    if (result.empty() || result.back() != c.doc) result.push_back(c.doc);
    if (c.pos + 1 < lists[c.list]->docs.size()) {
      heads.push(
          Cursor{lists[c.list]->docs[c.pos + 1].doc, c.list, c.pos + 1});
    }
  }
  return result;
}

uint64_t InvertedIndex::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& [term, list] : postings_) {
    (void)term;
    bytes += sizeof(text::TermId) + sizeof(PostingList) +
             list.docs.size() * sizeof(Posting);
  }
  bytes += doc_norms_.size() * (sizeof(uint64_t) + sizeof(double));
  bytes += doc_slots_.size() * (sizeof(uint64_t) + sizeof(uint32_t)) +
           slot_docs_.size() * sizeof(uint64_t);
  for (const auto& [doc, terms] : doc_terms_) {
    (void)doc;
    bytes += sizeof(uint64_t) + terms.size() * sizeof(text::TermId);
  }
  for (const auto& [doc, terms] : dead_) {
    (void)doc;
    bytes += sizeof(uint64_t) + terms.size() * sizeof(text::TermId);
  }
  return bytes;
}

}  // namespace cbfww::index
