#ifndef CBFWW_INDEX_INDEX_HIERARCHY_H_
#define CBFWW_INDEX_INDEX_HIERARCHY_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "index/inverted_index.h"

namespace cbfww::index {

/// The four object levels of the paper's hierarchy (Section 4.1).
enum class ObjectLevel : int {
  kRaw = 0,
  kPhysical = 1,
  kLogical = 2,
  kRegion = 3,
};

constexpr int kNumObjectLevels = 4;

std::string_view ObjectLevelName(ObjectLevel level);

/// One inverted index per object level plus an "index for indices": a
/// term-routing table that tells which level indexes contain a term, so a
/// query touches only the indexes that can answer it (paper Section 4.1,
/// "we have to prepare an index for indices to form a index hierarchy").
class IndexHierarchy {
 public:
  IndexHierarchy() = default;

  InvertedIndex& level(ObjectLevel l) { return indexes_[static_cast<int>(l)]; }
  const InvertedIndex& level(ObjectLevel l) const {
    return indexes_[static_cast<int>(l)];
  }

  /// Adds a document vector at a level (updates the routing table).
  void Add(ObjectLevel l, uint64_t doc, const text::TermVector& vec);

  /// Batched ingest at one level (single epoch bump; postings sorted
  /// lazily on first conjunctive query).
  void AddBatch(ObjectLevel l,
                const std::vector<std::pair<uint64_t, text::TermVector>>& docs);

  /// Removes a document from a level.
  void Remove(ObjectLevel l, uint64_t doc);

  /// Bitmask of levels whose index contains `term` (bit i = level i); this
  /// consults only the routing table, not the posting lists.
  uint32_t LevelsContaining(text::TermId term) const;

  /// Top-k at one level.
  std::vector<ScoredDoc> Query(ObjectLevel l, const text::TermVector& query,
                               size_t k) const {
    return level(l).QueryVector(query, k);
  }

  /// Total memory of all level indexes.
  uint64_t MemoryBytes() const;

 private:
  std::array<InvertedIndex, kNumObjectLevels> indexes_;
};

}  // namespace cbfww::index

#endif  // CBFWW_INDEX_INDEX_HIERARCHY_H_
