#include "index/index_hierarchy.h"

namespace cbfww::index {

std::string_view ObjectLevelName(ObjectLevel level) {
  switch (level) {
    case ObjectLevel::kRaw:
      return "raw";
    case ObjectLevel::kPhysical:
      return "physical";
    case ObjectLevel::kLogical:
      return "logical";
    case ObjectLevel::kRegion:
      return "region";
  }
  return "unknown";
}

void IndexHierarchy::Add(ObjectLevel l, uint64_t doc,
                         const text::TermVector& vec) {
  level(l).Add(doc, vec);
}

void IndexHierarchy::AddBatch(
    ObjectLevel l,
    const std::vector<std::pair<uint64_t, text::TermVector>>& docs) {
  level(l).AddBatch(docs);
}

void IndexHierarchy::Remove(ObjectLevel l, uint64_t doc) {
  level(l).Remove(doc);
}

uint32_t IndexHierarchy::LevelsContaining(text::TermId term) const {
  uint32_t mask = 0;
  for (int i = 0; i < kNumObjectLevels; ++i) {
    if (indexes_[i].TermPresent(term)) mask |= (1u << i);
  }
  return mask;
}

uint64_t IndexHierarchy::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& idx : indexes_) bytes += idx.MemoryBytes();
  return bytes;
}

}  // namespace cbfww::index
