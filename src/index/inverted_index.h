#ifndef CBFWW_INDEX_INVERTED_INDEX_H_
#define CBFWW_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "text/term_vector.h"

namespace cbfww::index {

/// A document id with a relevance score.
struct ScoredDoc {
  uint64_t doc = 0;
  double score = 0.0;
};

/// In-memory inverted index over sparse term vectors.
///
/// Posting weights are stored pre-divided by the document's L2 norm, so a
/// query's cosine scores need one division by the query norm at the end and
/// never touch a per-document norm table. Top-k retrieval runs a max-score
/// pruned term-at-a-time evaluation (exact: provably identical to the
/// exhaustive path, which is kept as `QueryVectorExhaustive` for oracle
/// tests and before/after benchmarks). Ingest appends postings and sorts
/// lists lazily on first conjunctive query; `Remove` tombstones documents
/// and compacts lazily once enough garbage accumulates, so warehouse
/// crawls never pay a per-posting sorted insert. Reports its memory
/// footprint, which the Storage Manager uses when deciding which indexes
/// stay in fast storage (paper Section 4.1, "Hierarchy of Indices").
///
/// Not thread-safe; a shard's index is owned by one worker (DESIGN.md
/// "Concurrency model"). Lazy sorting/compaction mutate internal state
/// from const queries.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds (or replaces) the document's vector. Appends postings (O(terms)
  /// amortized); lists are re-sorted lazily when a conjunctive query needs
  /// doc order.
  void Add(uint64_t doc, const text::TermVector& vec);

  /// Batched ingest: adds every (doc, vector) pair, bumping the epoch
  /// once. Semantically identical to calling Add in a loop.
  void AddBatch(const std::vector<std::pair<uint64_t, text::TermVector>>& docs);

  /// Removes a document; no-op if absent. O(terms) — postings are
  /// tombstoned and swept out by a later compaction, not erased in place.
  void Remove(uint64_t doc);

  bool Contains(uint64_t doc) const { return doc_norms_.contains(doc); }

  /// Top-k documents by cosine similarity to `query`. Results sorted by
  /// descending score; ties broken by ascending doc id. Uses max-score
  /// pruning + a bounded heap; output is identical to
  /// QueryVectorExhaustive (same docs, same scores, same order).
  std::vector<ScoredDoc> QueryVector(const text::TermVector& query,
                                     size_t k) const;

  /// Reference top-k: scores every candidate, then fully sorts. Kept as
  /// the pre-pruning baseline for oracle tests and bench_hotpath.
  std::vector<ScoredDoc> QueryVectorExhaustive(const text::TermVector& query,
                                               size_t k) const;

  /// Documents whose vectors contain *all* of `terms` (conjunctive
  /// MENTION). Galloping intersection, smallest list first.
  std::vector<uint64_t> DocsContainingAll(
      const std::vector<text::TermId>& terms) const;

  /// Documents containing *any* of `terms` (multi-way sorted merge).
  std::vector<uint64_t> DocsContainingAny(
      const std::vector<text::TermId>& terms) const;

  bool TermPresent(text::TermId term) const {
    // Lists with no live posting are erased eagerly, so presence in the
    // map means at least one live document carries the term.
    return postings_.contains(term);
  }

  size_t num_documents() const { return doc_norms_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Monotone counter bumped by every logical mutation (Add/AddBatch/
  /// Remove). Result caches key their entries on it for invalidation.
  uint64_t epoch() const { return epoch_; }

  /// Removed documents whose postings have not been swept yet.
  size_t pending_tombstones() const { return dead_.size(); }

  /// Forces the lazy sweep: drops all tombstoned postings, sorts every
  /// list, and recomputes per-term weight bounds.
  void Compact() const { CompactAll(); }

  /// Approximate memory footprint of posting lists + norms, in bytes.
  uint64_t MemoryBytes() const;

 private:
  struct Posting {
    uint64_t doc;
    /// Term weight divided by the document's L2 norm (norm-folded), so
    /// dot products over postings are cosine numerators directly.
    double weight;
    /// Dense per-document slot (doc_slots_): index into the stamped query
    /// accumulator arrays, so the top-k hot loop writes a flat array
    /// instead of probing a hash table per posting.
    uint32_t slot;
  };
  struct PostingList {
    std::vector<Posting> docs;
    /// Upper bound on live posting weights (exact after compaction, may
    /// be stale-high after removals — always a valid bound).
    double max_weight = 0.0;
    /// Number of live (non-tombstoned) postings.
    uint32_t live = 0;
    /// Whether `docs` is currently sorted by doc id.
    bool sorted = true;
  };

  void AddInternal(uint64_t doc, const text::TermVector& vec);
  /// Erases this doc's postings from the given lists. `live_postings`
  /// tells whether the postings still count toward the lists' live totals
  /// (re-add of a live doc) or were already tombstoned (re-add of a
  /// removed doc).
  void ErasePostingsOf(uint64_t doc, const std::vector<text::TermId>& terms,
                       bool live_postings);
  /// Sorts a list by doc id (and drops tombstoned postings) if needed.
  void EnsureSorted(PostingList& list) const;
  /// Sweeps every list: drops tombstoned postings, restores sort order,
  /// recomputes max weights, clears the tombstone set.
  void CompactAll() const;

  // term -> postings. Mutable: queries sort/compact lazily.
  mutable std::unordered_map<text::TermId, PostingList> postings_;
  // doc -> L2 norm of its vector (document-liveness + footprint source).
  std::unordered_map<uint64_t, double> doc_norms_;
  // doc -> terms it contains (for removal).
  std::unordered_map<uint64_t, std::vector<text::TermId>> doc_terms_;
  // Tombstones: removed doc -> the terms whose lists still hold its stale
  // postings. Swept by CompactAll.
  mutable std::unordered_map<uint64_t, std::vector<text::TermId>> dead_;
  // doc -> dense slot, and the inverse. Slots are stable across re-adds
  // and never recycled, so the scratch arrays below are bounded by the
  // number of distinct documents ever added.
  std::unordered_map<uint64_t, uint32_t> doc_slots_;
  std::vector<uint64_t> slot_docs_;
  // Per-query accumulator scratch: a slot's score is valid only when its
  // stamp equals the current query number, which makes clearing free.
  mutable std::vector<double> acc_scores_;
  mutable std::vector<uint64_t> acc_stamp_;
  mutable uint64_t acc_query_ = 0;
  mutable std::vector<uint32_t> touched_;
  uint64_t epoch_ = 0;
  // Max-score pruning assumes non-negative weights; one negative posting
  // flips QueryVector to the exhaustive path permanently (never happens
  // with TF-IDF input).
  bool nonnegative_ = true;
};

}  // namespace cbfww::index

#endif  // CBFWW_INDEX_INVERTED_INDEX_H_
