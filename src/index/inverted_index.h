#ifndef CBFWW_INDEX_INVERTED_INDEX_H_
#define CBFWW_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/term_vector.h"

namespace cbfww::index {

/// A document id with a relevance score.
struct ScoredDoc {
  uint64_t doc = 0;
  double score = 0.0;
};

/// In-memory inverted index over sparse term vectors.
///
/// Posting lists map term -> (doc, weight); document norms are cached so
/// QueryVector scores are cosine similarities. Supports removal (for object
/// eviction / version turnover) and reports its memory footprint, which the
/// Storage Manager uses when deciding which indexes stay in fast storage
/// (paper Section 4.1, "Hierarchy of Indices").
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds (or replaces) the document's vector.
  void Add(uint64_t doc, const text::TermVector& vec);

  /// Removes a document; no-op if absent.
  void Remove(uint64_t doc);

  bool Contains(uint64_t doc) const { return doc_norms_.contains(doc); }

  /// Top-k documents by cosine similarity to `query`. Results sorted by
  /// descending score; ties broken by ascending doc id.
  std::vector<ScoredDoc> QueryVector(const text::TermVector& query,
                                     size_t k) const;

  /// Documents whose vectors contain *all* of `terms` (conjunctive MENTION).
  std::vector<uint64_t> DocsContainingAll(
      const std::vector<text::TermId>& terms) const;

  /// Documents containing *any* of `terms`.
  std::vector<uint64_t> DocsContainingAny(
      const std::vector<text::TermId>& terms) const;

  bool TermPresent(text::TermId term) const {
    auto it = postings_.find(term);
    return it != postings_.end() && !it->second.empty();
  }

  size_t num_documents() const { return doc_norms_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Approximate memory footprint of posting lists + norms, in bytes.
  uint64_t MemoryBytes() const;

 private:
  struct Posting {
    uint64_t doc;
    double weight;
  };
  // term -> postings sorted by doc id.
  std::unordered_map<text::TermId, std::vector<Posting>> postings_;
  // doc -> L2 norm of its vector (for cosine scoring).
  std::unordered_map<uint64_t, double> doc_norms_;
  // doc -> terms it contains (for removal).
  std::unordered_map<uint64_t, std::vector<text::TermId>> doc_terms_;
};

}  // namespace cbfww::index

#endif  // CBFWW_INDEX_INVERTED_INDEX_H_
