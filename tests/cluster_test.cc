#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "cluster/kmeans.h"
#include "cluster/streaming_kmedian.h"
#include "util/rng.h"

namespace cbfww::cluster {
namespace {

/// Generates points around `k` well-separated planted centers in a sparse
/// term space; labels returned alongside.
struct PlantedData {
  std::vector<text::TermVector> points;
  std::vector<int32_t> labels;
  std::vector<text::TermVector> centers;
};

PlantedData MakePlanted(uint32_t k, uint32_t per_cluster, uint64_t seed) {
  PlantedData data;
  Pcg32 rng(seed);
  for (uint32_t c = 0; c < k; ++c) {
    // Center: a block of 8 dedicated dimensions.
    text::TermVector center;
    for (uint32_t d = 0; d < 8; ++d) center.Add(c * 8 + d, 1.0);
    center.Scale(1.0 / center.Norm());
    data.centers.push_back(center);
    for (uint32_t i = 0; i < per_cluster; ++i) {
      text::TermVector p = center;
      // Small noise in the cluster's own dimensions.
      p.Add(c * 8 + rng.NextBounded(8), 0.2 * rng.NextDouble());
      p.Scale(1.0 / p.Norm());
      data.points.push_back(p);
      data.labels.push_back(static_cast<int32_t>(c));
    }
  }
  // Deterministic shuffle so clusters arrive interleaved.
  for (size_t i = data.points.size(); i > 1; --i) {
    size_t j = rng.NextBounded(static_cast<uint32_t>(i));
    std::swap(data.points[i - 1], data.points[j]);
    std::swap(data.labels[i - 1], data.labels[j]);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Batch k-means
// ---------------------------------------------------------------------------

TEST(KMeansTest, RecoversPlantedClusters) {
  PlantedData data = MakePlanted(4, 50, 1);
  KMeans::Options opts;
  opts.k = 4;
  KMeans km(opts);
  KMeansResult result = km.Fit(data.points);
  EXPECT_EQ(result.centers.size(), 4u);
  double purity = ClusterPurity(result.assignment, data.labels);
  EXPECT_GT(purity, 0.95);
}

TEST(KMeansTest, SsqDecreasesWithMoreClusters) {
  PlantedData data = MakePlanted(6, 40, 2);
  KMeans::Options o1;
  o1.k = 1;
  KMeans::Options o6;
  o6.k = 6;
  double ssq1 = KMeans(o1).Fit(data.points).ssq;
  double ssq6 = KMeans(o6).Fit(data.points).ssq;
  EXPECT_LT(ssq6, ssq1 * 0.5);
}

TEST(KMeansTest, EmptyAndSingleton) {
  KMeans km(KMeans::Options{});
  EXPECT_TRUE(km.Fit({}).centers.empty());
  text::TermVector v;
  v.Add(1, 1.0);
  KMeansResult r = km.Fit({v});
  EXPECT_EQ(r.centers.size(), 1u);
  EXPECT_NEAR(r.ssq, 0.0, 1e-12);
}

TEST(KMeansTest, AssignToNearestCorrect) {
  text::TermVector c0, c1;
  c0.Add(0, 1.0);
  c1.Add(1, 1.0);
  text::TermVector p;
  p.Add(0, 0.9);
  p.Add(1, 0.1);
  auto assign = AssignToNearest({p}, {c0, c1});
  EXPECT_EQ(assign[0], 0u);
}

TEST(KMeansTest, PurityBounds) {
  // Perfect clustering.
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 1, 1}, {5, 5, 7, 7}), 1.0);
  // Totally mixed two-cluster case.
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
  EXPECT_DOUBLE_EQ(ClusterPurity({}, {}), 0.0);
}

// ---------------------------------------------------------------------------
// Streaming k-median
// ---------------------------------------------------------------------------

StreamingKMedianOptions StreamOpts(uint32_t k) {
  StreamingKMedianOptions opts;
  opts.target_clusters = k;
  opts.max_facilities = 4 * k;
  opts.seed = 3;
  return opts;
}

TEST(StreamingKMedianTest, MemoryBoundedByFacilityBudget) {
  PlantedData data = MakePlanted(5, 200, 4);
  StreamingKMedian stream(StreamOpts(5));
  for (const auto& p : data.points) stream.Add(p);
  EXPECT_LE(stream.facilities().size(), StreamOpts(5).max_facilities);
  EXPECT_EQ(stream.points_processed(), data.points.size());
}

TEST(StreamingKMedianTest, FinalClustersRecoverPlanted) {
  PlantedData data = MakePlanted(4, 150, 5);
  StreamingKMedian stream(StreamOpts(4));
  for (const auto& p : data.points) stream.Add(p);
  auto finals = stream.FinalClusters();
  ASSERT_LE(finals.size(), 4u);
  ASSERT_GE(finals.size(), 2u);

  std::vector<text::TermVector> centers;
  for (const auto& f : finals) centers.push_back(f.center);
  auto assign = AssignToNearest(data.points, centers);
  double purity = ClusterPurity(assign, data.labels);
  EXPECT_GT(purity, 0.8);
}

TEST(StreamingKMedianTest, SsqWithinFactorOfBatch) {
  PlantedData data = MakePlanted(5, 100, 6);
  StreamingKMedian stream(StreamOpts(5));
  for (const auto& p : data.points) stream.Add(p);
  auto finals = stream.FinalClusters();
  std::vector<text::TermVector> stream_centers;
  for (const auto& f : finals) stream_centers.push_back(f.center);
  auto stream_assign = AssignToNearest(data.points, stream_centers);
  double stream_ssq =
      SumSquaredDistance(data.points, stream_centers, stream_assign);

  KMeans::Options bopts;
  bopts.k = 5;
  double batch_ssq = KMeans(bopts).Fit(data.points).ssq;
  // Single-pass should be within a small constant factor of batch quality.
  EXPECT_LT(stream_ssq, std::max(batch_ssq * 5.0, batch_ssq + 1.0));
}

TEST(StreamingKMedianTest, MergeEventsPreserveAggregableIdentity) {
  PlantedData data = MakePlanted(3, 300, 7);
  StreamingKMedianOptions opts = StreamOpts(3);
  opts.max_facilities = 8;  // Force many phase changes.
  StreamingKMedian stream(opts);
  std::unordered_set<uint32_t> assigned_ids;
  for (const auto& p : data.points) assigned_ids.insert(stream.Add(p));

  // Replay merges: every assigned id must resolve to a live facility.
  std::unordered_map<uint32_t, uint32_t> redirect;
  for (const MergeEvent& m : stream.TakeMergeEvents()) {
    redirect[m.from] = m.into;
  }
  auto resolve = [&](uint32_t id) {
    int hops = 0;
    while (redirect.contains(id) && hops < 10000) {
      id = redirect[id];
      ++hops;
    }
    return id;
  };
  for (uint32_t id : assigned_ids) {
    uint32_t live = resolve(id);
    EXPECT_TRUE(stream.facilities().contains(live))
        << "id " << id << " resolved to dead facility " << live;
  }
}

TEST(StreamingKMedianTest, PhaseChangeRaisesCost) {
  StreamingKMedianOptions opts = StreamOpts(2);
  opts.max_facilities = 4;
  opts.initial_facility_cost = 0.01;
  StreamingKMedian stream(opts);
  double initial = stream.facility_cost();
  Pcg32 rng(8);
  // Scatter points widely so many facilities open.
  for (int i = 0; i < 500; ++i) {
    text::TermVector p;
    p.Add(rng.NextBounded(1000), 1.0);
    stream.Add(p);
  }
  EXPECT_GT(stream.num_phases(), 0u);
  EXPECT_GT(stream.facility_cost(), initial);
  EXPECT_LE(stream.facilities().size(), opts.max_facilities);
}

TEST(StreamingKMedianTest, NearestOnEmptyIsInvalid) {
  StreamingKMedian stream(StreamOpts(2));
  text::TermVector p;
  p.Add(0, 1.0);
  EXPECT_EQ(stream.Nearest(p), UINT32_MAX);
  EXPECT_TRUE(stream.FinalClusters().empty());
}

TEST(StreamingKMedianTest, IdenticalPointsOneFacility) {
  StreamingKMedian stream(StreamOpts(3));
  text::TermVector p;
  p.Add(5, 1.0);
  uint32_t first = stream.Add(p);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(stream.Add(p), first);
  EXPECT_EQ(stream.facilities().size(), 1u);
  EXPECT_DOUBLE_EQ(stream.facilities().at(first).weight, 51.0);
}

TEST(StreamingKMedianTest, DeterministicForSeed) {
  PlantedData data = MakePlanted(3, 60, 9);
  StreamingKMedian a(StreamOpts(3)), b(StreamOpts(3));
  for (const auto& p : data.points) {
    EXPECT_EQ(a.Add(p), b.Add(p));
  }
}

}  // namespace
}  // namespace cbfww::cluster
