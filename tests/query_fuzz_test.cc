#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/query/query_executor.h"
#include "core/query/query_parser.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/fault_injector.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace cbfww::core::query {
namespace {

/// Minimal catalog: a handful of objects with deterministic attributes so
/// randomly generated queries can execute.
class FuzzCatalog : public QueryCatalog {
 public:
  std::vector<uint64_t> AllObjects(EntityKind kind) const override {
    (void)kind;
    return {1, 2, 3, 4, 5};
  }
  Value GetAttribute(EntityKind kind, uint64_t oid,
                     const std::string& attr) const override {
    (void)kind;
    if (attr == "oid") return Value(static_cast<int64_t>(oid));
    if (attr == "size") return Value(static_cast<int64_t>(oid * 100));
    if (attr == "title") return Value(std::string("title of ") +
                                      std::to_string(oid));
    if (attr == "physicals") return Value(std::vector<uint64_t>{oid});
    if (attr == "end_at") return Value(static_cast<int64_t>(oid));
    return Value();
  }
  SimTime LastReference(EntityKind, uint64_t oid) const override {
    return static_cast<SimTime>(oid) * kSecond;
  }
  uint64_t Frequency(EntityKind, uint64_t oid) const override { return oid; }
  bool RowMentions(EntityKind, uint64_t oid, const std::string&,
                   const std::vector<std::string>&) const override {
    return oid % 2 == 0;
  }
};

/// Builds a random query from grammar fragments. Roughly half are valid.
std::string RandomQuery(Pcg32& rng) {
  static const char* kFragments[] = {
      "SELECT",        "FROM",          "WHERE",         "Physical_Page",
      "Logical_Page",  "Raw_Object",    "Semantic_Region", "p",
      "l",             "oid",           "p.oid",         "l.physicals",
      "p.size",        "p.title",       "MENTION",       "'data'",
      "\"warehouse\"", "MFU",           "LRU",           "MRU",
      "LFU",           "10",            "200,000",       ">",
      "<",             "=",             "!=",            ">=",
      "AND",           "OR",            "NOT",           "EXISTS",
      "IN",            "(",             ")",             "*",
      ",",             ";",             "end_at",        "COUNT",
      "SUM",           "AVG",           "5.5",
  };
  std::string q;
  uint32_t len = 2 + rng.NextBounded(18);
  for (uint32_t i = 0; i < len; ++i) {
    q += kFragments[rng.NextBounded(
        static_cast<uint32_t>(std::size(kFragments)))];
    q += " ";
  }
  return q;
}

/// Builds a structurally plausible random query: valid skeleton, random
/// predicate fragments — a large fraction parse and execute.
std::string RandomSkeletonQuery(Pcg32& rng) {
  static const char* kEntities[] = {"Physical_Page", "Logical_Page",
                                    "Raw_Object", "Semantic_Region"};
  static const char* kMods[] = {"", "MFU ", "LRU 3 ", "MRU ", "LFU 2 "};
  static const char* kProjs[] = {"p.oid", "p.oid, p.size", "*",
                                 "COUNT(*)", "AVG(p.size)"};
  static const char* kPreds[] = {
      "p.size > 100",
      "p.size > 100 AND p.oid < 4",
      "NOT p.size = 300",
      "p.title MENTION 'title'",
      "p.oid IN p.physicals",
      "EXISTS (SELECT * FROM Raw_Object r WHERE r.oid = p.oid)",
      "end_at(p.oid) = 2",
      "p.size > 100 OR p.size < 50",
  };
  std::string q = "SELECT ";
  q += kMods[rng.NextBounded(5)];
  q += kProjs[rng.NextBounded(5)];
  q += " FROM ";
  q += kEntities[rng.NextBounded(4)];
  q += " p";
  if (rng.NextBernoulli(0.8)) {
    q += " WHERE ";
    q += kPreds[rng.NextBounded(8)];
    if (rng.NextBernoulli(0.3)) {
      q += " AND ";
      q += kPreds[rng.NextBounded(8)];
    }
  }
  return q;
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, RandomTokenSoupNeverCrashes) {
  Pcg32 rng(GetParam());
  FuzzCatalog catalog;
  QueryExecutor::Options opts;
  opts.max_rows = 100;
  QueryExecutor executor(&catalog, opts);
  for (int i = 0; i < 2000; ++i) {
    std::string q = RandomQuery(rng);
    auto stmt = ParseQuery(q);
    if (!stmt.ok()) continue;  // Clean rejection is fine.
    // Whatever parsed must execute without crashing (errors are fine).
    auto result = executor.Execute(**stmt);
    if (result.ok()) {
      EXPECT_LE(result->rows.size(), 100u);
    }
  }
}

TEST_P(QueryFuzzTest, SkeletonQueriesParseAndExecute) {
  Pcg32 rng(GetParam() * 31 + 7);
  FuzzCatalog catalog;
  QueryExecutor::Options opts;
  opts.max_rows = 100;
  QueryExecutor executor(&catalog, opts);
  int parsed = 0;
  int executed = 0;
  for (int i = 0; i < 500; ++i) {
    std::string q = RandomSkeletonQuery(rng);
    auto stmt = ParseQuery(q);
    ASSERT_TRUE(stmt.ok()) << q << " -> " << stmt.status().ToString();
    ++parsed;
    auto result = executor.Execute(**stmt);
    if (result.ok()) {
      ++executed;
      EXPECT_LE(result->rows.size(), 100u);
    }
  }
  EXPECT_EQ(parsed, 500);
  // Most skeleton queries execute cleanly (a few hit type errors like
  // end_at over a non-oid, which must fail gracefully).
  EXPECT_GT(executed, 250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(QueryFuzzTest, DeeplyNestedSubqueriesParse) {
  // EXISTS nesting several levels deep must not blow the parser.
  std::string inner = "SELECT * FROM Physical_Page p WHERE p.size > 1";
  for (int depth = 0; depth < 12; ++depth) {
    inner = "SELECT * FROM Logical_Page l WHERE EXISTS (" + inner + ")";
  }
  auto stmt = ParseQuery(inner);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  FuzzCatalog catalog;
  QueryExecutor executor(&catalog);
  auto result = executor.Execute(**stmt);
  EXPECT_TRUE(result.ok());
}

TEST(QueryFuzzTest, PathologicalInputsRejectedCleanly) {
  const char* kInputs[] = {
      "SELECT",
      "SELECT SELECT SELECT",
      "SELECT ((((((((((",
      "SELECT p.oid FROM Physical_Page WHERE (((p.size > 1)",
      "SELECT MFU MFU p.oid FROM Physical_Page",
      "SELECT p..oid FROM Physical_Page",
      "SELECT 'unterminated FROM Physical_Page",
      "SELECT \x01\x02 FROM Physical_Page",
      "SELECT p.oid FROM Physical_Page p WHERE p.title MENTION MENTION 'x'",
  };
  for (const char* input : kInputs) {
    auto stmt = ParseQuery(input);
    EXPECT_FALSE(stmt.ok()) << "should reject: " << input;
  }
}

// Fuzzes warehouse queries while a fault schedule is active: random
// skeleton queries against the live catalog must never crash (clean errors
// are fine), and the epoch-keyed result cache must never serve a result
// computed before a tier failure.
TEST(QueryFuzzTest, QueriesDuringActiveFaultScheduleNeverCrash) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 40;
  copts.seed = 55;
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions wopts;
  wopts.memory_bytes = 1ull * 1024 * 1024;
  core::Warehouse wh(&corpus, &origin, nullptr, wopts);

  fault::FaultScheduleOptions fopts;
  fopts.horizon = 4 * kHour;
  fopts.read_error_bursts = 3;
  fopts.origin_outages = 2;
  fopts.error_probability = 0.7;
  fault::FaultInjector injector(fault::FaultSchedule::Generate(31, fopts), 31);
  wh.AttachFaultInjector(&injector);

  trace::WorkloadOptions w;
  w.horizon = 4 * kHour;
  w.sessions_per_hour = 50;
  w.seed = 19;
  trace::WorkloadGenerator gen(&corpus, nullptr, w);
  auto events = gen.Generate();
  ASSERT_FALSE(events.empty());

  const char* fixed = "SELECT MFU 5 p.oid FROM Physical_Page p";
  Pcg32 rng(404);
  size_t tier_failures_injected = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    wh.ProcessEvent(events[i]);
    if (i % 7 != 0) continue;
    // Random query against the live, possibly-degraded warehouse.
    auto result = wh.ExecuteQuery(RandomSkeletonQuery(rng));
    (void)result;  // Errors are fine; crashing or corrupting state is not.

    if (i % 63 == 0) {
      // Epoch-cache contract under failures: a back-to-back repeat hits,
      // then a tier failure invalidates — the pre-failure result must not
      // be served again.
      ASSERT_TRUE(wh.ExecuteQuery(fixed).ok());
      uint64_t hits_before = wh.counters().query_cache_hits;
      ASSERT_TRUE(wh.ExecuteQuery(fixed).ok());
      EXPECT_EQ(wh.counters().query_cache_hits, hits_before + 1)
          << "event " << i;
      storage::TierIndex tier = static_cast<storage::TierIndex>(
          tier_failures_injected % 2);
      wh.SimulateTierFailure(tier);
      ++tier_failures_injected;
      uint64_t hits_at_failure = wh.counters().query_cache_hits;
      ASSERT_TRUE(wh.ExecuteQuery(fixed).ok());
      EXPECT_EQ(wh.counters().query_cache_hits, hits_at_failure)
          << "epoch cache served a pre-failure result at event " << i;
      wh.RecoverTier(tier);
    }
  }
  EXPECT_GT(tier_failures_injected, 0u);
  // The run ends structurally sound after a fault-free recovery pass.
  wh.AttachFaultInjector(nullptr);
  wh.Reconcile(w.horizon);
  Status inv = wh.CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(QueryFuzzTest, DeterministicAcrossRuns) {
  FuzzCatalog catalog;
  QueryExecutor executor(&catalog);
  std::string q =
      "SELECT MFU 3 p.oid FROM Physical_Page p WHERE p.size >= 200";
  auto a = executor.Execute(q);
  auto b = executor.Execute(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_EQ(a->rows[i][0].AsInt(), b->rows[i][0].AsInt());
  }
}

}  // namespace
}  // namespace cbfww::core::query
