#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/clock.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/zipf.h"

namespace cbfww {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing object");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing object");
  EXPECT_EQ(s.ToString(), "NotFound: missing object");
}

TEST(StatusTest, OkCodeIgnoresMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::InvalidArgument("bad");
  EXPECT_EQ(os.str(), "InvalidArgument: bad");
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string_view> names;
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kDataLoss}) {
    names.insert(StatusCodeName(c));
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(StatusTest, DataLossCode) {
  // kDataLoss is the durability layer's "unrecoverable" verdict: the
  // newest checkpoint itself is unreadable (WAL damage alone never raises
  // it — recovery truncates to the valid prefix instead).
  Status s = Status::DataLoss("checkpoint 3 unreadable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DataLoss: checkpoint 3 unreadable");
  EXPECT_NE(s, Status::Internal("checkpoint 3 unreadable"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  CBFWW_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Pcg32 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInBounds) {
  Pcg32 rng(7);
  for (uint32_t bound : {1u, 2u, 3u, 17u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Pcg32 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Pcg32 rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Pcg32 rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Pcg32 rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Pcg32 rng(19);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextExponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Pcg32 a(21);
  Pcg32 c1 = a.Fork(5);
  Pcg32 c2 = Pcg32(21).Fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.Next(), c2.Next());
  Pcg32 d = Pcg32(21).Fork(6);
  int same = 0;
  Pcg32 e = Pcg32(21).Fork(5);
  for (int i = 0; i < 100; ++i) {
    if (d.Next() == e.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, SplitMixDeterministic) {
  SplitMix64 a(99), b(99);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), SplitMix64(100).Next());
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 0.9);
  double total = 0.0;
  for (uint64_t i = 0; i < 100; ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(50, 1.0);
  for (uint64_t i = 1; i < 50; ++i) {
    EXPECT_LE(z.Pmf(i), z.Pmf(i - 1) + 1e-12);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTest, SamplingMatchesSkew) {
  ZipfSampler z(100, 1.0);
  Pcg32 rng(31);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  // Rank 0 should be sampled close to its pmf.
  double p0 = static_cast<double>(counts[0]) / n;
  EXPECT_NEAR(p0, z.Pmf(0), 0.01);
  // Top rank dominates deep tail.
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler z(1, 0.8);
  Pcg32 rng(33);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitSkipsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitString("", ',').empty());
  EXPECT_TRUE(SplitString(",,,", ',').empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(TrimAscii("  x y \t\n"), "x y");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("   "), "");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(StatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, Percentiles) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_NEAR(p.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(p.Percentile(99), 99.01, 0.1);
}

TEST(StatsTest, PercentileAfterInterleavedAdds) {
  PercentileTracker p;
  p.Add(10);
  EXPECT_EQ(p.Percentile(50), 10.0);
  p.Add(20);
  EXPECT_NEAR(p.Percentile(100), 20.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Clock, hash, table printer
// ---------------------------------------------------------------------------

TEST(ClockTest, AdvanceMonotone) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0);
  c.Advance(5 * kSecond);
  EXPECT_EQ(c.now(), 5 * kSecond);
  c.Advance(-10);  // Negative deltas ignored.
  EXPECT_EQ(c.now(), 5 * kSecond);
  c.AdvanceTo(2 * kSecond);  // Backwards jumps ignored.
  EXPECT_EQ(c.now(), 5 * kSecond);
  c.AdvanceTo(kMinute);
  EXPECT_EQ(c.now(), kMinute);
}

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long_name", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long_name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x | "), std::string::npos);
}

}  // namespace
}  // namespace cbfww
