// Tests for the declarative workload layer: spec grammar round-trip,
// generator determinism and mix/skew fidelity, and the harness's central
// promise — the in-process cluster backend and the wire server backend
// observe the identical op stream and land on identical serve-mix
// counters.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/web_corpus.h"
#include "workload/op_generator.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"

namespace cbfww::workload {
namespace {

WorkloadSpec FullyPopulatedSpec() {
  WorkloadSpec spec;
  spec.name = "roundtrip";
  spec.description = "every field set to a non-default value";
  spec.mix.page_visit = 0.81;
  spec.mix.query = 0.07;
  spec.mix.scan = 0.02;
  spec.mix.ingest = 0.10;
  spec.dist = DistKind::kHotTopic;
  spec.zipf_theta = 0.73;
  spec.hot_set_fraction = 0.11;
  spec.hot_topic_bias = 0.85;
  spec.num_hot_topics = 3;
  spec.ingest_target = IngestTarget::kHot;
  spec.corpus_sites = 7;
  spec.corpus_pages_per_site = 55;
  spec.corpus_topics = 9;
  spec.ops = 12345;
  spec.threads = 3;
  spec.users = 17;
  spec.loop = LoopMode::kOpen;
  spec.offered_load_rps = 987.5;
  spec.mean_gap_us = 4321;
  spec.trail_session_prob = 0.65;
  spec.max_session_length = 12;
  spec.seed = 99;
  return spec;
}

TEST(WorkloadSpecTest, TextRoundTripReproducesEveryField) {
  const WorkloadSpec spec = FullyPopulatedSpec();
  const std::string text = ToSpecText(spec);
  auto reparsed = ParseWorkloadSpec(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();

  const WorkloadSpec& r = *reparsed;
  EXPECT_EQ(r.name, spec.name);
  EXPECT_EQ(r.description, spec.description);
  EXPECT_DOUBLE_EQ(r.mix.page_visit, spec.mix.page_visit);
  EXPECT_DOUBLE_EQ(r.mix.query, spec.mix.query);
  EXPECT_DOUBLE_EQ(r.mix.scan, spec.mix.scan);
  EXPECT_DOUBLE_EQ(r.mix.ingest, spec.mix.ingest);
  EXPECT_EQ(r.dist, spec.dist);
  EXPECT_DOUBLE_EQ(r.zipf_theta, spec.zipf_theta);
  EXPECT_DOUBLE_EQ(r.hot_set_fraction, spec.hot_set_fraction);
  EXPECT_DOUBLE_EQ(r.hot_topic_bias, spec.hot_topic_bias);
  EXPECT_EQ(r.num_hot_topics, spec.num_hot_topics);
  EXPECT_EQ(r.ingest_target, spec.ingest_target);
  EXPECT_EQ(r.corpus_sites, spec.corpus_sites);
  EXPECT_EQ(r.corpus_pages_per_site, spec.corpus_pages_per_site);
  EXPECT_EQ(r.corpus_topics, spec.corpus_topics);
  EXPECT_EQ(r.ops, spec.ops);
  EXPECT_EQ(r.threads, spec.threads);
  EXPECT_EQ(r.users, spec.users);
  EXPECT_EQ(r.loop, spec.loop);
  EXPECT_DOUBLE_EQ(r.offered_load_rps, spec.offered_load_rps);
  EXPECT_EQ(r.mean_gap_us, spec.mean_gap_us);
  EXPECT_DOUBLE_EQ(r.trail_session_prob, spec.trail_session_prob);
  EXPECT_EQ(r.max_session_length, spec.max_session_length);
  EXPECT_EQ(r.seed, spec.seed);

  // Text rendering is itself a fixed point.
  EXPECT_EQ(ToSpecText(r), text);
}

TEST(WorkloadSpecTest, UnknownKeyIsAnError) {
  auto result = ParseWorkloadSpec("name = x\nmix.page_visits = 1.0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(std::string(result.status().message()).find("mix.page_visits"),
            std::string::npos);
}

TEST(WorkloadSpecTest, MixMustSumToOne) {
  auto result =
      ParseWorkloadSpec("name = x\nmix.page_visit = 0.5\nmix.query = 0.2\n");
  ASSERT_FALSE(result.ok());
}

TEST(WorkloadSpecTest, BadEnumValueIsAnError) {
  EXPECT_FALSE(ParseWorkloadSpec("dist.kind = gaussian\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec("run.loop = half_open\n").ok());
}

TEST(WorkloadSpecTest, OpenLoopWithoutRateParsesButCannotRun) {
  // A rate-less open-loop spec is parseable (ported benches derive the
  // offered rate from a measured closed-loop run), but the Runner refuses
  // to execute it.
  auto parsed = ParseWorkloadSpec(
      "run.loop = open\nrun.ops = 50\ncorpus.sites = 3\n"
      "corpus.pages_per_site = 20\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  Runner runner(*parsed, RunnerOptions{});
  ASSERT_TRUE(runner.Init().ok());
  EXPECT_FALSE(runner.Run().ok());
}

TEST(WorkloadSpecTest, CommentsAndBlankLinesIgnored) {
  auto result = ParseWorkloadSpec(
      "# a comment\n\nname = commented   # trailing comment\n\n");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->name, "commented");
}

TEST(WorkloadSpecTest, SmokeShrunkKeepsShape) {
  WorkloadSpec spec = FullyPopulatedSpec();
  WorkloadSpec small = SmokeShrunk(spec);
  EXPECT_EQ(small.dist, spec.dist);
  EXPECT_EQ(small.loop, spec.loop);
  EXPECT_DOUBLE_EQ(small.mix.ingest, spec.mix.ingest);
  EXPECT_LT(small.ops, spec.ops);
  EXPECT_LE(small.corpus_sites, spec.corpus_sites);
  EXPECT_TRUE(ValidateSpec(small).ok());
}

corpus::CorpusOptions CorpusFor(const WorkloadSpec& spec) {
  corpus::CorpusOptions copts;
  copts.num_sites = spec.corpus_sites;
  copts.pages_per_site = spec.corpus_pages_per_site;
  copts.topic.num_topics = spec.corpus_topics;
  copts.seed = spec.seed;
  return copts;
}

TEST(OpGeneratorTest, SameSeedSameStream) {
  WorkloadSpec spec;
  spec.mix.page_visit = 0.85;
  spec.mix.query = 0.05;
  spec.mix.scan = 0.02;
  spec.mix.ingest = 0.08;
  spec.corpus_sites = 6;
  spec.corpus_pages_per_site = 40;
  corpus::WebCorpus corpus(CorpusFor(spec));

  OpGenerator a(&corpus, spec);
  OpGenerator b(&corpus, spec);
  std::vector<Op> ops_a = a.Generate(5000);
  std::vector<Op> ops_b = b.Generate(5000);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    ASSERT_TRUE(ops_a[i] == ops_b[i]) << "streams diverge at op " << i;
  }

  // A different seed must actually change the stream.
  WorkloadSpec other = spec;
  other.seed = spec.seed + 1;
  corpus::WebCorpus other_corpus(CorpusFor(other));
  OpGenerator c(&other_corpus, other);
  std::vector<Op> ops_c = c.Generate(5000);
  bool any_diff = false;
  for (size_t i = 0; i < ops_c.size() && !any_diff; ++i) {
    any_diff = !(ops_a[i] == ops_c[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(OpGeneratorTest, TimestampsStrictlyIncrease) {
  WorkloadSpec spec;
  spec.mix.page_visit = 0.9;
  spec.mix.ingest = 0.1;
  spec.corpus_sites = 4;
  spec.corpus_pages_per_site = 30;
  corpus::WebCorpus corpus(CorpusFor(spec));
  OpGenerator gen(&corpus, spec);
  SimTime last = -1;
  for (const Op& op : gen.Generate(3000)) {
    EXPECT_GT(op.time, last);
    last = op.time;
  }
}

TEST(OpGeneratorTest, MixFractionsWithinToleranceOver100kOps) {
  WorkloadSpec spec;
  spec.mix.page_visit = 0.70;
  spec.mix.query = 0.12;
  spec.mix.scan = 0.05;
  spec.mix.ingest = 0.13;
  spec.corpus_sites = 6;
  spec.corpus_pages_per_site = 50;
  corpus::WebCorpus corpus(CorpusFor(spec));
  OpGenerator gen(&corpus, spec);

  uint64_t counts[kNumOpTypes] = {0, 0, 0, 0};
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    counts[static_cast<size_t>(gen.Next().type)]++;
  }
  const double want[kNumOpTypes] = {spec.mix.page_visit, spec.mix.query,
                                    spec.mix.scan, spec.mix.ingest};
  for (size_t i = 0; i < kNumOpTypes; ++i) {
    const double got = static_cast<double>(counts[i]) / n;
    // ~20 standard deviations at n=100k for the smallest class; a real mix
    // bug (swapped classes, wrong threshold) is orders of magnitude off.
    EXPECT_NEAR(got, want[i], 0.02) << OpTypeName(static_cast<OpType>(i));
  }
}

TEST(OpGeneratorTest, ZipfianSkewsTrafficUniformDoesNot) {
  WorkloadSpec spec;
  spec.corpus_sites = 8;
  spec.corpus_pages_per_site = 50;
  spec.zipf_theta = 0.99;
  corpus::WebCorpus corpus(CorpusFor(spec));

  auto top_share = [&](DistKind dist) {
    WorkloadSpec s = spec;
    s.dist = dist;
    OpGenerator gen(&corpus, s);
    std::map<corpus::PageId, uint64_t> hits;
    const uint64_t n = 40000;
    for (uint64_t i = 0; i < n; ++i) hits[gen.Next().page]++;
    std::vector<uint64_t> counts;
    counts.reserve(hits.size());
    for (const auto& [page, c] : hits) counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0;
    const size_t top_n = corpus.num_pages() / 20;  // Top 5% of pages.
    for (size_t i = 0; i < std::min(top_n, counts.size()); ++i) {
      top += counts[i];
    }
    return static_cast<double>(top) / n;
  };

  const double zipf_share = top_share(DistKind::kZipfian);
  const double uniform_share = top_share(DistKind::kUniform);
  // Under uniform, the top 5% of pages get ~5% of traffic; under
  // Zipf(0.99) they dominate.
  EXPECT_GT(zipf_share, 0.30);
  EXPECT_LT(uniform_share, 0.12);
  EXPECT_GT(zipf_share, uniform_share * 2.5);
}

TEST(OpGeneratorTest, TrailReplaySessionsAreContiguousWalks) {
  WorkloadSpec spec;
  spec.dist = DistKind::kTrailReplay;
  spec.mix.page_visit = 1.0;
  spec.corpus_sites = 6;
  spec.corpus_pages_per_site = 40;
  spec.trail_session_prob = 1.0;
  spec.max_session_length = 6;
  corpus::WebCorpus corpus(CorpusFor(spec));
  OpGenerator gen(&corpus, spec);

  std::vector<Op> ops = gen.Generate(2000);
  int64_t session = -2;
  uint32_t session_user = 0;
  int sessions_seen = 0;
  for (const Op& op : ops) {
    ASSERT_EQ(op.type, OpType::kPageVisit);
    if (op.session_start) {
      sessions_seen++;
      session = op.session;
      session_user = op.user;
      EXPECT_FALSE(op.via_link);
    } else {
      // Continuation ops stay in the announced session, keep its user, and
      // arrive via a link (a trail step or a link-graph walk).
      ASSERT_EQ(op.session, session);
      EXPECT_EQ(op.user, session_user);
      EXPECT_TRUE(op.via_link);
    }
  }
  EXPECT_GT(sessions_seen, 2000 / (6 + 1));
}

/// The harness's core guarantee: one spec, two backends, identical
/// warehouse-side counters. threads == 1 makes the wire backend pass
/// explicit timestamps, so both backends replay byte-identical event
/// streams (see Runner's class comment).
TEST(RunnerTest, ClusterAndServerBackendsAgreeOnServeMix) {
  WorkloadSpec spec;
  spec.name = "tiny_parity";
  spec.mix.page_visit = 0.86;
  spec.mix.query = 0.05;
  spec.mix.scan = 0.03;
  spec.mix.ingest = 0.06;
  spec.corpus_sites = 4;
  spec.corpus_pages_per_site = 40;
  spec.ops = 600;
  spec.threads = 1;  // Required for cross-backend counter parity.
  spec.users = 16;

  RunResult results[2];
  for (Backend backend : {Backend::kCluster, Backend::kServer}) {
    RunnerOptions options;
    options.backend = backend;
    options.shards = 2;
    Runner runner(spec, options);
    ASSERT_TRUE(runner.Init().ok());
    auto result = runner.Run();
    ASSERT_TRUE(result.ok()) << result.status().message();
    results[static_cast<int>(backend)] = *std::move(result);
  }

  const RunResult& c = results[0];
  const RunResult& s = results[1];
  EXPECT_EQ(c.total.errors, 0u);
  EXPECT_EQ(s.total.errors, 0u);
  EXPECT_EQ(c.total.ops, spec.ops);
  EXPECT_EQ(s.total.ops, spec.ops);
  EXPECT_EQ(c.requests_delta, s.requests_delta);
  EXPECT_EQ(c.origin_fetches_delta, s.origin_fetches_delta);
  EXPECT_EQ(c.shed_delta, s.shed_delta);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.served_from_delta[i], s.served_from_delta[i])
        << "served_from[" << i << "]";
  }
}

TEST(RunnerTest, RepeatRunsOnWarmClusterStayDeterministic) {
  WorkloadSpec spec;
  spec.name = "warm_repeat";
  spec.mix.page_visit = 0.95;
  spec.mix.ingest = 0.05;
  spec.corpus_sites = 4;
  spec.corpus_pages_per_site = 30;
  spec.ops = 500;
  spec.threads = 2;

  // Two cold runners must agree run-for-run; a warm second run differs
  // from the first (caches are warm) but matches the other runner's warm
  // second run.
  Runner a(spec, RunnerOptions{});
  Runner b(spec, RunnerOptions{});
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  for (int round = 0; round < 2; ++round) {
    auto ra = a.Run();
    auto rb = b.Run();
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->requests_delta, rb->requests_delta) << "round " << round;
    EXPECT_EQ(ra->origin_fetches_delta, rb->origin_fetches_delta)
        << "round " << round;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(ra->served_from_delta[i], rb->served_from_delta[i])
          << "round " << round << " served_from[" << i << "]";
    }
  }
}

TEST(RunnerTest, VariantSpecMustKeepCorpusSizing) {
  WorkloadSpec spec;
  spec.corpus_sites = 3;
  spec.corpus_pages_per_site = 20;
  spec.ops = 50;
  Runner runner(spec, RunnerOptions{});
  ASSERT_TRUE(runner.Init().ok());

  WorkloadSpec resized = spec;
  resized.corpus_sites = 4;
  auto result = runner.Run(resized);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace cbfww::workload
