#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/data_analyzer.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "storage/hierarchy.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace cbfww {
namespace {

// ---------------------------------------------------------------------------
// StorageHierarchy accounting invariants under random operation sequences
// ---------------------------------------------------------------------------

struct HierarchyParam {
  uint64_t mem_cap;
  uint64_t disk_cap;
  uint64_t seed;
};

class HierarchyFuzzTest : public ::testing::TestWithParam<HierarchyParam> {};

TEST_P(HierarchyFuzzTest, AccountingAlwaysConsistent) {
  const HierarchyParam& p = GetParam();
  storage::StorageHierarchy h({storage::DeviceModel::Memory(p.mem_cap),
                               storage::DeviceModel::Disk(p.disk_cap),
                               storage::DeviceModel::Tertiary(0)});
  Pcg32 rng(p.seed);
  // Shadow model: object -> (bytes, tier set).
  std::map<uint64_t, std::pair<uint64_t, uint32_t>> shadow;

  for (int step = 0; step < 3000; ++step) {
    uint64_t id = rng.NextBounded(60);
    int tier = static_cast<int>(rng.NextBounded(3));
    switch (rng.NextBounded(4)) {
      case 0: {  // Store.
        uint64_t bytes = shadow.contains(id) ? shadow[id].first
                                             : 1 + rng.NextBounded(500);
        if (h.Store(id, bytes, tier).ok()) {
          shadow[id].first = bytes;
          shadow[id].second |= (1u << tier);
        }
        break;
      }
      case 1: {  // Evict.
        bool had = shadow.contains(id) && (shadow[id].second & (1u << tier));
        Status s = h.Evict(id, tier);
        EXPECT_EQ(s.ok(), had);
        if (had) {
          shadow[id].second &= ~(1u << tier);
          if (shadow[id].second == 0) shadow.erase(id);
        }
        break;
      }
      case 2: {  // Migrate.
        bool resident = shadow.contains(id);
        bool exclusive = rng.NextBernoulli(0.5);
        Status s = h.Migrate(id, tier, exclusive);
        if (!resident) {
          EXPECT_FALSE(s.ok());
        } else if (s.ok() && exclusive) {
          shadow[id].second = (1u << tier);
        } else if (s.ok()) {
          shadow[id].second |= (1u << tier);
        }
        break;
      }
      case 3: {  // Read.
        EXPECT_EQ(h.Read(id).ok(), shadow.contains(id));
        break;
      }
    }
    // Invariants after every step: the hierarchy's own structural check
    // first, then the shadow-model cross-check.
    Status inv = h.CheckInvariants();
    ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv.ToString();
    for (int t = 0; t < 3; ++t) {
      uint64_t expected_bytes = 0;
      uint64_t expected_count = 0;
      for (const auto& [oid, st] : shadow) {
        if (st.second & (1u << t)) {
          expected_bytes += st.first;
          ++expected_count;
        }
      }
      ASSERT_EQ(h.used_bytes(t), expected_bytes) << "step " << step;
      ASSERT_EQ(h.resident_count(t), expected_count) << "step " << step;
      uint64_t cap = t == 0 ? p.mem_cap : (t == 1 ? p.disk_cap : 0);
      if (cap != 0) {
        ASSERT_LE(h.used_bytes(t), cap);
      }
    }
    for (const auto& [oid, st] : shadow) {
      for (int t = 0; t < 3; ++t) {
        ASSERT_EQ(h.IsResident(oid, t), (st.second & (1u << t)) != 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HierarchyFuzzTest,
    ::testing::Values(HierarchyParam{2000, 20000, 1},
                      HierarchyParam{500, 5000, 2},
                      HierarchyParam{0, 0, 3},          // All unbounded.
                      HierarchyParam{100, 100000, 4},   // Tiny memory.
                      HierarchyParam{100000, 300, 5})); // Tiny disk.

/// Deterministic noise policy: fails a fixed fraction of device accesses
/// and charges occasional latency spikes, from a seeded stream.
class NoisyFaultPolicy : public storage::DeviceFaultPolicy {
 public:
  explicit NoisyFaultPolicy(uint64_t seed) : rng_(seed) {}
  storage::DeviceFaultDecision OnDeviceAccess(storage::DeviceOp,
                                              storage::TierIndex) override {
    storage::DeviceFaultDecision d;
    d.fail = rng_.NextBernoulli(0.15);
    if (!d.fail && rng_.NextBernoulli(0.1)) d.extra_latency = kMillisecond;
    return d;
  }

 private:
  Pcg32 rng_;
};

/// Same random-operation fuzz, but with an injected-fault policy active:
/// operations may now fail spuriously, yet the hierarchy's accounting must
/// never drift and no operation may lose an object's last copy.
TEST_P(HierarchyFuzzTest, InvariantsHoldUnderInjectedFaults) {
  const HierarchyParam& p = GetParam();
  storage::StorageHierarchy h({storage::DeviceModel::Memory(p.mem_cap),
                               storage::DeviceModel::Disk(p.disk_cap),
                               storage::DeviceModel::Tertiary(0)});
  NoisyFaultPolicy policy(p.seed * 977 + 13);
  h.set_fault_policy(&policy);
  Pcg32 rng(p.seed);
  // Shadow tracks residency only; byte sizes per object are fixed so
  // accounting stays checkable even when individual ops fail.
  std::map<uint64_t, std::pair<uint64_t, uint32_t>> shadow;

  for (int step = 0; step < 3000; ++step) {
    uint64_t id = rng.NextBounded(60);
    int tier = static_cast<int>(rng.NextBounded(3));
    switch (rng.NextBounded(4)) {
      case 0: {  // Store: may fail (capacity OR injected fault).
        uint64_t bytes = shadow.contains(id) ? shadow[id].first
                                             : 1 + rng.NextBounded(500);
        if (h.Store(id, bytes, tier).ok()) {
          shadow[id].first = bytes;
          shadow[id].second |= (1u << tier);
        }
        break;
      }
      case 1: {  // Evict: not faultable; must agree with the shadow.
        bool had = shadow.contains(id) && (shadow[id].second & (1u << tier));
        Status s = h.Evict(id, tier);
        ASSERT_EQ(s.ok(), had) << "step " << step;
        if (had) {
          shadow[id].second &= ~(1u << tier);
          if (shadow[id].second == 0) shadow.erase(id);
        }
        break;
      }
      case 2: {  // Migrate: on success residency changes; on failure the
                 // object must keep every pre-existing copy (atomicity).
        bool resident = shadow.contains(id);
        bool exclusive = rng.NextBernoulli(0.5);
        Status s = h.Migrate(id, tier, exclusive);
        if (!resident) {
          ASSERT_FALSE(s.ok()) << "step " << step;
        } else if (s.ok() && exclusive) {
          shadow[id].second = (1u << tier);
        } else if (s.ok()) {
          shadow[id].second |= (1u << tier);
        }
        break;
      }
      case 3: {  // Read: may fail under faults, but never invents objects.
        auto r = h.Read(id);
        if (r.ok()) {
          ASSERT_TRUE(shadow.contains(id)) << "step " << step;
        }
        break;
      }
    }
    Status inv = h.CheckInvariants();
    ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv.ToString();
    // Residency agrees with the shadow exactly: a failed operation must
    // leave the hierarchy untouched (no partial moves, no lost copies).
    for (const auto& [oid, st] : shadow) {
      for (int t = 0; t < 3; ++t) {
        ASSERT_EQ(h.IsResident(oid, t), (st.second & (1u << t)) != 0)
            << "step " << step << " object " << oid << " tier " << t;
      }
    }
    for (int t = 0; t < 3; ++t) {
      uint64_t expected_bytes = 0;
      for (const auto& [oid, st] : shadow) {
        if (st.second & (1u << t)) expected_bytes += st.first;
      }
      ASSERT_EQ(h.used_bytes(t), expected_bytes) << "step " << step;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload validity across seeds
// ---------------------------------------------------------------------------

class WorkloadSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkloadSeedTest, GeneratedTraceIsWellFormed) {
  corpus::CorpusOptions copts;
  copts.num_sites = 3;
  copts.pages_per_site = 40;
  copts.seed = GetParam() * 7 + 1;
  corpus::WebCorpus corpus(copts);

  trace::WorkloadOptions wopts;
  wopts.horizon = 6 * kHour;
  wopts.sessions_per_hour = 50;
  wopts.seed = GetParam();
  trace::WorkloadGenerator gen(&corpus, nullptr, wopts);
  auto events = gen.Generate();
  ASSERT_FALSE(events.empty());

  SimTime prev = 0;
  std::map<int64_t, SimTime> session_last;
  for (const auto& e : events) {
    ASSERT_GE(e.time, prev);
    prev = e.time;
    ASSERT_LT(e.time, wopts.horizon + kHour);
    if (e.type == trace::TraceEventType::kRequest) {
      ASSERT_LT(e.page, corpus.num_pages());
      ASSERT_LT(e.user, wopts.num_users);
      ASSERT_GE(e.session, 0);
      // Session times are monotone within the session.
      auto it = session_last.find(e.session);
      if (it != session_last.end()) {
        ASSERT_GE(e.time, it->second);
      }
      session_last[e.session] = e.time;
    } else {
      ASSERT_LT(e.modified, corpus.num_raw_objects());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Warehouse end-to-end invariants across seeds
// ---------------------------------------------------------------------------

class WarehouseSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarehouseSeedTest, InvariantsHoldOverFullRun) {
  corpus::CorpusOptions copts;
  copts.num_sites = 3;
  copts.pages_per_site = 50;
  copts.seed = GetParam();
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions opts;
  opts.memory_bytes = 2ull * 1024 * 1024;  // Tight: forces displacement.
  opts.disk_bytes = 64ull * 1024 * 1024;
  core::Warehouse wh(&corpus, &origin, nullptr, opts);

  trace::WorkloadOptions wopts;
  wopts.horizon = 6 * kHour;
  wopts.sessions_per_hour = 40;
  wopts.seed = GetParam() + 100;
  trace::WorkloadGenerator gen(&corpus, nullptr, wopts);

  std::map<corpus::PageId, uint64_t> request_counts;
  for (const auto& e : gen.Generate()) {
    wh.ProcessEvent(e);
    if (e.type == trace::TraceEventType::kRequest) ++request_counts[e.page];
    // Capacity invariants hold continuously.
    ASSERT_LE(wh.hierarchy().used_bytes(0), opts.memory_bytes);
    ASSERT_LE(wh.hierarchy().used_bytes(1), opts.disk_bytes);
  }

  // Every requested page: history matches the trace, objects retrievable.
  for (const auto& [page, count] : request_counts) {
    const core::PhysicalPageRecord* rec = wh.FindPage(page);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->history.frequency(), count);
    auto sid = core::EncodeStoreId(index::ObjectLevel::kRaw, rec->container);
    EXPECT_NE(wh.hierarchy().FastestTierOf(sid), storage::kNoTier)
        << "container of page " << page << " lost";
  }
  // Analyzer agrees with the trace.
  uint64_t total = 0;
  for (const auto& [page, count] : request_counts) total += count;
  EXPECT_EQ(wh.analyzer().total_requests(), total);
  EXPECT_EQ(wh.analyzer().distinct_pages(), request_counts.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarehouseSeedTest, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// DataAnalyzer
// ---------------------------------------------------------------------------

TEST(DataAnalyzerTest, AggregatesRequests) {
  core::DataAnalyzer analyzer;
  analyzer.RecordRequest(1, 10, kSecond, core::DataAnalyzer::ServedBy::kMemory,
                         100);
  analyzer.RecordRequest(1, 10, 2 * kSecond,
                         core::DataAnalyzer::ServedBy::kOrigin, 500);
  analyzer.RecordRequest(2, 11, kHour + kSecond,
                         core::DataAnalyzer::ServedBy::kDisk, 300);
  EXPECT_EQ(analyzer.total_requests(), 3u);
  EXPECT_EQ(analyzer.distinct_pages(), 2u);
  EXPECT_EQ(analyzer.distinct_users(), 2u);
  EXPECT_EQ(analyzer.served_from(core::DataAnalyzer::ServedBy::kMemory), 1u);
  EXPECT_EQ(analyzer.served_from(core::DataAnalyzer::ServedBy::kOrigin), 1u);
  EXPECT_DOUBLE_EQ(analyzer.latency_stats().mean(), 300.0);
  auto top = analyzer.TopPages(5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].page, 1u);
  EXPECT_EQ(top[0].count, 2u);
  // Hourly buckets: two in hour 0, one in hour 1.
  ASSERT_GE(analyzer.hourly_requests().size(), 2u);
  EXPECT_EQ(analyzer.hourly_requests()[0], 2u);
  EXPECT_EQ(analyzer.hourly_requests()[1], 1u);
}

}  // namespace
}  // namespace cbfww
