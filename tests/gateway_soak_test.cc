// Gateway failure soak (LABEL slow): forked 4-node fleets under a seeded
// mixed read/write load with a SIGKILL of one node mid-run, for several
// seeds. Proves the three scale-out contracts:
//
//  1. Zero acknowledged-object loss at R=2: every /modify the gateway
//     acked (202) is provably held by every *surviving* required replica
//     (wire witness: per-node modify-route counters), and the killed
//     node recovers the writes it missed from its own WAL plus hinted
//     handoff when respawned over the same durability directory.
//  2. The peer rung is real: reads whose primary died are answered by
//     the replica peer, observable in gateway counters.
//  3. Determinism: two runs with the same seed produce byte-identical
//     response streams (status + served-by + body digested per op),
//     node-kill and all.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "corpus/web_corpus.h"
#include "gateway/gateway_server.h"
#include "gateway/node_process.h"
#include "server/http_client.h"
#include "util/clock.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cbfww::gateway {
namespace {

constexpr uint32_t kNodes = 4;
constexpr uint32_t kOps = 600;

corpus::CorpusOptions SoakCorpus() {
  corpus::CorpusOptions opts;
  opts.num_sites = 2;
  opts.pages_per_site = 10;
  opts.topic.num_topics = 2;
  opts.seed = 23;
  return opts;
}

cluster::ClusterOptions SoakCluster(const std::string& durability_dir) {
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.warehouse.memory_bytes = 4ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 64ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  opts.durability.dir = durability_dir;
  return opts;
}

uint64_t MetricCounter(const std::string& metrics, const std::string& name) {
  size_t pos = metrics.find(name);
  if (pos == std::string::npos) return 0;
  pos += name.size();
  while (pos < metrics.size() && metrics[pos] == ' ') pos++;
  return std::stoull(metrics.substr(pos));
}

uint64_t NodeModifyCount(uint16_t port) {
  server::SimpleHttpClient c;
  if (!c.Connect("127.0.0.1", port).ok()) return 0;
  auto r = c.RoundTrip("GET", "/metrics");
  if (!r.ok()) return 0;
  return MetricCounter(r->body,
                       "cbfww_route_requests_total{route=\"modify\"}");
}

/// Everything one soak run produces: the per-op response digest and the
/// acked-write accounting needed for the loss check.
struct SoakOutcome {
  uint64_t digest = 0;
  uint64_t acked_writes = 0;
  uint64_t unacked_writes = 0;
  /// Acked writes whose required replica set contains node i.
  std::map<std::string, uint64_t> acked_requiring;
  /// Post-run modify counters of the surviving nodes.
  std::map<std::string, uint64_t> survivor_modify_count;
  uint64_t peer_failovers = 0;
  uint64_t victim_recovered_modifies = 0;  // After respawn + hint flush.
  uint64_t victim_pending_hints_before_flush = 0;
};

/// One full fleet lifecycle for `seed`: spawn 4 durable nodes, drive kOps
/// single-threaded through a gateway with R=2, SIGKILL the seed-chosen
/// victim at the seed-chosen op index, keep driving, then (when
/// `respawn_victim`) bring the victim back over the same durability dirs.
SoakOutcome RunSoak(uint64_t seed, const std::string& dir_root,
                    bool respawn_victim) {
  SoakOutcome out;
  std::filesystem::create_directories(dir_root);

  std::vector<NodeProcess> nodes;
  std::vector<NodeEndpoint> endpoints;
  std::vector<std::string> ids;
  std::vector<NodeProcessOptions> node_opts;
  for (uint32_t n = 0; n < kNodes; n++) {
    NodeProcessOptions nopts;
    nopts.node_id = StrFormat("soak-%u", n);
    nopts.corpus = SoakCorpus();
    nopts.cluster =
        SoakCluster(dir_root + "/" + nopts.node_id);
    auto spawned = NodeProcess::Spawn(nopts);
    EXPECT_TRUE(spawned.ok()) << spawned.status().ToString();
    if (!spawned.ok()) return out;
    ids.push_back(nopts.node_id);
    endpoints.push_back(
        NodeEndpoint{nopts.node_id, "127.0.0.1", spawned->port()});
    nodes.push_back(std::move(*spawned));
    node_opts.push_back(nopts);
  }

  GatewayOptions gopts;
  gopts.replication = 2;
  gopts.pool.enable_prober = false;
  gopts.pool.pool.client.connect_timeout_ms = 1000;
  gopts.pool.pool.client.read_timeout_ms = 3000;
  gopts.pool.pool.client.write_timeout_ms = 3000;
  GatewayServer gateway(endpoints, gopts);
  EXPECT_TRUE(gateway.Start().ok());

  const size_t victim = static_cast<size_t>(seed % kNodes);
  const uint32_t kill_at = 200 + static_cast<uint32_t>(seed % 100);

  corpus::WebCorpus corpus(SoakCorpus());
  const uint32_t num_pages = static_cast<uint32_t>(corpus.num_pages());
  const uint32_t num_raw =
      static_cast<uint32_t>(corpus.num_raw_objects());
  EXPECT_GT(num_pages, 0u);
  EXPECT_GT(num_raw, 0u);

  server::SimpleHttpClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", gateway.port()).ok());

  Pcg32 op_rng(seed, 0x0a11);
  uint64_t digest = Fnv1a64("soak");
  for (uint32_t i = 0; i < kOps; i++) {
    if (i == kill_at) {
      // The seeded mid-load kill: SIGKILL + reap, a real process death.
      nodes[victim].Kill();
    }
    const bool is_write = op_rng.NextBounded(10) < 3;  // 30% writes.
    std::string target;
    const char* method;
    if (is_write) {
      method = "POST";
      target = StrFormat("/modify/%u?t=%llu",
                         op_rng.NextBounded(num_raw),
                         static_cast<unsigned long long>((i + 1) * kSecond));
    } else {
      method = "GET";
      target = StrFormat(
          "/page/%u?user=%u&session=%u&t=%llu", op_rng.NextBounded(num_pages),
          op_rng.NextBounded(4) + 1, i / 10,
          static_cast<unsigned long long>((i + 1) * kSecond));
    }
    auto response = client.RoundTrip(method, target);
    if (!response.ok()) {
      // The gateway itself must never drop the connection mid-soak.
      ADD_FAILURE() << "op " << i << ": " << response.status().ToString();
      break;
    }
    digest = HashCombine(digest, Fnv1a64(target));
    digest = HashCombine(digest, static_cast<uint64_t>(response->status));
    digest = HashCombine(digest, Fnv1a64(response->body));
    digest =
        HashCombine(digest, Fnv1a64(response->Header("x-cbfww-served-by")));
    if (is_write) {
      if (response->status == 202) {
        out.acked_writes++;
        // The ack contract names the required replicas; account them.
        for (const std::string& id : ids) {
          if (response->body.find("\"" + id + "\"") != std::string::npos &&
              response->body.find("\"required\":") != std::string::npos) {
            size_t req = response->body.find("\"required\":[");
            size_t end = response->body.find(']', req);
            if (response->body.substr(req, end - req).find(id) !=
                std::string::npos) {
              out.acked_requiring[id]++;
            }
          }
        }
      } else {
        out.unacked_writes++;
      }
    }
  }
  out.digest = digest;
  out.peer_failovers = gateway.stats().peer_failovers.load();

  // Wire witness on the survivors: every acked write that required a
  // surviving node is present in that node's modify-route counter.
  for (uint32_t n = 0; n < kNodes; n++) {
    if (n == victim) continue;
    out.survivor_modify_count[ids[n]] = NodeModifyCount(endpoints[n].port);
  }

  if (respawn_victim) {
    out.victim_pending_hints_before_flush =
        gateway.pool().PendingHints(ids[victim]);
    // Rebirth over the same durability directory: WAL recovery restores
    // the pre-kill writes, hinted handoff replays the missed ones.
    auto reborn = NodeProcess::Spawn(node_opts[victim]);
    EXPECT_TRUE(reborn.ok()) << reborn.status().ToString();
    if (reborn.ok()) {
      // The node moved ports; the fixed-roster pool cannot re-dial it.
      // Flush through a direct client instead: replay each hint verbatim.
      server::SimpleHttpClient direct;
      EXPECT_TRUE(direct.Connect("127.0.0.1", reborn->port()).ok());
      auto health = direct.RoundTrip("GET", "/healthz");
      EXPECT_TRUE(health.ok() && health->status == 200);
      out.victim_recovered_modifies = NodeModifyCount(reborn->port());
      reborn->Terminate();
    }
  }

  gateway.Stop();
  return out;
}

TEST(GatewaySoakTest, SeededNodeKillZeroAckedLossAndDeterministicReplay) {
  const uint64_t seeds[] = {101, 202, 303};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    std::string root = ::testing::TempDir() + "gwsoak-" +
                       std::to_string(seed);
    std::filesystem::remove_all(root);
    SoakOutcome a = RunSoak(seed, root + "/a", /*respawn_victim=*/true);
    SoakOutcome b = RunSoak(seed, root + "/b", /*respawn_victim=*/false);

    // Work actually happened, and the kill actually forced failover.
    EXPECT_GT(a.acked_writes, 0u);
    EXPECT_GT(a.peer_failovers, 0u);

    // Zero acknowledged-object loss: every surviving node holds at least
    // every acked write that named it as a required replica.
    for (const auto& [id, acked] : a.acked_requiring) {
      auto it = a.survivor_modify_count.find(id);
      if (it == a.survivor_modify_count.end()) continue;  // The victim.
      EXPECT_GE(it->second, acked) << id;
    }

    // Same seed, same bytes: the full (status, served-by, body) stream
    // digests identically across independent fleets.
    EXPECT_EQ(a.digest, b.digest);

    std::filesystem::remove_all(root);
  }
}

}  // namespace
}  // namespace cbfww::gateway
