// Crash-durability harness (WAL + checkpoints + seeded crash points):
// replays workloads through a journaled warehouse, kills it at scheduled
// crash points with filesystem-realistic damage (torn tails, flipped
// bytes, zeroed sectors), recovers, and asserts the durability contract:
//  - recovery is deterministic (recovering twice yields identical state),
//  - the recovered warehouse is byte-identical (durable report) to a
//    never-crashed oracle over the same event prefix,
//  - no acknowledged object is lost (log-before-ack),
//  - the data epoch after recovery is strictly above anything the
//    pre-crash run published, so stale cached results can never validate,
//  - a cluster recovers shard-by-shard from per-shard logs.
// The full 3-seed x 10-crash-point matrix lives in durability_soak_test
// (label: slow); this file keeps a fast slice of every property.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "durability/checkpoint.h"
#include "durability/crc32c.h"
#include "durability/record_io.h"
#include "durability/wal.h"
#include "fault/crash_point.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/clock.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Durability primitives: CRC, records, WAL, checkpoint
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectorAndMaskRoundtrip) {
  // The standard CRC-32C check value.
  EXPECT_EQ(durability::Crc32c("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(durability::Crc32c("", 0), 0u);
  // Incremental == one-shot.
  uint32_t inc = durability::Crc32c("12345", 5);
  inc = durability::Crc32c("6789", 4, inc);
  EXPECT_EQ(inc, 0xE3069283u);
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(durability::UnmaskCrc(durability::MaskCrc(crc)), crc);
  }
}

TEST(RecordIoTest, RoundtripAllTypes) {
  durability::RecordWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF64(3.14159265358979);
  w.PutF64(-0.0);

  durability::RecordReader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  ASSERT_TRUE(r.GetU8(&u8));
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(r.GetU32(&u32));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.GetU64(&u64));
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(r.GetI64(&i64));
  EXPECT_EQ(i64, -42);
  ASSERT_TRUE(r.GetF64(&f64));
  EXPECT_DOUBLE_EQ(f64, 3.14159265358979);
  ASSERT_TRUE(r.GetF64(&f64));
  EXPECT_EQ(f64, 0.0);
  EXPECT_TRUE(std::signbit(f64));
  EXPECT_TRUE(r.AtEnd());
  // Underrun is reported, not UB.
  EXPECT_FALSE(r.GetU64(&u64));
}

TEST(WalTest, AppendScanRoundtrip) {
  std::string path = testing::TempDir() + "/wal_roundtrip.wal";
  fs::remove(path);
  durability::WalWriter w;
  ASSERT_TRUE(w.Create(path).ok());
  ASSERT_TRUE(w.AppendFrame("alpha").ok());
  ASSERT_TRUE(w.AppendFrame("").ok());  // Header-only frames are legal.
  ASSERT_TRUE(w.AppendFrame("gamma-gamma").ok());
  w.Close();

  durability::WalScan scan;
  ASSERT_TRUE(durability::ScanWal(path, &scan).ok());
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[0], "alpha");
  EXPECT_EQ(scan.frames[1], "");
  EXPECT_EQ(scan.frames[2], "gamma-gamma");
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));
}

TEST(WalTest, TornTailIsTruncatedAndAppendResumes) {
  std::string path = testing::TempDir() + "/wal_torn.wal";
  fs::remove(path);
  durability::WalWriter w;
  ASSERT_TRUE(w.Create(path).ok());
  ASSERT_TRUE(w.AppendFrame("first").ok());
  ASSERT_TRUE(w.AppendFrame("second-record").ok());
  w.Close();

  // Tear the last frame: chop 3 bytes off the file.
  fs::resize_file(path, fs::file_size(path) - 3);
  durability::WalScan scan;
  ASSERT_TRUE(durability::ScanWal(path, &scan).ok());
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0], "first");

  // Reopen at the valid prefix and keep appending: the torn bytes vanish.
  ASSERT_TRUE(w.OpenTruncated(path, scan.valid_bytes).ok());
  ASSERT_TRUE(w.AppendFrame("third").ok());
  w.Close();
  durability::WalScan rescan;
  ASSERT_TRUE(durability::ScanWal(path, &rescan).ok());
  EXPECT_TRUE(rescan.clean);
  ASSERT_EQ(rescan.frames.size(), 2u);
  EXPECT_EQ(rescan.frames[1], "third");
}

TEST(WalTest, CorruptPayloadStopsScanAtLastGoodFrame) {
  std::string path = testing::TempDir() + "/wal_corrupt.wal";
  fs::remove(path);
  durability::WalWriter w;
  ASSERT_TRUE(w.Create(path).ok());
  ASSERT_TRUE(w.AppendFrame("good-frame").ok());
  uint64_t good_bytes = w.size_bytes();
  ASSERT_TRUE(w.AppendFrame("bad-frame!").ok());
  w.Close();

  fault::CrashPoint flip;
  flip.effect = fault::CrashEffect::kCorruptByte;
  flip.offset_fraction =
      (static_cast<double>(good_bytes) + 10.0) / fs::file_size(path);
  ASSERT_TRUE(fault::ApplyCrash(path, flip).ok());

  durability::WalScan scan;
  ASSERT_TRUE(durability::ScanWal(path, &scan).ok());
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0], "good-frame");
  EXPECT_EQ(scan.valid_bytes, good_bytes);
}

TEST(WalTest, MissingFileIsNotFound) {
  durability::WalScan scan;
  Status s = durability::ScanWal(testing::TempDir() + "/nope.wal", &scan);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, AtomicWriteReadRoundtrip) {
  std::string path = testing::TempDir() + "/ckpt_roundtrip.ckpt";
  fs::remove(path);
  std::string payload(10000, '\x5C');
  ASSERT_TRUE(durability::WriteCheckpointAtomic(path, payload).ok());
  auto read = durability::ReadCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->version, durability::kCheckpointVersion);
  EXPECT_EQ(read->payload, payload);
}

TEST(CheckpointTest, CorruptCheckpointIsDataLossMissingIsNotFound) {
  std::string path = testing::TempDir() + "/ckpt_corrupt.ckpt";
  fs::remove(path);
  EXPECT_EQ(durability::ReadCheckpoint(path).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(durability::WriteCheckpointAtomic(path, "payload-bytes").ok());
  fault::CrashPoint flip;
  flip.effect = fault::CrashEffect::kCorruptByte;
  flip.offset_fraction = 0.9;
  ASSERT_TRUE(fault::ApplyCrash(path, flip).ok());
  // A checkpoint is all-or-nothing: any damage is data loss, never a
  // silent partial load.
  EXPECT_EQ(durability::ReadCheckpoint(path).status().code(),
            StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Crash scheduling
// ---------------------------------------------------------------------------

TEST(CrashScheduleTest, GenerateIsDeterministicAndSorted) {
  fault::CrashScheduleOptions opts;
  opts.total_events = 500;
  opts.num_crashes = 12;
  fault::CrashSchedule a = fault::CrashSchedule::Generate(42, opts);
  fault::CrashSchedule b = fault::CrashSchedule::Generate(42, opts);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), fault::CrashSchedule::Generate(43, opts).ToString());
  ASSERT_EQ(a.points.size(), 12u);
  for (size_t i = 1; i < a.points.size(); ++i) {
    EXPECT_LE(a.points[i - 1].event_index, a.points[i].event_index);
  }
  for (const fault::CrashPoint& p : a.points) {
    EXPECT_GE(p.event_index, 1u);
    EXPECT_LE(p.event_index, 500u);
    EXPECT_GE(p.offset_fraction, 0.0);
    EXPECT_LT(p.offset_fraction, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Warehouse-level recovery rig
// ---------------------------------------------------------------------------

struct DurabilityKnobs {
  uint64_t corpus_seed = 77;
  uint64_t workload_seed = 5;
  /// 0: explicit checkpoints only.
  uint64_t checkpoint_every_events = 0;
};

corpus::CorpusOptions RigCorpusOptions(const DurabilityKnobs& k) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 40;
  copts.seed = k.corpus_seed;
  return copts;
}

core::WarehouseOptions RigWarehouseOptions(const DurabilityKnobs& k,
                                           const std::string& dir) {
  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  wopts.durability.dir = dir;  // Empty: durability off.
  wopts.durability.checkpoint_every_events = k.checkpoint_every_events;
  return wopts;
}

struct Rig {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<core::Warehouse> wh;
  core::RecoveryReport recovery;
};

/// Builds a warehouse over a fresh same-seed corpus. With `dir` set the
/// journal is opened (recover-or-init) before any traffic.
Rig MakeRig(const DurabilityKnobs& k, const std::string& dir) {
  Rig rig;
  rig.corpus = std::make_unique<corpus::WebCorpus>(RigCorpusOptions(k));
  rig.origin = std::make_unique<net::OriginServer>(rig.corpus.get(),
                                                   net::NetworkModel());
  rig.wh = std::make_unique<core::Warehouse>(
      rig.corpus.get(), rig.origin.get(), nullptr,
      RigWarehouseOptions(k, dir));
  if (!dir.empty()) {
    auto report = rig.wh->OpenDurability();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) rig.recovery = *report;
  }
  return rig;
}

std::vector<trace::TraceEvent> RigTrace(const DurabilityKnobs& k) {
  corpus::WebCorpus corpus(RigCorpusOptions(k));
  trace::WorkloadOptions w;
  w.horizon = 2 * kHour;
  w.sessions_per_hour = 40;
  w.modifications_per_hour = 12;
  w.seed = k.workload_seed;
  trace::WorkloadGenerator gen(&corpus, nullptr, w);
  return gen.Generate();
}

std::string DurableReport(core::Warehouse& wh) {
  std::ostringstream os;
  wh.PrintDurableReport(os);
  return os.str();
}

/// The single live WAL file under `dir` (exactly one after a run).
std::string FindWal(const std::string& dir) {
  std::string found;
  int count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".wal.") != std::string::npos) {
      found = entry.path().string();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one WAL in " << dir;
  return found;
}

/// Fresh subdirectory under the test temp dir.
std::string FreshDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/dur_" + tag;
  fs::remove_all(dir);
  return dir;
}

TEST(DurabilityTest, FreshBootWritesBaselinePair) {
  DurabilityKnobs k;
  std::string dir = FreshDir("fresh_boot");
  Rig rig = MakeRig(k, dir);
  EXPECT_FALSE(rig.recovery.recovered);
  EXPECT_EQ(rig.recovery.checkpoint_seq, 1u);
  EXPECT_TRUE(fs::exists(dir + "/warehouse.ckpt.1"));
  EXPECT_TRUE(fs::exists(dir + "/warehouse.wal.1"));
  EXPECT_NE(rig.wh->journal(), nullptr);
}

TEST(DurabilityTest, OpeningTwiceOrLateIsRejected) {
  DurabilityKnobs k;
  Rig rig = MakeRig(k, FreshDir("double_open"));
  EXPECT_FALSE(rig.wh->OpenDurability().ok());  // Already open.
  Rig off = MakeRig(k, "");
  EXPECT_FALSE(off.wh->OpenDurability().ok());  // Durability not configured.
  EXPECT_EQ(off.wh->journal(), nullptr);
}

TEST(DurabilityTest, CleanRestartMatchesOracleAndContinues) {
  DurabilityKnobs k;
  std::vector<trace::TraceEvent> events = RigTrace(k);
  ASSERT_GT(events.size(), 100u);
  size_t cut = events.size() / 2;

  std::string dir = FreshDir("clean_restart");
  {
    Rig victim = MakeRig(k, dir);
    for (size_t i = 0; i < cut; ++i) victim.wh->ProcessEvent(events[i]);
    EXPECT_EQ(victim.wh->events_processed(), cut);
  }  // Clean shutdown: every committed frame is already on disk.

  Rig recovered = MakeRig(k, dir);
  EXPECT_TRUE(recovered.recovery.recovered);
  EXPECT_TRUE(recovered.recovery.wal_clean);
  EXPECT_EQ(recovered.recovery.events_processed, cut);
  EXPECT_EQ(recovered.wh->events_processed(), cut);

  Rig oracle = MakeRig(k, "");
  for (size_t i = 0; i < cut; ++i) oracle.wh->ProcessEvent(events[i]);
  EXPECT_EQ(DurableReport(*recovered.wh), DurableReport(*oracle.wh));
  // Stale pre-restart cached results can never validate again.
  EXPECT_GT(recovered.wh->data_epoch(), oracle.wh->data_epoch());

  // The recovered warehouse is a full citizen: it finishes the workload,
  // journaling as it goes. (Its priority *evolution* may drift from the
  // oracle's — advisory state like semantic regions restarts cold, per
  // the documented ephemeral-state contract — but its durable core stays
  // in lockstep.)
  for (size_t i = cut; i < events.size(); ++i) {
    recovered.wh->ProcessEvent(events[i]);
    oracle.wh->ProcessEvent(events[i]);
  }
  EXPECT_EQ(recovered.wh->events_processed(), oracle.wh->events_processed());
  Status inv = recovered.wh->CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  std::string continued = DurableReport(*recovered.wh);
  recovered = Rig{};  // Second "power cut", again on a clean frame edge.

  // Recover-continue-recover is deterministic end to end: the journal
  // written *during* post-recovery operation (genesis continuation
  // included) recovers to the exact continued state.
  Rig rerecovered = MakeRig(k, dir);
  EXPECT_TRUE(rerecovered.recovery.recovered);
  EXPECT_EQ(rerecovered.wh->events_processed(), events.size());
  EXPECT_EQ(DurableReport(*rerecovered.wh), continued);
}

TEST(DurabilityTest, CheckpointRotationPreservesEqualityAndPrunes) {
  DurabilityKnobs k;
  k.checkpoint_every_events = 25;  // Several rotations over the run.
  std::vector<trace::TraceEvent> events = RigTrace(k);
  size_t cut = std::min<size_t>(events.size(), 130);

  std::string dir = FreshDir("rotation");
  {
    Rig victim = MakeRig(k, dir);
    for (size_t i = 0; i < cut; ++i) victim.wh->ProcessEvent(events[i]);
  }
  // Rotation prunes: exactly one checkpoint/WAL pair remains.
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2);

  Rig recovered = MakeRig(k, dir);
  EXPECT_TRUE(recovered.recovery.recovered);
  EXPECT_GT(recovered.recovery.checkpoint_seq, 1u);
  EXPECT_EQ(recovered.wh->events_processed(), cut);
  // Replay from the rotated checkpoint lands on the same bytes as a
  // replay from genesis would.
  DurabilityKnobs oracle_k = k;
  oracle_k.checkpoint_every_events = 0;
  Rig oracle = MakeRig(oracle_k, "");
  for (size_t i = 0; i < cut; ++i) oracle.wh->ProcessEvent(events[i]);
  EXPECT_EQ(DurableReport(*recovered.wh), DurableReport(*oracle.wh));
}

// One matrix cell: run to the crash point, damage the WAL, recover twice
// (determinism), compare against the oracle prefix, then finish the
// workload. Returns the recovered event count.
uint64_t RunCrashCell(const DurabilityKnobs& k,
                      const std::vector<trace::TraceEvent>& events,
                      const fault::CrashPoint& point, const std::string& tag) {
  std::string dir = FreshDir(tag);
  uint64_t crash_at = std::min<uint64_t>(point.event_index, events.size());
  {
    Rig victim = MakeRig(k, dir);
    for (uint64_t i = 0; i < crash_at; ++i) {
      victim.wh->ProcessEvent(events[i]);
    }
  }  // "Power dies" here; the journal flushed every committed frame.
  Status surgery = fault::ApplyCrash(FindWal(dir), point);
  EXPECT_TRUE(surgery.ok()) << surgery.ToString();

  Rig recovered = MakeRig(k, dir);
  EXPECT_TRUE(recovered.recovery.recovered) << tag;
  uint64_t replayed = recovered.recovery.events_processed;
  EXPECT_LE(replayed, crash_at) << tag;
  std::string recovered_report = DurableReport(*recovered.wh);

  // Determinism: recovering the damaged directory again (the first
  // recovery already truncated the torn tail) yields identical state.
  {
    Rig again = MakeRig(k, dir);
    EXPECT_EQ(again.recovery.events_processed, replayed) << tag;
    EXPECT_TRUE(again.recovery.wal_clean) << tag;  // Tail already cut.
    EXPECT_EQ(DurableReport(*again.wh), recovered_report) << tag;
  }

  // Byte-identity with a never-crashed oracle over the surviving prefix.
  Rig oracle = MakeRig(k, "");
  for (uint64_t i = 0; i < replayed; ++i) oracle.wh->ProcessEvent(events[i]);
  EXPECT_EQ(recovered_report, DurableReport(*oracle.wh)) << tag;
  // Monotonic epoch: strictly above the oracle prefix and above every
  // epoch the surviving log recorded, so no cached result produced by an
  // acknowledged pre-crash state can validate. (Epochs advanced only in
  // the destroyed tail belong to unacknowledged events — gone with it.)
  EXPECT_GT(recovered.wh->data_epoch(), oracle.wh->data_epoch()) << tag;
  EXPECT_GT(recovered.wh->data_epoch(), recovered.recovery.max_epoch_seen)
      << tag;

  // Log-before-ack: every acknowledged object survived the crash.
  uint64_t acked = 0;
  for (const auto& [rid, rec] : recovered.wh->raw_records()) {
    if (!rec.acknowledged) continue;
    ++acked;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    EXPECT_NE(recovered.wh->hierarchy().FastestTierOf(full_id),
              storage::kNoTier)
        << tag << ": acknowledged object " << rid << " lost";
  }
  if (replayed > 20) {
    EXPECT_GT(acked, 0u) << tag;
  }

  // Life goes on: finish the workload from the recovery point.
  for (uint64_t i = replayed; i < events.size(); ++i) {
    recovered.wh->ProcessEvent(events[i]);
  }
  Status inv = recovered.wh->CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << tag << ": " << inv.ToString();
  return replayed;
}

TEST(DurabilityTest, CrashMatrixFastSlice) {
  DurabilityKnobs k;
  std::vector<trace::TraceEvent> events = RigTrace(k);
  fault::CrashScheduleOptions copts;
  copts.total_events = events.size();
  copts.num_crashes = 4;
  copts.min_event = 10;
  fault::CrashSchedule schedule = fault::CrashSchedule::Generate(7, copts);
  ASSERT_EQ(schedule.points.size(), 4u);
  for (size_t c = 0; c < schedule.points.size(); ++c) {
    RunCrashCell(k, events, schedule.points[c],
                 "fast_cell_" + std::to_string(c));
  }
}

// ---------------------------------------------------------------------------
// Cluster: per-shard logs, partitioned replay, overload shedding
// ---------------------------------------------------------------------------

corpus::CorpusOptions ClusterCorpusOptions() {
  corpus::CorpusOptions copts;
  copts.num_sites = 3;
  copts.pages_per_site = 40;
  copts.seed = 21;
  return copts;
}

cluster::ClusterOptions ClusterOpts(const std::string& durability_dir) {
  cluster::ClusterOptions opts;
  opts.num_shards = 2;
  opts.warehouse.memory_bytes = 2ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 64ull * 1024 * 1024;
  opts.durability.dir = durability_dir;
  return opts;
}

std::vector<trace::TraceEvent> ClusterTrace() {
  corpus::WebCorpus corpus(ClusterCorpusOptions());
  trace::WorkloadOptions w;
  w.horizon = 2 * kHour;
  w.sessions_per_hour = 40;
  w.modifications_per_hour = 10;
  w.seed = 9;
  trace::WorkloadGenerator gen(&corpus, nullptr, w);
  return gen.Generate();
}

std::vector<std::string> ShardDurableReports(cluster::WarehouseCluster& c) {
  c.Drain();
  std::vector<std::string> out;
  for (uint32_t s = 0; s < c.num_shards(); ++s) {
    std::ostringstream os;
    c.mutable_shard(s).PrintDurableReport(os);
    out.push_back(os.str());
  }
  return out;
}

TEST(ClusterDurabilityTest, PartitionedRestartMatchesPerShard) {
  std::string dir = FreshDir("cluster_restart");
  std::vector<trace::TraceEvent> events = ClusterTrace();
  std::vector<std::string> before;
  {
    cluster::WarehouseCluster c(ClusterCorpusOptions(), std::nullopt,
                                ClusterOpts(dir));
    ASSERT_TRUE(c.durability_status().ok())
        << c.durability_status().ToString();
    ASSERT_EQ(c.recovery_reports().size(), 2u);
    EXPECT_FALSE(c.recovery_reports()[0].recovered);
    c.Replay(events);
    before = ShardDurableReports(c);
  }
  EXPECT_TRUE(fs::exists(dir + "/shard-0"));
  EXPECT_TRUE(fs::exists(dir + "/shard-1"));

  // Every shard recovers independently from its own checkpoint/WAL pair
  // and lands byte-identical to its pre-shutdown self.
  cluster::WarehouseCluster recovered(ClusterCorpusOptions(), std::nullopt,
                                      ClusterOpts(dir));
  ASSERT_TRUE(recovered.durability_status().ok())
      << recovered.durability_status().ToString();
  ASSERT_EQ(recovered.recovery_reports().size(), 2u);
  for (const core::RecoveryReport& r : recovered.recovery_reports()) {
    EXPECT_TRUE(r.recovered);
    EXPECT_TRUE(r.wal_clean);
    EXPECT_GT(r.events_processed, 0u);
  }
  EXPECT_EQ(ShardDurableReports(recovered), before);
}

TEST(ClusterDurabilityTest, OneShardTornTailRecoversPartitioned) {
  std::string dir = FreshDir("cluster_torn");
  std::vector<trace::TraceEvent> events = ClusterTrace();
  std::vector<std::string> before;
  uint64_t shard0_events = 0;
  {
    cluster::WarehouseCluster c(ClusterCorpusOptions(), std::nullopt,
                                ClusterOpts(dir));
    ASSERT_TRUE(c.durability_status().ok());
    c.Replay(events);
    before = ShardDurableReports(c);
    shard0_events = c.shard(0).events_processed();
  }
  // Shard 0 crashes mid-append; shard 1's log is untouched.
  fault::CrashPoint tear;
  tear.effect = fault::CrashEffect::kTruncate;
  tear.offset_fraction = 0.6;
  ASSERT_TRUE(fault::ApplyCrash(FindWal(dir + "/shard-0"), tear).ok());

  cluster::WarehouseCluster recovered(ClusterCorpusOptions(), std::nullopt,
                                      ClusterOpts(dir));
  ASSERT_TRUE(recovered.durability_status().ok())
      << recovered.durability_status().ToString();
  const auto& reports = recovered.recovery_reports();
  ASSERT_EQ(reports.size(), 2u);
  // Shard 0 lost its tail but recovered a valid prefix; shard 1 is whole.
  EXPECT_LT(reports[0].events_processed, shard0_events);
  EXPECT_TRUE(reports[1].recovered);
  std::vector<std::string> after = ShardDurableReports(recovered);
  EXPECT_NE(after[0], before[0]);  // Rolled back to the surviving prefix.
  EXPECT_EQ(after[1], before[1]);  // Fault domains are independent.
  for (uint32_t s = 0; s < 2; ++s) {
    Status inv = recovered.mutable_shard(s).CheckStorageInvariants();
    EXPECT_TRUE(inv.ok()) << "shard " << s << ": " << inv.ToString();
  }
}

TEST(ClusterOverloadTest, TryDispatchShedsInsteadOfHanging) {
  cluster::ClusterOptions opts = ClusterOpts("");
  opts.queue_capacity = 8;
  opts.dispatch_max_pauses = 2;  // Shed fast; this test wants rejections.
  cluster::WarehouseCluster c(ClusterCorpusOptions(), std::nullopt, opts);

  // Park shard 0's worker so its queue fills deterministically.
  c.SuspendShard(0);
  corpus::PageId victim_page = 0;
  while (c.ShardOf(victim_page) != 0) ++victim_page;

  trace::TraceEvent e;
  e.type = trace::TraceEventType::kRequest;
  e.page = victim_page;
  e.time = kSecond;
  e.user = 1;
  e.session = 1;
  uint64_t accepted = 0, shed = 0;
  // 8-slot queue + a parked worker: far fewer than 64 submissions must
  // start bouncing. Submit() would spin forever here — TryDispatch must
  // return instead.
  for (int i = 0; i < 64; ++i) {
    e.time += kSecond;
    Status s = c.TryDispatch(e);
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_LE(accepted, opts.queue_capacity + 1);

  c.ResumeShard(0);
  cluster::ClusterReport report = c.Report();
  ASSERT_EQ(report.shard_shed.size(), 2u);
  EXPECT_EQ(report.shard_shed[0], shed);
  EXPECT_EQ(report.shard_shed[1], 0u);
  std::ostringstream os;
  report.Print(os);
  EXPECT_NE(os.str().find("overload"), std::string::npos);
}

}  // namespace
}  // namespace cbfww
