#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/strings.h"

namespace cbfww::core {
namespace {

corpus::CorpusOptions TestCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 40;
  opts.topic.num_topics = 4;
  opts.seed = 77;
  return opts;
}

WarehouseOptions TestWarehouseOptions() {
  WarehouseOptions opts;
  opts.memory_bytes = 8ull * 1024 * 1024;
  opts.disk_bytes = 512ull * 1024 * 1024;
  opts.rebalance_interval = kHour;
  opts.logical.support_threshold = 3;
  return opts;
}

class WarehouseTest : public ::testing::Test {
 protected:
  WarehouseTest()
      : corpus_(TestCorpusOptions()),
        origin_(&corpus_, net::NetworkModel()) {}

  std::unique_ptr<Warehouse> MakeWarehouse(
      WarehouseOptions opts = TestWarehouseOptions(),
      const corpus::NewsFeed* feed = nullptr) {
    return std::make_unique<Warehouse>(&corpus_, &origin_, feed, opts);
  }

  corpus::WebCorpus corpus_;
  net::OriginServer origin_;
};

TEST_F(WarehouseTest, FirstRequestFetchesFromOrigin) {
  auto wh = MakeWarehouse();
  PageVisit v = wh->RequestPage(
      {.page = 0, .user = 1, .session = 1, .now = kSecond});
  EXPECT_GT(v.from_origin, 0u);
  EXPECT_GT(v.latency, 0);
  EXPECT_EQ(wh->counters().requests, 1u);
  EXPECT_GT(wh->counters().origin_fetches, 0u);
  EXPECT_NE(wh->FindPage(0), nullptr);
  EXPECT_NE(wh->FindRaw(corpus_.page(0).container), nullptr);
}

TEST_F(WarehouseTest, RepeatRequestServedLocallyAndFaster) {
  auto wh = MakeWarehouse();
  PageVisit first = wh->RequestPage(
      {.page = 0, .user = 1, .session = 1, .now = kSecond});
  PageVisit second = wh->RequestPage(
      {.page = 0, .user = 1, .session = 2, .now = 2 * kSecond});
  EXPECT_EQ(second.from_origin, 0u);
  EXPECT_LT(second.latency, first.latency);
  EXPECT_GT(second.from_memory + second.from_disk + second.from_tertiary, 0u);
}

TEST_F(WarehouseTest, HistoriesTrackAccesses) {
  auto wh = MakeWarehouse();
  for (int i = 0; i < 5; ++i) {
    wh->RequestPage(
        {.page = 3, .user = 1, .session = static_cast<int64_t>(i), .now = (i + 1) * kMinute});
  }
  const PhysicalPageRecord* rec = wh->FindPage(3);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->history.frequency(), 5u);
  EXPECT_EQ(rec->history.firstref(), kMinute);
  EXPECT_EQ(rec->history.LastKRef(1), 5 * kMinute);
  // Raw container got the same number of references.
  const RawObjectRecord* raw = wh->FindRaw(rec->container);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->history.frequency(), 5u);
}

TEST_F(WarehouseTest, SharedComponentTracksContainers) {
  auto wh = MakeWarehouse();
  // Find a component shared by two pages.
  corpus::RawId shared = corpus::kInvalidRawId;
  corpus::PageId p1 = corpus::kInvalidPageId, p2 = corpus::kInvalidPageId;
  for (corpus::RawId id = 0; id < corpus_.num_raw_objects(); ++id) {
    const auto& containers = corpus_.ContainersOf(id);
    if (containers.size() >= 2) {
      shared = id;
      p1 = containers[0];
      p2 = containers[1];
      break;
    }
  }
  ASSERT_NE(shared, corpus::kInvalidRawId);
  wh->RequestPage({.page = p1, .user = 1, .session = 1, .now = kSecond});
  wh->RequestPage({.page = p2, .user = 1, .session = 2, .now = 2 * kSecond});
  const RawObjectRecord* raw = wh->FindRaw(shared);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->history.shared(), 2u);
  EXPECT_EQ(raw->containers.size(), 2u);
}

TEST_F(WarehouseTest, Figure2SharedComponentPriorityIsMaxNotSum) {
  // Isolate the structural rule: no similarity seeding, no topic boost, and
  // a short aging period so access rates materialize quickly.
  WarehouseOptions opts = TestWarehouseOptions();
  opts.initial_priority = InitialPriorityMode::kZero;
  opts.priority.topic_boost_weight = 0.0;
  opts.priority.aging_period = kMinute;
  opts.topics.usage_weight = 0.0;
  opts.topics.sensor_weight = 0.0;
  auto wh = MakeWarehouse(opts);
  corpus::RawId shared = corpus::kInvalidRawId;
  corpus::PageId d2 = corpus::kInvalidPageId, d3 = corpus::kInvalidPageId;
  for (corpus::RawId id = 0; id < corpus_.num_raw_objects(); ++id) {
    const auto& containers = corpus_.ContainersOf(id);
    if (containers.size() == 2) {
      shared = id;
      d2 = containers[0];
      d3 = containers[1];
      break;
    }
  }
  ASSERT_NE(shared, corpus::kInvalidRawId);

  // The paper's Figure 2: D2 accessed 12 times, D3 accessed 7 times; the
  // shared component E5 sees 19 raw accesses but its priority must be
  // D2's, not the sum.
  // Interleave accesses inside one aging period, then cross a boundary so
  // the rates settle (times must be monotone).
  SimTime t = kSecond;
  for (int i = 0; i < 12; ++i) {
    wh->RequestPage(
        {.page = d2, .user = 1, .session = static_cast<int64_t>(i), .now = t});
    if (i < 7) wh->RequestPage(
        {.page = d3, .user = 2, .session = static_cast<int64_t>(100 + i), .now = t + kSecond});
    t += 4 * kSecond;
  }
  EXPECT_EQ(wh->FindRaw(shared)->history.frequency(), 19u);
  t = 2 * kMinute;

  Priority pd2 = wh->EffectivePagePriority(d2, t);
  Priority pd3 = wh->EffectivePagePriority(d3, t);
  Priority pshared = wh->EffectiveRawPriority(shared, t);
  EXPECT_GT(pd2, pd3);
  EXPECT_DOUBLE_EQ(pshared, std::max(pd2, pd3));
  EXPECT_LE(pshared, pd2 + 1e-9);  // Never exceeds the max container.
}

TEST_F(WarehouseTest, InitialPriorityInheritsFromSimilarRegion) {
  auto wh = MakeWarehouse();
  // Warm up: hammer pages of site 0 (same dominant topic) so their region
  // accumulates high member priorities.
  auto site_pages = corpus_.PagesOfSite(0);
  SimTime t = kSecond;
  for (int round = 0; round < 20; ++round) {
    for (size_t i = 0; i < 5; ++i) {
      wh->RequestPage(
          {.page = site_pages[i], .user = 1, .session = round, .now = t});
      t += kSecond;
    }
  }
  // A fresh page of the same site (similar content) vs a fresh page of a
  // different-topic site.
  corpus::PageId similar_fresh = site_pages[20];
  // Find a page of a different topic.
  corpus::PageId dissimilar_fresh = corpus::kInvalidPageId;
  for (corpus::PageId p = 0; p < corpus_.num_pages(); ++p) {
    if (corpus_.page(p).topic != corpus_.page(similar_fresh).topic &&
        wh->FindPage(p) == nullptr) {
      dissimilar_fresh = p;
      break;
    }
  }
  ASSERT_NE(dissimilar_fresh, corpus::kInvalidPageId);

  wh->RequestPage(
      {.page = similar_fresh, .user = 2, .session = 1000, .now = t});
  wh->RequestPage({.page = dissimilar_fresh,
                   .user = 2,
                   .session = 1001,
                   .now = t + kSecond});
  const PhysicalPageRecord* sim = wh->FindPage(similar_fresh);
  const PhysicalPageRecord* dis = wh->FindPage(dissimilar_fresh);
  ASSERT_NE(sim, nullptr);
  ASSERT_NE(dis, nullptr);
  // The similar page starts warmer (paper Section 3 Priority Manager).
  EXPECT_GT(sim->own_priority, dis->own_priority);
}

TEST_F(WarehouseTest, LruModeStartsEverythingHot) {
  WarehouseOptions opts = TestWarehouseOptions();
  opts.initial_priority = InitialPriorityMode::kZero;
  auto cold_wh = MakeWarehouse(opts);
  cold_wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  EXPECT_DOUBLE_EQ(cold_wh->FindPage(0)->own_priority, 0.0);
}

TEST_F(WarehouseTest, LogicalPagesMinedFromTrails) {
  auto wh = MakeWarehouse();
  // Build a valid link path of length 3 from the corpus.
  corpus::PageId a = 0;
  ASSERT_FALSE(corpus_.page(a).anchors.empty());
  corpus::PageId b = corpus_.page(a).anchors[0].target;
  ASSERT_FALSE(corpus_.page(b).anchors.empty());
  corpus::PageId c = corpus_.page(b).anchors[0].target;

  SimTime t = kSecond;
  for (int s = 0; s < 4; ++s) {
    wh->RequestPage({.page = a, .user = 1, .session = s, .now = t});
    t += 10 * kSecond;
    wh->RequestPage(
        {.page = b, .user = 1, .session = s, .via_link = true, .now = t});
    t += 10 * kSecond;
    wh->RequestPage(
        {.page = c, .user = 1, .session = s, .via_link = true, .now = t});
    t += kHour;  // Gap between sessions.
  }
  EXPECT_FALSE(wh->logical_pages().pages().empty());
  // Social navigation: starting at `a` recommends a mined path.
  auto recs = wh->RecommendPaths(a, 3);
  EXPECT_FALSE(recs.empty());
}

TEST_F(WarehouseTest, WeakConsistencyServesStaleWithoutOrigin) {
  auto wh = MakeWarehouse();  // Default: weak consistency.
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  corpus::RawId container = corpus_.page(0).container;
  wh->ProcessEvent([&] {
    trace::TraceEvent e;
    e.time = 2 * kSecond;
    e.type = trace::TraceEventType::kModify;
    e.modified = container;
    return e;
  }());
  EXPECT_EQ(corpus_.raw(container).version, 2u);
  uint64_t fetches_before = wh->counters().origin_fetches;
  PageVisit v = wh->RequestPage(
      {.page = 0, .user = 1, .session = 2, .now = 3 * kSecond});
  EXPECT_EQ(v.from_origin, 0u);  // Stale copy served.
  EXPECT_EQ(wh->counters().origin_fetches, fetches_before);
}

TEST_F(WarehouseTest, StrongConsistencyRefetchesAfterModification) {
  WarehouseOptions opts = TestWarehouseOptions();
  opts.constraints.default_consistency = ConsistencyMode::kStrong;
  auto wh = MakeWarehouse(opts);
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  corpus::RawId container = corpus_.page(0).container;
  Pcg32 rng(1);
  corpus_.ModifyObject(container, 2 * kSecond, rng);
  wh->OnOriginModified(container, 2 * kSecond);
  PageVisit v = wh->RequestPage(
      {.page = 0, .user = 1, .session = 2, .now = 3 * kSecond});
  EXPECT_GT(v.from_origin, 0u);  // Invalid copy refetched.
  EXPECT_EQ(wh->FindRaw(container)->cached_version, 2u);
}

TEST_F(WarehouseTest, VersionsCapturedAcrossRefetches) {
  WarehouseOptions opts = TestWarehouseOptions();
  opts.constraints.default_consistency = ConsistencyMode::kStrong;
  auto wh = MakeWarehouse(opts);
  corpus::RawId container = corpus_.page(0).container;
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  Pcg32 rng(1);
  corpus_.ModifyObject(container, 2 * kSecond, rng);
  wh->OnOriginModified(container, 2 * kSecond);
  wh->RequestPage({.page = 0, .user = 1, .session = 2, .now = 3 * kSecond});
  EXPECT_EQ(wh->versions().VersionsOf(container).size(), 2u);
  auto old = wh->versions().AsOf(container, kSecond);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->version, 1u);
}

TEST_F(WarehouseTest, CopyrightedObjectsNeverStored) {
  auto wh = MakeWarehouse();
  corpus::RawId container = corpus_.page(0).container;
  wh->mutable_constraints().MarkCopyrighted(container);
  PageVisit v1 = wh->RequestPage(
      {.page = 0, .user = 1, .session = 1, .now = kSecond});
  EXPECT_GT(v1.from_origin, 0u);
  EXPECT_GT(wh->counters().admission_rejections, 0u);
  // Still a miss next time: the container must be refetched.
  PageVisit v2 = wh->RequestPage(
      {.page = 0, .user = 1, .session = 2, .now = 2 * kSecond});
  EXPECT_GT(v2.from_origin, 0u);
}

TEST_F(WarehouseTest, RebalancePlacesHotPagesInMemory) {
  auto wh = MakeWarehouse();
  SimTime t = kSecond;
  // Hammer page 5 through one simulated hour, touch others once.
  for (int i = 0; i < 30; ++i) {
    wh->RequestPage(
        {.page = 5, .user = 1, .session = static_cast<int64_t>(i), .now = t});
    t += kMinute;
  }
  for (corpus::PageId p = 10; p < 20; ++p) {
    wh->RequestPage(
        {.page = p, .user = 2, .session = static_cast<int64_t>(100 + p), .now = t});
    t += kSecond;
  }
  wh->Tick(t + 2 * kHour);  // Forces a rebalance.
  EXPECT_GE(wh->counters().rebalances, 1u);
  corpus::RawId hot_container = corpus_.page(5).container;
  auto store_id = EncodeStoreId(index::ObjectLevel::kRaw, hot_container);
  EXPECT_TRUE(wh->hierarchy().IsResident(store_id, 0))
      << "hot page's container should live in memory";
}

TEST_F(WarehouseTest, QueriesEndToEnd) {
  auto wh = MakeWarehouse();
  SimTime t = kSecond;
  for (int i = 0; i < 9; ++i) {
    wh->RequestPage(
        {.page = 7, .user = 1, .session = static_cast<int64_t>(i), .now = t});
    t += kSecond;
  }
  wh->RequestPage({.page = 8, .user = 1, .session = 100, .now = t});

  auto r = wh->ExecuteQuery("SELECT MFU 1 p.oid, p.frequency "
                            "FROM Physical_Page p");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.size(), 1u);
  EXPECT_EQ(r->result.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r->result.rows[0][1].AsInt(), 9);
}

TEST_F(WarehouseTest, MentionQueryFindsTopicTerms) {
  auto wh = MakeWarehouse();
  wh->RequestPage({.page = 2, .user = 1, .session = 1, .now = kSecond});
  const PhysicalPageRecord* rec = wh->FindPage(2);
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->title_terms.empty());
  std::string term = corpus_.vocabulary().TermOf(rec->title_terms[0]);

  auto r = wh->ExecuteQuery(
      StrFormat("SELECT p.oid FROM Physical_Page p "
                "WHERE p.title MENTION '%s'",
                term.c_str()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->result.used_index);
  bool found = false;
  for (const auto& row : r->result.rows) {
    if (row[0].AsInt() == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(WarehouseTest, TopicSensorDrivesPrefetch) {
  corpus::NewsFeed::Options fopts;
  fopts.num_bursts = 4;
  fopts.horizon = kDay;
  fopts.headline_lead = kHour;
  corpus::NewsFeed feed(fopts, &corpus_.topic_model());
  WarehouseOptions opts = TestWarehouseOptions();
  opts.enable_topic_sensor = true;
  opts.enable_prefetch = true;
  // Small memory tier: most pages live on disk, so hot-topic promotion has
  // something to do.
  opts.memory_bytes = 256 * 1024;
  auto wh = MakeWarehouse(opts, &feed);

  // Warm the index with pages of every site (hence every topic) so the
  // sensor's hot terms always have matching candidates.
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < corpus_.num_pages(); p += 4) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  // Advance past all headlines so the sensor sees them.
  wh->Tick(kDay);
  EXPECT_GT(wh->sensor().headlines_seen(), 0u);
  EXPECT_GT(wh->counters().prefetches, 0u);
}

TEST_F(WarehouseTest, WeakConsistencyPollingRefreshes) {
  WarehouseOptions opts = TestWarehouseOptions();
  opts.constraints.min_poll_interval = kMinute;
  opts.constraints.max_poll_interval = 10 * kMinute;
  auto wh = MakeWarehouse(opts);
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  corpus::RawId container = corpus_.page(0).container;
  Pcg32 rng(1);
  corpus_.ModifyObject(container, kMinute, rng);
  // Let polling run well past the max poll interval.
  wh->Tick(kHour);
  EXPECT_GT(wh->counters().consistency_polls, 0u);
  EXPECT_GT(wh->counters().consistency_refreshes, 0u);
  EXPECT_EQ(wh->FindRaw(container)->cached_version, 2u);
}

TEST_F(WarehouseTest, RecommendationsMatchUserTopic) {
  auto wh = MakeWarehouse();
  // User 1 reads topic-0 pages; user 2 reads topic-1 pages.
  corpus::TopicId user_topic = 0;
  std::vector<corpus::PageId> topic0, topic1;
  for (corpus::PageId p = 0; p < corpus_.num_pages(); ++p) {
    if (corpus_.page(p).topic == 0) topic0.push_back(p);
    if (corpus_.page(p).topic == 1) topic1.push_back(p);
  }
  ASSERT_GE(topic0.size(), 10u);
  ASSERT_GE(topic1.size(), 10u);
  SimTime t = kSecond;
  for (size_t i = 0; i < 10; ++i) {
    wh->RequestPage(
        {.page = topic0[i], .user = 1, .session = static_cast<int64_t>(i), .now = t});
    t += kSecond;
  }
  for (size_t i = 0; i < 10; ++i) {
    wh->RequestPage(
        {.page = topic1[i], .user = 2, .session = static_cast<int64_t>(100 + i), .now = t});
    t += kSecond;
  }
  auto recs = wh->RecommendPages(1, 5);
  ASSERT_FALSE(recs.empty());
  int matching = 0;
  for (const auto& r : recs) {
    if (corpus_.page(r.doc).topic == user_topic) ++matching;
  }
  EXPECT_GT(matching, static_cast<int>(recs.size()) / 2);
}

TEST_F(WarehouseTest, ProcessEventDispatches) {
  auto wh = MakeWarehouse();
  trace::TraceEvent req;
  req.time = kSecond;
  req.type = trace::TraceEventType::kRequest;
  req.page = 1;
  req.user = 3;
  req.session = 9;
  PageVisit v = wh->ProcessEvent(req);
  EXPECT_EQ(v.page, 1u);
  EXPECT_EQ(wh->analyzer().total_requests(), 1u);
  EXPECT_EQ(wh->analyzer().distinct_users(), 1u);
}

TEST_F(WarehouseTest, EndToEndWorkloadRuns) {
  // Full pipeline smoke: generated workload through the warehouse.
  trace::WorkloadOptions wopts;
  wopts.horizon = 2 * kHour;
  wopts.sessions_per_hour = 60;
  trace::WorkloadGenerator gen(&corpus_, nullptr, wopts);
  auto events = gen.Generate();
  ASSERT_GT(events.size(), 100u);

  auto wh = MakeWarehouse();
  for (const auto& e : events) wh->ProcessEvent(e);
  EXPECT_GT(wh->analyzer().total_requests(), 100u);
  EXPECT_GT(wh->counters().origin_fetches, 0u);
  // Storage invariant: memory usage within capacity.
  EXPECT_LE(wh->hierarchy().used_bytes(0), TestWarehouseOptions().memory_bytes);
  // Latency stats populated.
  EXPECT_GT(wh->analyzer().latency_stats().mean(), 0.0);
}

TEST_F(WarehouseTest, AnalyzerTracksServeMix) {
  auto wh = MakeWarehouse();
  wh->RequestPage(
      {.page = 0, .user = 1, .session = 1, .now = kSecond});          // Origin.
  wh->RequestPage(
      {.page = 0, .user = 1, .session = 2, .now = 2 * kSecond});      // Local.
  const DataAnalyzer& an = wh->analyzer();
  EXPECT_EQ(an.total_requests(), 2u);
  EXPECT_GE(an.served_from(DataAnalyzer::ServedBy::kOrigin), 1u);
  auto top = an.TopPages(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].page, 0u);
  EXPECT_EQ(top[0].count, 2u);
}

}  // namespace
}  // namespace cbfww::core
