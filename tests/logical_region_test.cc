#include <gtest/gtest.h>

#include "core/logical_page_manager.h"
#include "core/semantic_region_manager.h"

namespace cbfww::core {
namespace {

/// Fixture content provider: anchor text for link a->b is term 1000+a;
/// title of page p is term 2000+p; body vector has weight on term 3000+p.
class FakeContent : public LogicalContentProvider {
 public:
  std::vector<text::TermId> AnchorTerms(corpus::PageId from,
                                        corpus::PageId to) const override {
    (void)to;
    return {static_cast<text::TermId>(1000 + from)};
  }
  std::vector<text::TermId> TitleTerms(corpus::PageId page) const override {
    return {static_cast<text::TermId>(2000 + page)};
  }
  text::TermVector BodyVector(corpus::PageId page) const override {
    text::TermVector v;
    v.Add(static_cast<text::TermId>(3000 + page), 1.0);
    return v;
  }
  text::TermVector TermsToVector(
      const std::vector<text::TermId>& terms) const override {
    return text::TermVector::FromCounts(terms);
  }
};

LogicalPageOptions MinerOptions() {
  LogicalPageOptions opts;
  opts.min_path_length = 2;
  opts.max_path_length = 4;
  opts.support_threshold = 3;
  opts.max_hop_gap = 5 * kMinute;
  opts.omega = 3.0;
  return opts;
}

class LogicalPageManagerTest : public ::testing::Test {
 protected:
  LogicalPageManagerTest() : manager_(MinerOptions(), &content_) {}

  /// Replays path once for `session`, with hops `gap` apart starting at t0.
  LogicalPageManager::Observation Walk(int64_t session,
                                       const std::vector<corpus::PageId>& path,
                                       SimTime t0, SimTime gap = kMinute) {
    LogicalPageManager::Observation last;
    SimTime t = t0;
    for (size_t i = 0; i < path.size(); ++i) {
      last = manager_.ObserveRequest(session, path[i], i > 0, t);
      t += gap;
    }
    return last;
  }

  FakeContent content_;
  LogicalPageManager manager_;
};

TEST_F(LogicalPageManagerTest, MaterializesAtSupportThreshold) {
  // The paper's Figure 5 scenario: path A-B-E traversed repeatedly.
  std::vector<corpus::PageId> path = {10, 20, 30};
  Walk(1, path, 0);
  Walk(2, path, kHour);
  EXPECT_TRUE(manager_.pages().empty());
  auto obs = Walk(3, path, 2 * kHour);  // Third traversal crosses threshold.
  EXPECT_FALSE(manager_.pages().empty());
  EXPECT_FALSE(obs.materialized.empty());
  EXPECT_EQ(manager_.CandidateSupport(path), 3u);
}

TEST_F(LogicalPageManagerTest, MaterializedContentFollowsPaperFormula) {
  std::vector<corpus::PageId> path = {1, 2, 3};
  for (int s = 0; s < 3; ++s) Walk(s, path, s * kHour);
  // Find the full-length logical page.
  const LogicalPageRecord* rec = nullptr;
  for (const auto& [id, r] : manager_.pages()) {
    if (r.path == path) rec = &r;
  }
  ASSERT_NE(rec, nullptr);
  // Title = anchor texts along the path + terminal title:
  //   anchor(1->2)=1001, anchor(2->3)=1002, title(3)=2003.
  EXPECT_EQ(rec->title_terms,
            (std::vector<text::TermId>{1001, 1002, 2003}));
  // Vector = omega * v_title + v_body: title terms weigh omega, body 1.
  EXPECT_DOUBLE_EQ(rec->vector.WeightOf(1001), 3.0);
  EXPECT_DOUBLE_EQ(rec->vector.WeightOf(2003), 3.0);
  EXPECT_DOUBLE_EQ(rec->vector.WeightOf(3003), 1.0);
  EXPECT_EQ(rec->entry(), 1u);
  EXPECT_EQ(rec->terminal(), 3u);
}

TEST_F(LogicalPageManagerTest, CompletedTraversalsCountAsReferences) {
  std::vector<corpus::PageId> path = {5, 6};
  for (int s = 0; s < 3; ++s) Walk(s, path, s * kHour);
  LogicalPageId id = manager_.pages().begin()->first;
  uint64_t freq_before = manager_.FindPage(id)->history.frequency();
  auto obs = Walk(99, path, 100 * kHour);
  EXPECT_FALSE(obs.completed.empty());
  EXPECT_EQ(manager_.FindPage(id)->history.frequency(), freq_before + 1);
}

TEST_F(LogicalPageManagerTest, TimeGapBreaksTraversal) {
  std::vector<corpus::PageId> path = {7, 8};
  // Hops exceed max_hop_gap: never forms a path.
  for (int s = 0; s < 10; ++s) {
    Walk(s, path, s * kHour, /*gap=*/kHour);
  }
  EXPECT_EQ(manager_.CandidateSupport(path), 0u);
  EXPECT_TRUE(manager_.pages().empty());
}

TEST_F(LogicalPageManagerTest, NonLinkRequestBreaksPath) {
  for (int s = 0; s < 5; ++s) {
    manager_.ObserveRequest(s, 1, false, s * kHour);
    manager_.ObserveRequest(s, 2, false, s * kHour + kMinute);  // Jump.
  }
  EXPECT_EQ(manager_.CandidateSupport({1, 2}), 0u);
}

TEST_F(LogicalPageManagerTest, SuffixPathsCountedSeparately) {
  std::vector<corpus::PageId> path = {1, 2, 3, 4};
  Walk(0, path, 0);
  // Suffixes of the window all count: {3,4}, {2,3,4}, {1,2,3,4}.
  EXPECT_EQ(manager_.CandidateSupport({3, 4}), 1u);
  EXPECT_EQ(manager_.CandidateSupport({2, 3, 4}), 1u);
  EXPECT_EQ(manager_.CandidateSupport({1, 2, 3, 4}), 1u);
  // Earlier window states counted their own suffixes too.
  EXPECT_EQ(manager_.CandidateSupport({1, 2, 3}), 1u);
  // Non-contiguous subsequences are never counted.
  EXPECT_EQ(manager_.CandidateSupport({1, 3}), 0u);
  EXPECT_EQ(manager_.CandidateSupport({2, 4}), 0u);
}

TEST_F(LogicalPageManagerTest, WindowBoundedByMaxPathLength) {
  std::vector<corpus::PageId> path = {1, 2, 3, 4, 5, 6};
  Walk(0, path, 0);
  // Paths longer than max (4) never counted.
  EXPECT_EQ(manager_.CandidateSupport({1, 2, 3, 4, 5}), 0u);
  EXPECT_EQ(manager_.CandidateSupport({3, 4, 5, 6}), 1u);
}

TEST_F(LogicalPageManagerTest, IndexesByContainmentAndStart) {
  std::vector<corpus::PageId> path = {11, 12, 13};
  for (int s = 0; s < 3; ++s) Walk(s, path, s * kHour);
  // Containment: every page of a materialized path indexes it.
  EXPECT_FALSE(manager_.PagesContaining(12).empty());
  EXPECT_TRUE(manager_.PagesContaining(99).empty());
  // Start index ("guided navigation" hook).
  EXPECT_FALSE(manager_.PagesStartingAt(12).empty());  // Suffix {12,13}.
  auto at11 = manager_.PagesStartingAt(11);
  bool found_full = false;
  for (LogicalPageId id : at11) {
    if (manager_.FindPage(id)->path == path) found_full = true;
  }
  EXPECT_TRUE(found_full);
}

TEST_F(LogicalPageManagerTest, SessionsAreIsolated) {
  // Interleaved sessions must not splice paths together.
  manager_.ObserveRequest(1, 1, false, 0);
  manager_.ObserveRequest(2, 7, false, kSecond);
  manager_.ObserveRequest(1, 2, true, 2 * kSecond);
  EXPECT_EQ(manager_.CandidateSupport({1, 2}), 1u);
  EXPECT_EQ(manager_.CandidateSupport({7, 2}), 0u);
}

TEST_F(LogicalPageManagerTest, CandidatePruningKeepsTableBounded) {
  LogicalPageOptions opts = MinerOptions();
  opts.max_candidates = 50;
  opts.support_threshold = 1000000;  // Never materialize.
  LogicalPageManager small(opts, &content_);
  Pcg32 rng(3);
  SimTime t = 0;
  for (int i = 0; i < 3000; ++i) {
    small.ObserveRequest(0, rng.NextBounded(500), i % 4 != 0, t);
    t += kSecond;
  }
  EXPECT_LE(small.num_candidates(), 60u);  // Bounded (prune at > 50).
}

// ---------------------------------------------------------------------------
// SemanticRegionManager
// ---------------------------------------------------------------------------

SemanticRegionManager::Options RegionOptions() {
  SemanticRegionManager::Options opts;
  opts.clustering.target_clusters = 4;
  opts.clustering.max_facilities = 16;
  opts.clustering.seed = 5;
  return opts;
}

text::TermVector UnitVec(text::TermId dim) {
  text::TermVector v;
  v.Add(dim, 1.0);
  return v;
}

TEST(SemanticRegionTest, AssignCreatesAndReuses) {
  SemanticRegionManager mgr(RegionOptions());
  RegionId a = mgr.Assign(UnitVec(1));
  EXPECT_NE(a, kInvalidRegionId);
  // Same vector lands in the same region.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(mgr.Assign(UnitVec(1)), a);
  EXPECT_EQ(mgr.regions().size(), 1u);
}

TEST(SemanticRegionTest, DistinctContentDistinctRegions) {
  SemanticRegionManager mgr(RegionOptions());
  RegionId a = mgr.Assign(UnitVec(1));
  RegionId b = mgr.Assign(UnitVec(500));
  // Orthogonal unit vectors are distance sqrt(2) >> facility cost.
  EXPECT_NE(a, b);
}

TEST(SemanticRegionTest, NearestWithoutInsert) {
  SemanticRegionManager mgr(RegionOptions());
  EXPECT_EQ(mgr.Nearest(UnitVec(1)), kInvalidRegionId);
  RegionId a = mgr.Assign(UnitVec(1));
  EXPECT_EQ(mgr.Nearest(UnitVec(1)), a);
  size_t regions_before = mgr.regions().size();
  mgr.Nearest(UnitVec(999));
  EXPECT_EQ(mgr.regions().size(), regions_before);
}

TEST(SemanticRegionTest, PredictionReflectsMemberPriorities) {
  SemanticRegionManager mgr(RegionOptions());
  RegionId hot = mgr.Assign(UnitVec(1));
  RegionId cold = mgr.Assign(UnitVec(500));
  for (int i = 0; i < 10; ++i) {
    mgr.RecordMemberPriority(hot, 10.0, 0);
    mgr.RecordMemberPriority(cold, 0.1, 0);
  }
  auto hot_pred = mgr.PredictPriority(UnitVec(1));
  auto cold_pred = mgr.PredictPriority(UnitVec(500));
  EXPECT_EQ(hot_pred.region, hot);
  EXPECT_EQ(cold_pred.region, cold);
  EXPECT_NEAR(hot_pred.mean_priority, 10.0, 1e-9);
  EXPECT_NEAR(cold_pred.mean_priority, 0.1, 1e-9);
  EXPECT_GT(hot_pred.similarity, 0.9);
}

TEST(SemanticRegionTest, PredictionOnEmptyManager) {
  SemanticRegionManager mgr(RegionOptions());
  auto pred = mgr.PredictPriority(UnitVec(1));
  EXPECT_EQ(pred.region, kInvalidRegionId);
  EXPECT_DOUBLE_EQ(pred.mean_priority, 0.0);
}

TEST(SemanticRegionTest, AggregateDecayTracksHotSpots) {
  SemanticRegionManager::Options opts = RegionOptions();
  opts.aggregate_decay = 0.5;
  opts.decay_period = kHour;
  SemanticRegionManager mgr(opts);
  RegionId r = mgr.Assign(UnitVec(1));
  mgr.RecordMemberPriority(r, 8.0, 0);
  // Much later, record a tiny priority; the old aggregate has decayed.
  mgr.RecordMemberPriority(r, 0.0, 10 * kHour);
  auto pred = mgr.PredictPriority(UnitVec(1));
  EXPECT_LT(pred.mean_priority, 1.0);
}

TEST(SemanticRegionTest, SyncSurvivesMerges) {
  SemanticRegionManager::Options opts = RegionOptions();
  opts.clustering.max_facilities = 6;  // Force phase changes.
  SemanticRegionManager mgr(opts);
  Pcg32 rng(7);
  for (int i = 0; i < 400; ++i) {
    RegionId r = mgr.Assign(UnitVec(rng.NextBounded(100)));
    mgr.RecordMemberPriority(r, 1.0, i);
  }
  mgr.Sync(400);
  EXPECT_LE(mgr.regions().size(), 6u);
  // All regions correspond to live facilities with refreshed centroids.
  for (const auto& [id, rec] : mgr.regions()) {
    EXPECT_TRUE(mgr.stream().facilities().contains(id));
    EXPECT_GT(rec.weight, 0.0);
  }
}

}  // namespace
}  // namespace cbfww::core
