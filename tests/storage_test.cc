#include <gtest/gtest.h>

#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "storage/device.h"
#include "storage/hierarchy.h"

namespace cbfww::storage {
namespace {

std::vector<DeviceModel> ThreeTiers(uint64_t mem = 1000, uint64_t disk = 10000) {
  return {DeviceModel::Memory(mem), DeviceModel::Disk(disk),
          DeviceModel::Tertiary(0)};
}

// ---------------------------------------------------------------------------
// DeviceModel
// ---------------------------------------------------------------------------

TEST(DeviceModelTest, TransferTimeScalesWithSize) {
  DeviceModel d = DeviceModel::Disk(0);
  EXPECT_GT(d.TransferTime(1 << 20), d.TransferTime(1 << 10));
  EXPECT_GE(d.TransferTime(0), d.access_latency);
}

TEST(DeviceModelTest, TierLatencyOrdering) {
  // The premise: memory << disk << tertiary, and (checked in
  // OriginServerTest) every tier beats an origin fetch.
  uint64_t bytes = 24 * 1024;
  SimTime mem = DeviceModel::Memory(0).TransferTime(bytes);
  SimTime disk = DeviceModel::Disk(0).TransferTime(bytes);
  SimTime tape = DeviceModel::Tertiary(0).TransferTime(bytes);
  EXPECT_LT(mem * 100, disk);
  EXPECT_LT(disk * 10, tape);
}

// ---------------------------------------------------------------------------
// StorageHierarchy
// ---------------------------------------------------------------------------

TEST(HierarchyTest, StoreAndRead) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 100, 0).ok());
  EXPECT_TRUE(h.IsResident(1, 0));
  EXPECT_EQ(h.FastestTierOf(1), 0);
  EXPECT_EQ(h.SizeOf(1), 100u);
  auto cost = h.Read(1);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(*cost, 0);
  EXPECT_EQ(h.stats().reads, 1u);
}

TEST(HierarchyTest, ReadMissingFails) {
  StorageHierarchy h(ThreeTiers());
  EXPECT_EQ(h.Read(99).status().code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, CapacityEnforced) {
  StorageHierarchy h(ThreeTiers(/*mem=*/100));
  EXPECT_TRUE(h.Store(1, 60, 0).ok());
  EXPECT_EQ(h.Store(2, 60, 0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(h.used_bytes(0), 60u);
  // Unbounded tertiary accepts anything.
  EXPECT_TRUE(h.Store(2, 1ull << 40, 2).ok());
}

TEST(HierarchyTest, MultiTierCopiesReadFromFastest) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 100, 2).ok());
  auto slow = h.Read(1);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(h.Store(1, 100, 0).ok());
  auto fast = h.Read(1);
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(*fast, *slow);
  EXPECT_EQ(h.resident_count(0), 1u);
  EXPECT_EQ(h.resident_count(2), 1u);
}

TEST(HierarchyTest, EvictFreesSpace) {
  StorageHierarchy h(ThreeTiers(100));
  ASSERT_TRUE(h.Store(1, 80, 0).ok());
  ASSERT_TRUE(h.Evict(1, 0).ok());
  EXPECT_EQ(h.used_bytes(0), 0u);
  EXPECT_EQ(h.FastestTierOf(1), kNoTier);
  EXPECT_TRUE(h.Store(2, 80, 0).ok());
  EXPECT_EQ(h.Evict(1, 0).code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, EvictAllDropsEverything) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 10, 0).ok());
  ASSERT_TRUE(h.Store(1, 10, 1).ok());
  ASSERT_TRUE(h.Store(1, 10, 2).ok());
  h.EvictAll(1);
  EXPECT_EQ(h.FastestTierOf(1), kNoTier);
  for (int t = 0; t < 3; ++t) EXPECT_EQ(h.used_bytes(t), 0u);
}

TEST(HierarchyTest, MigrateCopiesAndMoves) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 100, 2).ok());
  // Non-exclusive: copy up, keep backup.
  ASSERT_TRUE(h.Migrate(1, 0, /*exclusive=*/false).ok());
  EXPECT_TRUE(h.IsResident(1, 0));
  EXPECT_TRUE(h.IsResident(1, 2));
  EXPECT_EQ(h.stats().migrations, 1u);
  EXPECT_EQ(h.stats().bytes_migrated, 100u);
  // Exclusive: move down, dropping other copies.
  ASSERT_TRUE(h.Migrate(1, 1, /*exclusive=*/true).ok());
  EXPECT_TRUE(h.IsResident(1, 1));
  EXPECT_FALSE(h.IsResident(1, 0));
  EXPECT_FALSE(h.IsResident(1, 2));
}

TEST(HierarchyTest, MigrateRespectsCapacityWithoutLosingObject) {
  StorageHierarchy h(ThreeTiers(/*mem=*/50));
  ASSERT_TRUE(h.Store(1, 100, 1).ok());
  Status s = h.Migrate(1, 0, /*exclusive=*/true);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(h.IsResident(1, 1));  // Source copy survived.
}

TEST(HierarchyTest, MigrateMissingObject) {
  StorageHierarchy h(ThreeTiers());
  EXPECT_EQ(h.Migrate(42, 0, false).code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, StaleMarking) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 10, 1).ok());
  EXPECT_FALSE(h.IsStale(1, 1));
  ASSERT_TRUE(h.MarkStale(1, 1).ok());
  EXPECT_TRUE(h.IsStale(1, 1));
  // Re-storing refreshes the copy.
  ASSERT_TRUE(h.Store(1, 10, 1).ok());
  EXPECT_FALSE(h.IsStale(1, 1));
  EXPECT_EQ(h.MarkStale(1, 0).code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, FreeBytesAccounting) {
  StorageHierarchy h(ThreeTiers(100, 200));
  EXPECT_EQ(h.free_bytes(0), 100u);
  ASSERT_TRUE(h.Store(1, 40, 0).ok());
  EXPECT_EQ(h.free_bytes(0), 60u);
  EXPECT_EQ(h.free_bytes(2), UINT64_MAX);
}

TEST(HierarchyTest, ObjectsAtTier) {
  StorageHierarchy h(ThreeTiers());
  ASSERT_TRUE(h.Store(1, 1, 0).ok());
  ASSERT_TRUE(h.Store(2, 1, 0).ok());
  ASSERT_TRUE(h.Store(3, 1, 1).ok());
  auto at0 = h.ObjectsAtTier(0);
  EXPECT_EQ(at0.size(), 2u);
  EXPECT_EQ(h.ObjectsAtTier(1).size(), 1u);
  EXPECT_TRUE(h.ObjectsAtTier(2).empty());
}

TEST(HierarchyTest, DoubleStoreIsRefreshNotDuplicate) {
  StorageHierarchy h(ThreeTiers(100));
  ASSERT_TRUE(h.Store(1, 60, 0).ok());
  ASSERT_TRUE(h.Store(1, 60, 0).ok());  // No double accounting.
  EXPECT_EQ(h.used_bytes(0), 60u);
  EXPECT_EQ(h.resident_count(0), 1u);
}

TEST(HierarchyTest, InvalidTierRejected) {
  StorageHierarchy h(ThreeTiers());
  EXPECT_EQ(h.Store(1, 1, -1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(h.Store(1, 1, 3).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cbfww::storage

namespace cbfww::net {
namespace {

corpus::CorpusOptions TinyCorpus() {
  corpus::CorpusOptions opts;
  opts.num_sites = 2;
  opts.pages_per_site = 5;
  return opts;
}

TEST(OriginServerTest, FetchCostsAndStats) {
  corpus::WebCorpus corpus(TinyCorpus());
  OriginServer origin(&corpus, NetworkModel());
  auto r = origin.Fetch(0);
  EXPECT_EQ(r.bytes, corpus.raw(0).size_bytes);
  EXPECT_EQ(r.version, 1u);
  EXPECT_GT(r.cost, NetworkModel().rtt);
  EXPECT_EQ(origin.stats().fetches, 1u);
  EXPECT_EQ(origin.stats().bytes_transferred, r.bytes);
}

TEST(OriginServerTest, FetchSlowerThanEveryLocalTierPremise) {
  // The paper's core premise: even online tapes beat the origin.
  corpus::WebCorpus corpus(TinyCorpus());
  OriginServer origin(&corpus, NetworkModel());
  auto r = origin.Fetch(0);
  EXPECT_GT(r.cost, storage::DeviceModel::Disk(0).TransferTime(r.bytes));
  EXPECT_GT(r.cost, storage::DeviceModel::Tertiary(0).TransferTime(r.bytes));
}

TEST(OriginServerTest, ValidateDetectsModification) {
  corpus::WebCorpus corpus(TinyCorpus());
  OriginServer origin(&corpus, NetworkModel());
  auto v1 = origin.Validate(0, 1);
  EXPECT_FALSE(v1.modified);
  Pcg32 rng(1);
  corpus.ModifyObject(0, kSecond, rng);
  auto v2 = origin.Validate(0, 1);
  EXPECT_TRUE(v2.modified);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_EQ(origin.stats().validations, 2u);
}

TEST(OriginServerTest, ValidateCheaperThanFetch) {
  corpus::WebCorpus corpus(TinyCorpus());
  OriginServer origin(&corpus, NetworkModel());
  auto f = origin.Fetch(0);
  auto v = origin.Validate(0, f.version);
  EXPECT_LT(v.cost, f.cost);
}

}  // namespace
}  // namespace cbfww::net
