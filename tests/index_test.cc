#include <gtest/gtest.h>

#include "index/index_hierarchy.h"
#include "index/inverted_index.h"

namespace cbfww::index {
namespace {

text::TermVector Vec(std::vector<std::pair<text::TermId, double>> entries) {
  return text::TermVector::FromUnsorted(std::move(entries));
}

TEST(InvertedIndexTest, AddAndQuery) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 2.0}}));
  idx.Add(2, Vec({{11, 1.0}, {12, 1.0}}));
  EXPECT_EQ(idx.num_documents(), 2u);
  EXPECT_EQ(idx.num_terms(), 3u);

  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 1u);
}

TEST(InvertedIndexTest, QueryRanksbyCosine) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));                 // Perfect match.
  idx.Add(2, Vec({{10, 1.0}, {99, 10.0}}));     // Diluted match.
  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_GT(hits[0].score, hits[1].score);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-9);
}

TEST(InvertedIndexTest, TopKTruncates) {
  InvertedIndex idx;
  for (uint64_t d = 0; d < 20; ++d) idx.Add(d, Vec({{5, 1.0 + d}}));
  auto hits = idx.QueryVector(Vec({{5, 1.0}}), 3);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(InvertedIndexTest, RemoveErasesPostings) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(2, Vec({{10, 1.0}}));
  idx.Remove(1);
  EXPECT_FALSE(idx.Contains(1));
  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2u);
  idx.Remove(2);
  EXPECT_EQ(idx.num_terms(), 0u);
  idx.Remove(99);  // No-op.
}

TEST(InvertedIndexTest, ReAddReplaces) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(1, Vec({{20, 1.0}}));
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_TRUE(idx.DocsContainingAll({10}).empty());
  EXPECT_EQ(idx.DocsContainingAll({20}).size(), 1u);
}

TEST(InvertedIndexTest, DocsContainingAll) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 1.0}}));
  idx.Add(2, Vec({{10, 1.0}}));
  idx.Add(3, Vec({{10, 1.0}, {11, 1.0}, {12, 1.0}}));
  auto both = idx.DocsContainingAll({10, 11});
  EXPECT_EQ(both, (std::vector<uint64_t>{1, 3}));
  EXPECT_TRUE(idx.DocsContainingAll({10, 99}).empty());
  EXPECT_TRUE(idx.DocsContainingAll({}).empty());
}

TEST(InvertedIndexTest, DocsContainingAny) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(2, Vec({{11, 1.0}}));
  idx.Add(3, Vec({{12, 1.0}}));
  auto any = idx.DocsContainingAny({10, 12, 99});
  EXPECT_EQ(any, (std::vector<uint64_t>{1, 3}));
}

TEST(InvertedIndexTest, ZeroWeightEntriesSkipped) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 0.0}, {11, 1.0}}));
  EXPECT_FALSE(idx.TermPresent(10));
  EXPECT_TRUE(idx.TermPresent(11));
}

TEST(InvertedIndexTest, MemoryBytesGrowsWithContent) {
  InvertedIndex idx;
  uint64_t empty = idx.MemoryBytes();
  for (uint64_t d = 0; d < 50; ++d) {
    idx.Add(d, Vec({{static_cast<text::TermId>(d), 1.0}, {999, 1.0}}));
  }
  EXPECT_GT(idx.MemoryBytes(), empty);
}

TEST(IndexHierarchyTest, LevelsIndependent) {
  IndexHierarchy h;
  h.Add(ObjectLevel::kPhysical, 1, Vec({{10, 1.0}}));
  h.Add(ObjectLevel::kLogical, 2, Vec({{20, 1.0}}));
  EXPECT_EQ(h.level(ObjectLevel::kPhysical).num_documents(), 1u);
  EXPECT_EQ(h.level(ObjectLevel::kLogical).num_documents(), 1u);
  EXPECT_EQ(h.level(ObjectLevel::kRaw).num_documents(), 0u);
  EXPECT_EQ(h.Query(ObjectLevel::kPhysical, Vec({{10, 1.0}}), 5).size(), 1u);
}

TEST(IndexHierarchyTest, RoutingTable) {
  IndexHierarchy h;
  h.Add(ObjectLevel::kPhysical, 1, Vec({{10, 1.0}}));
  h.Add(ObjectLevel::kLogical, 2, Vec({{10, 1.0}, {20, 1.0}}));
  // Term 10 lives at physical(1) and logical(2) levels.
  EXPECT_EQ(h.LevelsContaining(10), (1u << 1) | (1u << 2));
  EXPECT_EQ(h.LevelsContaining(20), (1u << 2));
  EXPECT_EQ(h.LevelsContaining(999), 0u);
  h.Remove(ObjectLevel::kLogical, 2);
  EXPECT_EQ(h.LevelsContaining(10), (1u << 1));
}

TEST(IndexHierarchyTest, ObjectLevelNames) {
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kRaw), "raw");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kPhysical), "physical");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kLogical), "logical");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kRegion), "region");
}

TEST(IndexHierarchyTest, MemoryAggregates) {
  IndexHierarchy h;
  uint64_t base = h.MemoryBytes();
  h.Add(ObjectLevel::kRaw, 1, Vec({{1, 1.0}}));
  h.Add(ObjectLevel::kRegion, 2, Vec({{2, 1.0}}));
  EXPECT_GT(h.MemoryBytes(), base);
}

}  // namespace
}  // namespace cbfww::index
