#include <gtest/gtest.h>

#include "index/index_hierarchy.h"
#include "index/inverted_index.h"
#include "util/rng.h"

namespace cbfww::index {
namespace {

text::TermVector Vec(std::vector<std::pair<text::TermId, double>> entries) {
  return text::TermVector::FromUnsorted(std::move(entries));
}

TEST(InvertedIndexTest, AddAndQuery) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 2.0}}));
  idx.Add(2, Vec({{11, 1.0}, {12, 1.0}}));
  EXPECT_EQ(idx.num_documents(), 2u);
  EXPECT_EQ(idx.num_terms(), 3u);

  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 1u);
}

TEST(InvertedIndexTest, QueryRanksbyCosine) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));                 // Perfect match.
  idx.Add(2, Vec({{10, 1.0}, {99, 10.0}}));     // Diluted match.
  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_GT(hits[0].score, hits[1].score);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-9);
}

TEST(InvertedIndexTest, TopKTruncates) {
  InvertedIndex idx;
  for (uint64_t d = 0; d < 20; ++d) idx.Add(d, Vec({{5, 1.0 + d}}));
  auto hits = idx.QueryVector(Vec({{5, 1.0}}), 3);
  EXPECT_EQ(hits.size(), 3u);
}

TEST(InvertedIndexTest, RemoveErasesPostings) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(2, Vec({{10, 1.0}}));
  idx.Remove(1);
  EXPECT_FALSE(idx.Contains(1));
  auto hits = idx.QueryVector(Vec({{10, 1.0}}), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2u);
  idx.Remove(2);
  EXPECT_EQ(idx.num_terms(), 0u);
  idx.Remove(99);  // No-op.
}

TEST(InvertedIndexTest, ReAddReplaces) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(1, Vec({{20, 1.0}}));
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_TRUE(idx.DocsContainingAll({10}).empty());
  EXPECT_EQ(idx.DocsContainingAll({20}).size(), 1u);
}

TEST(InvertedIndexTest, DocsContainingAll) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 1.0}}));
  idx.Add(2, Vec({{10, 1.0}}));
  idx.Add(3, Vec({{10, 1.0}, {11, 1.0}, {12, 1.0}}));
  auto both = idx.DocsContainingAll({10, 11});
  EXPECT_EQ(both, (std::vector<uint64_t>{1, 3}));
  EXPECT_TRUE(idx.DocsContainingAll({10, 99}).empty());
  EXPECT_TRUE(idx.DocsContainingAll({}).empty());
}

TEST(InvertedIndexTest, DocsContainingAny) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}}));
  idx.Add(2, Vec({{11, 1.0}}));
  idx.Add(3, Vec({{12, 1.0}}));
  auto any = idx.DocsContainingAny({10, 12, 99});
  EXPECT_EQ(any, (std::vector<uint64_t>{1, 3}));
}

TEST(InvertedIndexTest, ZeroWeightEntriesSkipped) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 0.0}, {11, 1.0}}));
  EXPECT_FALSE(idx.TermPresent(10));
  EXPECT_TRUE(idx.TermPresent(11));
}

TEST(InvertedIndexTest, MemoryBytesGrowsWithContent) {
  InvertedIndex idx;
  uint64_t empty = idx.MemoryBytes();
  for (uint64_t d = 0; d < 50; ++d) {
    idx.Add(d, Vec({{static_cast<text::TermId>(d), 1.0}, {999, 1.0}}));
  }
  EXPECT_GT(idx.MemoryBytes(), empty);
}

TEST(InvertedIndexTest, AddReplacesExistingDoc) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 2.0}}));
  idx.Add(1, Vec({{11, 3.0}, {12, 1.0}}));
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_FALSE(idx.TermPresent(10));
  EXPECT_TRUE(idx.TermPresent(11));
  EXPECT_EQ(idx.DocsContainingAll({11, 12}), (std::vector<uint64_t>{1}));
  // The old vector's postings are gone: a query on term 10 finds nothing.
  EXPECT_TRUE(idx.QueryVector(Vec({{10, 1.0}}), 5).empty());
}

TEST(InvertedIndexTest, RemoveThenReAdd) {
  InvertedIndex idx;
  idx.Add(1, Vec({{10, 1.0}, {11, 1.0}}));
  idx.Add(2, Vec({{10, 1.0}}));
  idx.Remove(1);
  EXPECT_EQ(idx.pending_tombstones(), 1u);
  idx.Add(1, Vec({{12, 2.0}}));
  // Re-add purges the tombstone eagerly so stale postings can't mask the
  // fresh ones.
  EXPECT_EQ(idx.pending_tombstones(), 0u);
  EXPECT_FALSE(idx.TermPresent(11));
  EXPECT_EQ(idx.DocsContainingAll({12}), (std::vector<uint64_t>{1}));
  auto hits = idx.QueryVector(Vec({{12, 1.0}}), 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-9);
}

TEST(InvertedIndexTest, TopKTiesBreakByAscendingDocId) {
  InvertedIndex idx;
  // Ten identical documents: every score ties, so doc id must decide.
  for (uint64_t d = 0; d < 10; ++d) {
    idx.Add(d, Vec({{5, 2.0}, {6, 1.0}}));
  }
  auto pruned = idx.QueryVector(Vec({{5, 1.0}, {6, 0.5}}), 3);
  auto exhaustive = idx.QueryVectorExhaustive(Vec({{5, 1.0}, {6, 0.5}}), 3);
  ASSERT_EQ(pruned.size(), 3u);
  EXPECT_EQ(pruned[0].doc, 0u);
  EXPECT_EQ(pruned[1].doc, 1u);
  EXPECT_EQ(pruned[2].doc, 2u);
  EXPECT_EQ(pruned[0].score, pruned[2].score);
  ASSERT_EQ(exhaustive.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(pruned[i].doc, exhaustive[i].doc);
    EXPECT_EQ(pruned[i].score, exhaustive[i].score);
  }
}

TEST(InvertedIndexTest, EpochBumpsOnMutationsOnly) {
  InvertedIndex idx;
  uint64_t e0 = idx.epoch();
  idx.Add(1, Vec({{10, 1.0}}));
  EXPECT_GT(idx.epoch(), e0);
  uint64_t e1 = idx.epoch();
  idx.AddBatch({{2, Vec({{11, 1.0}})}, {3, Vec({{12, 1.0}})}});
  EXPECT_EQ(idx.epoch(), e1 + 1);  // One bump per batch.
  uint64_t e2 = idx.epoch();
  (void)idx.QueryVector(Vec({{10, 1.0}}), 5);
  (void)idx.DocsContainingAll({11});
  EXPECT_EQ(idx.epoch(), e2);  // Queries don't invalidate caches.
  idx.Remove(2);
  EXPECT_GT(idx.epoch(), e2);
}

TEST(InvertedIndexTest, TombstonesSweptByCompaction) {
  InvertedIndex idx;
  for (uint64_t d = 0; d < 300; ++d) {
    idx.Add(d, Vec({{7, 1.0}, {static_cast<text::TermId>(100 + d), 1.0}}));
  }
  // Light removal: tombstones linger until the lazy threshold.
  idx.Remove(0);
  EXPECT_EQ(idx.pending_tombstones(), 1u);
  idx.Compact();
  EXPECT_EQ(idx.pending_tombstones(), 0u);
  // Heavy removal: the threshold sweep kicks in on its own part-way
  // through, so far fewer than 99 tombstones can be pending at the end.
  for (uint64_t d = 1; d < 100; ++d) idx.Remove(d);
  EXPECT_LT(idx.pending_tombstones(), 64u);
  // Tombstoned docs are invisible to every query path.
  auto all = idx.DocsContainingAll({7});
  EXPECT_EQ(all.size(), 200u);
  EXPECT_EQ(all.front(), 100u);
  auto hits = idx.QueryVector(Vec({{7, 1.0}}), 300);
  EXPECT_EQ(hits.size(), 200u);
  for (const auto& h : hits) EXPECT_GE(h.doc, 100u);
}

TEST(InvertedIndexTest, AddBatchMatchesSequentialAdd) {
  std::vector<std::pair<uint64_t, text::TermVector>> docs;
  Pcg32 rng(7, 42);
  for (uint64_t d = 0; d < 120; ++d) {
    std::vector<std::pair<text::TermId, double>> entries;
    uint32_t n = 2 + rng.NextBounded(6);
    for (uint32_t t = 0; t < n; ++t) {
      entries.push_back({static_cast<text::TermId>(rng.NextBounded(60)),
                         0.5 + rng.NextDouble()});
    }
    docs.emplace_back(d, Vec(std::move(entries)));
  }
  InvertedIndex batched, sequential;
  batched.AddBatch(docs);
  for (const auto& [doc, vec] : docs) sequential.Add(doc, vec);
  EXPECT_EQ(batched.num_documents(), sequential.num_documents());
  EXPECT_EQ(batched.num_terms(), sequential.num_terms());
  for (int q = 0; q < 10; ++q) {
    text::TermVector query =
        Vec({{static_cast<text::TermId>(rng.NextBounded(60)), 1.0},
             {static_cast<text::TermId>(rng.NextBounded(60)), 0.7}});
    auto a = batched.QueryVector(query, 15);
    auto b = sequential.QueryVector(query, 15);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

// The oracle: on randomized corpora — including after removals, re-adds,
// and batched ingest — the pruned QueryVector must return exactly what the
// exhaustive reference returns: same docs, bitwise-same scores, same order.
TEST(InvertedIndexTest, PrunedMatchesExhaustiveRandomized) {
  Pcg32 rng(2003, 0xACE);
  for (size_t corpus_size : {50u, 300u, 1200u}) {
    InvertedIndex idx;
    std::vector<std::pair<uint64_t, text::TermVector>> batch;
    for (uint64_t d = 0; d < corpus_size; ++d) {
      std::vector<std::pair<text::TermId, double>> entries;
      uint32_t n = 3 + rng.NextBounded(8);
      for (uint32_t t = 0; t < n; ++t) {
        entries.push_back({static_cast<text::TermId>(rng.NextBounded(200)),
                           0.25 + 2.0 * rng.NextDouble()});
      }
      // Exercise both ingest paths.
      if (d % 2 == 0) {
        idx.Add(d, Vec(std::move(entries)));
      } else {
        batch.emplace_back(d, Vec(std::move(entries)));
      }
    }
    idx.AddBatch(batch);

    auto check = [&](const char* phase) {
      for (int q = 0; q < 25; ++q) {
        std::vector<std::pair<text::TermId, double>> entries;
        uint32_t n = 1 + rng.NextBounded(6);
        for (uint32_t t = 0; t < n; ++t) {
          entries.push_back({static_cast<text::TermId>(rng.NextBounded(220)),
                             0.1 + rng.NextDouble()});
        }
        text::TermVector query = Vec(std::move(entries));
        for (size_t k : {1u, 5u, 17u, 64u}) {
          auto pruned = idx.QueryVector(query, k);
          auto exhaustive = idx.QueryVectorExhaustive(query, k);
          ASSERT_EQ(pruned.size(), exhaustive.size())
              << phase << " corpus=" << corpus_size << " k=" << k;
          for (size_t i = 0; i < pruned.size(); ++i) {
            ASSERT_EQ(pruned[i].doc, exhaustive[i].doc)
                << phase << " corpus=" << corpus_size << " k=" << k
                << " rank=" << i;
            ASSERT_EQ(pruned[i].score, exhaustive[i].score)
                << phase << " corpus=" << corpus_size << " k=" << k
                << " rank=" << i;
          }
        }
      }
    };

    check("fresh");
    // Remove a fifth of the corpus (leaves tombstones below the sweep
    // threshold at the smaller sizes — the filtered path must stay exact).
    for (uint64_t d = 0; d < corpus_size; d += 5) idx.Remove(d);
    check("after-remove");
    // Re-add some removed docs with new content.
    for (uint64_t d = 0; d < corpus_size; d += 10) {
      idx.Add(d, Vec({{static_cast<text::TermId>(rng.NextBounded(200)),
                       1.0 + rng.NextDouble()}}));
    }
    check("after-readd");
  }
}

// Regression: k above the θ-refresh sample cap (4096) used to index past
// the sampled-scores scratch buffer. Needs >= k accumulators opened before
// the refresh, i.e. a first term whose posting list alone covers k docs.
TEST(InvertedIndexTest, PrunedMatchesExhaustiveWithKAboveThetaSample) {
  Pcg32 rng(2003, 0xBEE);
  constexpr size_t kDocs = 5000;
  InvertedIndex idx;
  std::vector<std::pair<uint64_t, text::TermVector>> batch;
  batch.reserve(kDocs);
  for (uint64_t d = 0; d < kDocs; ++d) {
    // Term 1 in every doc (the wide first list); a few narrower terms so
    // the query has a second, lower-impact term to trigger the refresh.
    std::vector<std::pair<text::TermId, double>> entries = {
        {1, 0.5 + rng.NextDouble()}};
    entries.push_back({static_cast<text::TermId>(2 + rng.NextBounded(50)),
                       0.5 + rng.NextDouble()});
    batch.emplace_back(d, Vec(std::move(entries)));
  }
  idx.AddBatch(batch);

  text::TermVector query = Vec({{1, 1.0}, {2, 0.5}, {3, 0.25}});
  for (size_t k : {size_t{4097}, size_t{4500}, size_t{6000}}) {
    auto pruned = idx.QueryVector(query, k);
    auto exhaustive = idx.QueryVectorExhaustive(query, k);
    ASSERT_EQ(pruned.size(), exhaustive.size()) << "k=" << k;
    for (size_t i = 0; i < pruned.size(); ++i) {
      ASSERT_EQ(pruned[i].doc, exhaustive[i].doc) << "k=" << k << " rank=" << i;
      ASSERT_EQ(pruned[i].score, exhaustive[i].score)
          << "k=" << k << " rank=" << i;
    }
  }
}

TEST(IndexHierarchyTest, LevelsIndependent) {
  IndexHierarchy h;
  h.Add(ObjectLevel::kPhysical, 1, Vec({{10, 1.0}}));
  h.Add(ObjectLevel::kLogical, 2, Vec({{20, 1.0}}));
  EXPECT_EQ(h.level(ObjectLevel::kPhysical).num_documents(), 1u);
  EXPECT_EQ(h.level(ObjectLevel::kLogical).num_documents(), 1u);
  EXPECT_EQ(h.level(ObjectLevel::kRaw).num_documents(), 0u);
  EXPECT_EQ(h.Query(ObjectLevel::kPhysical, Vec({{10, 1.0}}), 5).size(), 1u);
}

TEST(IndexHierarchyTest, RoutingTable) {
  IndexHierarchy h;
  h.Add(ObjectLevel::kPhysical, 1, Vec({{10, 1.0}}));
  h.Add(ObjectLevel::kLogical, 2, Vec({{10, 1.0}, {20, 1.0}}));
  // Term 10 lives at physical(1) and logical(2) levels.
  EXPECT_EQ(h.LevelsContaining(10), (1u << 1) | (1u << 2));
  EXPECT_EQ(h.LevelsContaining(20), (1u << 2));
  EXPECT_EQ(h.LevelsContaining(999), 0u);
  h.Remove(ObjectLevel::kLogical, 2);
  EXPECT_EQ(h.LevelsContaining(10), (1u << 1));
}

TEST(IndexHierarchyTest, ObjectLevelNames) {
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kRaw), "raw");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kPhysical), "physical");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kLogical), "logical");
  EXPECT_EQ(ObjectLevelName(ObjectLevel::kRegion), "region");
}

TEST(IndexHierarchyTest, MemoryAggregates) {
  IndexHierarchy h;
  uint64_t base = h.MemoryBytes();
  h.Add(ObjectLevel::kRaw, 1, Vec({{1, 1.0}}));
  h.Add(ObjectLevel::kRegion, 2, Vec({{2, 1.0}}));
  EXPECT_GT(h.MemoryBytes(), base);
}

}  // namespace
}  // namespace cbfww::index
