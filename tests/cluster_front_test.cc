#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/spsc_queue.h"
#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "trace/workload.h"

namespace cbfww::cluster {
namespace {

corpus::CorpusOptions TestCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 40;
  opts.topic.num_topics = 4;
  opts.seed = 77;
  return opts;
}

ClusterOptions TestClusterOptions(uint32_t shards) {
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.warehouse.memory_bytes = 4ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 256ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  return opts;
}

std::vector<trace::TraceEvent> TestTrace() {
  corpus::WebCorpus corpus(TestCorpusOptions());
  trace::WorkloadOptions wopts;
  wopts.horizon = 8 * kHour;
  wopts.sessions_per_hour = 60;
  wopts.modifications_per_hour = 20;
  wopts.seed = 5;
  trace::WorkloadGenerator generator(&corpus, nullptr, wopts);
  return generator.Generate();
}

bool CountersEqual(const core::Warehouse::Counters& a,
                   const core::Warehouse::Counters& b) {
  return a.requests == b.requests && a.origin_fetches == b.origin_fetches &&
         a.prefetches == b.prefetches &&
         a.path_prefetches == b.path_prefetches &&
         a.consistency_polls == b.consistency_polls &&
         a.consistency_refreshes == b.consistency_refreshes &&
         a.rebalances == b.rebalances &&
         a.admission_rejections == b.admission_rejections &&
         a.background_time == b.background_time;
}

TEST(SpscQueueTest, FifoAndCapacity) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));  // Empty.
  EXPECT_TRUE(q.Empty());
}

TEST(ShardRoutingTest, StableAndInRange) {
  for (uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
    for (corpus::PageId page = 0; page < 500; ++page) {
      uint32_t s = trace::ShardOfPage(page, shards);
      EXPECT_LT(s, shards);
      // Stability: the same page always routes to the same shard.
      EXPECT_EQ(s, trace::ShardOfPage(page, shards));
    }
  }
}

TEST(ShardRoutingTest, SpreadsContiguousPagesAcrossShards) {
  // Pages of one site are id-contiguous; hashing must not send a whole
  // run of ids to one shard.
  std::vector<uint64_t> hits(4, 0);
  for (corpus::PageId page = 0; page < 400; ++page) {
    ++hits[trace::ShardOfPage(page, 4)];
  }
  for (uint64_t h : hits) {
    EXPECT_GT(h, 400 / 8u);  // No shard under half its fair share.
  }
}

TEST(PartitionTraceTest, RequestsPartitionModificationsBroadcast) {
  std::vector<trace::TraceEvent> events = TestTrace();
  uint64_t requests = 0;
  uint64_t modifications = 0;
  for (const auto& e : events) {
    if (e.type == trace::TraceEventType::kRequest) {
      ++requests;
    } else {
      ++modifications;
    }
  }
  auto parts = trace::PartitionTrace(events, 3);
  ASSERT_EQ(parts.size(), 3u);
  uint64_t part_requests = 0;
  for (const auto& part : parts) {
    uint64_t part_mods = 0;
    SimTime last = 0;
    for (const auto& e : part) {
      EXPECT_GE(e.time, last);  // Time order preserved per shard.
      last = e.time;
      if (e.type == trace::TraceEventType::kRequest) {
        EXPECT_EQ(trace::ShardOfPage(e.page, 3),
                  static_cast<uint32_t>(&part - parts.data()));
        ++part_requests;
      } else {
        ++part_mods;
      }
    }
    EXPECT_EQ(part_mods, modifications);
  }
  EXPECT_EQ(part_requests, requests);
}

class WarehouseClusterTest : public ::testing::Test {
 protected:
  static ClusterReport RunOnce(uint32_t shards,
                               const std::vector<trace::TraceEvent>& events) {
    WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                             TestClusterOptions(shards));
    cluster.Replay(events);
    return cluster.Report();
  }
};

TEST_F(WarehouseClusterTest, MergedReportMatchesShardSums) {
  std::vector<trace::TraceEvent> events = TestTrace();
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(4));
  cluster.Replay(events);
  ClusterReport report = cluster.Report();

  uint64_t requests = 0;
  for (const auto& e : events) {
    if (e.type == trace::TraceEventType::kRequest) ++requests;
  }
  EXPECT_EQ(report.counters.requests, requests);
  EXPECT_EQ(report.num_shards, 4u);

  core::Warehouse::Counters summed;
  uint64_t latency_count = 0;
  uint64_t tier0_objects = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    summed.MergeFrom(cluster.shard(s).counters());
    latency_count += cluster.shard(s).analyzer().latency_stats().count();
    tier0_objects += cluster.shard(s).hierarchy().resident_count(0);
  }
  EXPECT_TRUE(CountersEqual(report.counters, summed));
  EXPECT_EQ(static_cast<uint64_t>(report.latency.count()), latency_count);
  EXPECT_EQ(static_cast<uint64_t>(report.latency_percentiles.count()),
            latency_count);
  ASSERT_GE(report.tiers.size(), 1u);
  EXPECT_EQ(report.tiers[0].resident_objects, tier0_objects);
  EXPECT_EQ(std::accumulate(report.shard_requests.begin(),
                            report.shard_requests.end(), uint64_t{0}),
            requests);
  // Every shard of this workload saw traffic.
  for (uint64_t r : report.shard_requests) EXPECT_GT(r, 0u);
}

TEST_F(WarehouseClusterTest, DeterministicReplayAtFixedShardCount) {
  std::vector<trace::TraceEvent> events = TestTrace();
  ClusterReport a = RunOnce(3, events);
  ClusterReport b = RunOnce(3, events);
  EXPECT_TRUE(CountersEqual(a.counters, b.counters));
  EXPECT_EQ(a.distinct_pages, b.distinct_pages);
  EXPECT_EQ(a.shard_requests, b.shard_requests);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  ASSERT_EQ(a.tiers.size(), b.tiers.size());
  for (size_t t = 0; t < a.tiers.size(); ++t) {
    EXPECT_EQ(a.tiers[t].used_bytes, b.tiers[t].used_bytes);
    EXPECT_EQ(a.tiers[t].resident_objects, b.tiers[t].resident_objects);
  }
}

TEST_F(WarehouseClusterTest, AggregateTotalsInvariantAcrossShardCounts) {
  std::vector<trace::TraceEvent> events = TestTrace();
  ClusterReport one = RunOnce(1, events);
  ClusterReport two = RunOnce(2, events);
  ClusterReport four = RunOnce(4, events);
  // Requests partition by page: no shard count loses or duplicates any.
  EXPECT_EQ(one.counters.requests, two.counters.requests);
  EXPECT_EQ(one.counters.requests, four.counters.requests);
  EXPECT_EQ(one.distinct_pages, two.distinct_pages);
  EXPECT_EQ(one.distinct_pages, four.distinct_pages);
  EXPECT_EQ(static_cast<uint64_t>(one.latency.count()),
            static_cast<uint64_t>(four.latency.count()));
}

TEST_F(WarehouseClusterTest, RouterAgreesWithPartitioner) {
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(4));
  for (corpus::PageId page = 0; page < 160; ++page) {
    EXPECT_EQ(cluster.ShardOf(page), trace::ShardOfPage(page, 4));
  }
}

TEST_F(WarehouseClusterTest, TierFailureOnOneShardLeavesOthersServing) {
  std::vector<trace::TraceEvent> events = TestTrace();
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(4));
  cluster.Replay(events);
  ClusterReport before = cluster.Report();

  uint64_t lost = cluster.SimulateTierFailure(
      /*shard=*/0, core::StorageManager::kMemoryTier);
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(cluster.shard(0).hierarchy().resident_count(0), 0u);
  // Other shards keep their memory tier.
  uint64_t others = 0;
  for (uint32_t s = 1; s < 4; ++s) {
    others += cluster.shard(s).hierarchy().resident_count(0);
  }
  EXPECT_GT(others, 0u);

  // The whole cluster — including the degraded shard — still serves.
  trace::TraceEvent probe;
  probe.type = trace::TraceEventType::kRequest;
  probe.time = 9 * kHour;
  probe.user = 424242;
  probe.session = 1 << 20;
  uint32_t shards_probed = 0;
  std::vector<bool> probed(4, false);
  for (corpus::PageId page = 0; page < 160 && shards_probed < 4; ++page) {
    if (probed[cluster.ShardOf(page)]) continue;
    probed[cluster.ShardOf(page)] = true;
    ++shards_probed;
    probe.page = page;
    cluster.Submit(probe);
    probe.time += kSecond;
  }
  cluster.Drain();
  ClusterReport after = cluster.Report();
  EXPECT_EQ(after.counters.requests, before.counters.requests + 4);
}

// Admin suspend/resume racing bounded admission. One thread (the single
// producer) pumps TryDispatch while another toggles SuspendShard /
// ResumeShard as fast as it can. The accounting invariant — every request
// is either processed or shed, none lost, none double-counted — must hold
// through arbitrary interleavings, and the whole dance must be data-race
// free under TSan (CBFWW_SANITIZE=thread).
TEST_F(WarehouseClusterTest, SuspendResumeRacesTryDispatch) {
  constexpr uint32_t kShards = 4;
  ClusterOptions opts = TestClusterOptions(kShards);
  opts.queue_capacity = 8;       // Small ring so suspension fills it fast.
  opts.dispatch_max_pauses = 2;  // Shed quickly instead of spinning.
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt, opts);

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    uint32_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint32_t s = i++ % kShards;
      cluster.SuspendShard(s);
      std::this_thread::yield();
      cluster.ResumeShard(s);
    }
  });

  // Requests only (modifications broadcast and shed per-shard, which
  // makes the books messier than this test needs).
  uint64_t dispatched = 0;
  uint64_t shed = 0;
  trace::TraceEvent event;
  event.type = trace::TraceEventType::kRequest;
  event.user = 7;
  for (int round = 0; round < 50; ++round) {
    for (corpus::PageId page = 0; page < 160; ++page) {
      event.page = page;
      event.session = round;
      event.time = (static_cast<SimTime>(round) * 160 + page + 1) * kSecond;
      ++dispatched;
      Status status = cluster.TryDispatch(event);
      if (!status.ok()) {
        ASSERT_EQ(status.code(), StatusCode::kResourceExhausted)
            << status.ToString();
        ++shed;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  toggler.join();
  for (uint32_t s = 0; s < kShards; ++s) cluster.ResumeShard(s);
  cluster.Drain();

  ClusterReport report = cluster.Report();
  EXPECT_EQ(report.TotalShed(), shed);
  EXPECT_EQ(report.counters.requests + shed, dispatched);
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_FALSE(cluster.IsSuspended(s)) << "shard " << s;
    EXPECT_EQ(report.shard_queue_depth[s], 0u) << "shard " << s;
  }
}

// Multiple producer lanes: one thread per lane pumps TryDispatch
// concurrently (the N-IO-thread server's traffic shape). Each lane is its
// own SPSC ring, so no producer-side locking is involved anywhere — TSan
// (CBFWW_SANITIZE=thread) proves the lanes really are independent, and
// the books must balance exactly across arbitrary interleavings.
TEST_F(WarehouseClusterTest, ProducerLanesCarryConcurrentDispatch) {
  constexpr uint32_t kShards = 2;
  constexpr uint32_t kLanes = 4;
  ClusterOptions opts = TestClusterOptions(kShards);
  opts.producer_lanes = kLanes;
  opts.queue_capacity = 64;
  opts.dispatch_max_pauses = 2;
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt, opts);
  ASSERT_EQ(cluster.num_lanes(), kLanes);
  EXPECT_GT(cluster.lane_capacity(), 0u);

  std::atomic<uint64_t> dispatched{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> producers;
  for (uint32_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&, lane] {
      trace::TraceEvent event;
      event.type = trace::TraceEventType::kRequest;
      event.user = lane + 1;
      for (int round = 0; round < 40; ++round) {
        for (corpus::PageId page = 0; page < 160; ++page) {
          event.page = page;
          event.session = round;
          // Each lane advances its own clock; shard workers only require
          // per-lane monotone times.
          event.time =
              (static_cast<SimTime>(round) * 160 + page + 1) * kSecond;
          dispatched.fetch_add(1, std::memory_order_relaxed);
          Status status = cluster.TryDispatch(event, lane);
          if (!status.ok()) {
            ASSERT_EQ(status.code(), StatusCode::kResourceExhausted)
                << status.ToString();
            shed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  cluster.Drain();

  ClusterReport report = cluster.Report();
  EXPECT_EQ(report.TotalShed(), shed.load());
  EXPECT_EQ(report.counters.requests + shed.load(), dispatched.load());
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(report.shard_queue_depth[s], 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace cbfww::cluster
