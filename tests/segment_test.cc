// Segment-store harness (immutable cdb-style tiers): writer/reader
// round trips, a randomized lookup ≡ in-memory-oracle property test, the
// mmap edge cases (empty segment, single record, >64KiB bodies,
// concurrent readers during migration, unlink mid-serve), SegmentStore
// tier migration wired into StorageHierarchy, the segment-backed
// BodyStore (byte-parity with heap mode, zero heap bytes held), and
// segment-format checkpoints (round trip, crash-phase matrix, cluster
// rotation). The corruption battery lives in segment_fuzz_test; the
// seeded crash-matrix soak in segment_soak_test (label: slow).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "segment/segment_reader.h"
#include "segment/segment_store.h"
#include "segment/segment_writer.h"
#include "server/body_store.h"
#include "storage/hierarchy.h"
#include "trace/workload.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

std::string UniqueDir(const std::string& tag) {
  std::string dir = testing::TempDir() + "/seg_" + std::to_string(getpid()) +
                    "_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Builds a segment at `path` from (key, value) pairs.
void BuildSegment(const std::string& path,
                  const std::vector<std::pair<uint64_t, std::string>>& kvs) {
  segment::SegmentWriter w;
  ASSERT_TRUE(w.Create(path).ok());
  for (const auto& [k, v] : kvs) {
    ASSERT_TRUE(w.Add(k, v).ok()) << k;
  }
  ASSERT_TRUE(w.Finish().ok());
}

// ---------------------------------------------------------------------------
// Writer/reader round trips + edge cases
// ---------------------------------------------------------------------------

TEST(SegmentFileTest, RoundtripAndAbsentKeys) {
  std::string dir = UniqueDir("roundtrip");
  BuildSegment(dir + "/a.seg", {{1, "alpha"}, {2, ""}, {7, "gamma-gamma"}});
  auto r = segment::SegmentReader::Open(dir + "/a.seg");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->record_count(), 3u);
  EXPECT_TRUE((*r)->ValidateAll().ok());
  EXPECT_EQ(*(*r)->Lookup(1), "alpha");
  EXPECT_EQ(*(*r)->Lookup(2), "");  // Empty values are legal.
  EXPECT_EQ(*(*r)->Lookup(7), "gamma-gamma");
  auto missing = (*r)->Lookup(3);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SegmentFileTest, EmptySegment) {
  std::string dir = UniqueDir("empty");
  BuildSegment(dir + "/e.seg", {});
  auto r = segment::SegmentReader::Open(dir + "/e.seg");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->record_count(), 0u);
  EXPECT_TRUE((*r)->ValidateAll().ok());
  EXPECT_EQ((*r)->Lookup(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*r)->Lookup(42).status().code(), StatusCode::kNotFound);
}

TEST(SegmentFileTest, SingleRecordSegment) {
  std::string dir = UniqueDir("single");
  BuildSegment(dir + "/s.seg", {{99, "only"}});
  auto r = segment::SegmentReader::Open(dir + "/s.seg");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*(*r)->Lookup(99), "only");
  EXPECT_EQ((*r)->Lookup(98).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE((*r)->ValidateAll().ok());
}

TEST(SegmentFileTest, LargeValuePastChunkThreshold) {
  // >64KiB: the size class the server streams with chunked framing.
  std::string big(200 * 1024, 'x');
  for (size_t i = 0; i < big.size(); i += 97) big[i] = 'A' + (i / 97) % 26;
  std::string dir = UniqueDir("large");
  BuildSegment(dir + "/l.seg", {{5, big}, {6, "tiny"}});
  auto r = segment::SegmentReader::Open(dir + "/l.seg");
  ASSERT_TRUE(r.ok()) << r.status();
  auto v = (*r)->Lookup(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big);
  EXPECT_EQ(*(*r)->Lookup(6), "tiny");
}

TEST(SegmentFileTest, DuplicateKeyRejected) {
  segment::SegmentWriter w;
  std::string dir = UniqueDir("dup");
  ASSERT_TRUE(w.Create(dir + "/d.seg").ok());
  ASSERT_TRUE(w.Add(1, "first").ok());
  Status dup = w.Add(1, "second");
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  w.Abandon();
}

TEST(SegmentFileTest, AbandonLeavesNoFiles) {
  std::string dir = UniqueDir("abandon");
  {
    segment::SegmentWriter w;
    ASSERT_TRUE(w.Create(dir + "/x.seg").ok());
    ASSERT_TRUE(w.Add(1, "doomed").ok());
    // Destructor abandons an unfinished writer.
  }
  EXPECT_FALSE(fs::exists(dir + "/x.seg"));
  EXPECT_FALSE(fs::exists(dir + "/x.seg.tmp"));
}

TEST(SegmentFileTest, ForEachVisitsFileOrder) {
  std::string dir = UniqueDir("foreach");
  BuildSegment(dir + "/f.seg", {{10, "a"}, {3, "b"}, {77, "c"}});
  auto r = segment::SegmentReader::Open(dir + "/f.seg");
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> keys;
  ASSERT_TRUE((*r)
                  ->ForEach([&](uint64_t k, std::string_view v) {
                    keys.push_back(k);
                    EXPECT_FALSE(v.empty());
                  })
                  .ok());
  EXPECT_EQ(keys, (std::vector<uint64_t>{10, 3, 77}));
}

// ---------------------------------------------------------------------------
// Randomized property: lookup ≡ in-memory oracle
// ---------------------------------------------------------------------------

TEST(SegmentPropertyTest, LookupMatchesOracleOverRandomCorpora) {
  std::string dir = UniqueDir("property");
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    Pcg32 rng(seed, /*stream=*/9);
    std::unordered_map<uint64_t, std::string> oracle;
    const uint32_t n = 50 + rng.NextBounded(400);
    std::vector<std::pair<uint64_t, std::string>> kvs;
    while (oracle.size() < n) {
      // Keys across the whole 64-bit space (including adversarial
      // extremes), values of wildly varying size including empty.
      uint64_t key;
      switch (rng.NextBounded(8)) {
        case 0:
          key = rng.NextBounded(4);  // Dense small ids (likely collisions).
          break;
        case 1:
          key = ~0ull - rng.NextBounded(4);
          break;
        default:
          key = (static_cast<uint64_t>(rng.Next()) << 32) | rng.Next();
      }
      if (oracle.count(key)) continue;
      std::string value(rng.NextBounded(2000), '\0');
      for (char& c : value) c = static_cast<char>(rng.NextBounded(256));
      kvs.emplace_back(key, value);
      oracle.emplace(key, std::move(value));
    }
    const std::string path =
        dir + "/p" + std::to_string(seed) + ".seg";
    BuildSegment(path, kvs);
    auto r = segment::SegmentReader::Open(path);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE((*r)->ValidateAll().ok());
    EXPECT_EQ((*r)->record_count(), oracle.size());
    for (const auto& [k, v] : oracle) {
      auto got = (*r)->Lookup(k);
      ASSERT_TRUE(got.ok()) << "seed " << seed << " key " << k;
      EXPECT_EQ(*got, v) << "seed " << seed << " key " << k;
    }
    // Probes for keys the segment does not hold.
    for (int i = 0; i < 500; ++i) {
      uint64_t k = (static_cast<uint64_t>(rng.Next()) << 32) | rng.Next();
      if (oracle.count(k)) continue;
      EXPECT_EQ((*r)->Lookup(k).status().code(), StatusCode::kNotFound);
    }
  }
}

// ---------------------------------------------------------------------------
// mmap lifetime: rename and unlink never break live views
// ---------------------------------------------------------------------------

TEST(SegmentFileTest, ViewSurvivesRenameAndUnlinkMidServe) {
  std::string dir = UniqueDir("lifetime");
  std::string big(128 * 1024, 'z');
  BuildSegment(dir + "/m.seg", {{1, big}, {2, "small"}});
  auto r = segment::SegmentReader::Open(dir + "/m.seg");
  ASSERT_TRUE(r.ok());
  auto view = (*r)->Lookup(1);
  ASSERT_TRUE(view.ok());

  // Tier migration is a rename: the mapping follows the inode.
  fs::rename(dir + "/m.seg", dir + "/m.migrated.seg");
  EXPECT_EQ(*view, big);
  EXPECT_EQ(*(*r)->Lookup(2), "small");

  // Unlink mid-serve: the inode lives until the last mapping goes.
  fs::remove(dir + "/m.migrated.seg");
  EXPECT_EQ(*view, big);
  EXPECT_EQ(*(*r)->Lookup(2), "small");
  EXPECT_TRUE((*r)->ValidateAll().ok());
}

// ---------------------------------------------------------------------------
// SegmentStore: sealing, shadowing, migration, quarantine, reopen
// ---------------------------------------------------------------------------

segment::SegmentStoreOptions StoreOpts(const std::string& dir,
                                       storage::StorageHierarchy* h) {
  segment::SegmentStoreOptions o;
  o.dir = dir;
  o.hierarchy = h;
  return o;
}

std::vector<storage::DeviceModel> ThreeTiers() {
  return {storage::DeviceModel::Memory(0), storage::DeviceModel::Disk(0),
          storage::DeviceModel::Tertiary(0)};
}

TEST(SegmentStoreTest, SealLookupAndNewestWins) {
  std::string dir = UniqueDir("store_seal");
  auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_TRUE(store.ok()) << store.status();
  auto s1 = (*store)->Seal({{1, "old-one"}, {2, "two"}});
  ASSERT_TRUE(s1.ok()) << s1.status();
  auto s2 = (*store)->Seal({{1, "new-one"}, {3, "three"}});
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(*s2, *s1);

  auto hit = (*store)->Lookup(1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->value, "new-one");  // Newer segment shadows older.
  EXPECT_EQ(hit->seq, *s2);
  EXPECT_EQ((*store)->Lookup(2)->value, "two");
  EXPECT_EQ((*store)->Lookup(3)->value, "three");
  EXPECT_EQ((*store)->Lookup(9).status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->segment_count(), 2u);
  EXPECT_EQ((*store)->record_count(), 4u);
}

TEST(SegmentStoreTest, ReopenReattachesAndContinuesSeqs) {
  std::string dir = UniqueDir("store_reopen");
  segment::SegmentSeq first_seq = 0;
  {
    auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
    ASSERT_TRUE(store.ok());
    first_seq = *(*store)->Seal({{1, "persisted"}});
  }
  auto again = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->segment_count(), 1u);
  EXPECT_EQ((*again)->Lookup(1)->value, "persisted");
  auto next = (*again)->Seal({{2, "later"}});
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, first_seq);  // Seqs never reuse across restarts.
}

TEST(SegmentStoreTest, MigrationMovesFileAndHierarchyPlacement) {
  std::string dir = UniqueDir("store_migrate");
  storage::StorageHierarchy h(ThreeTiers());
  auto store = segment::SegmentStore::Open(StoreOpts(dir, &h));
  ASSERT_TRUE(store.ok());
  auto seq = (*store)->Seal({{10, "a"}, {11, "bb"}});
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(h.IsResident(10, 1));
  EXPECT_TRUE(h.IsResident(11, 1));

  ASSERT_TRUE((*store)->MigrateSegment(*seq, 2).ok());
  EXPECT_TRUE(h.IsResident(10, 2));
  EXPECT_FALSE(h.IsResident(10, 1));
  EXPECT_TRUE(h.CheckInvariants().ok());
  auto infos = (*store)->ListSegments();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].tier, 2);
  EXPECT_TRUE(fs::exists(infos[0].path));
  EXPECT_NE(infos[0].path.find("tier-2"), std::string::npos);
  // Values still served after the move.
  EXPECT_EQ((*store)->Lookup(10)->value, "a");
  EXPECT_EQ((*store)->Lookup(10)->tier, 2);

  // A reopened store finds it on the tertiary tier.
  store->reset();
  storage::StorageHierarchy h2(ThreeTiers());
  auto again = segment::SegmentStore::Open(StoreOpts(dir, &h2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ListSegments()[0].tier, 2);
  EXPECT_TRUE(h2.IsResident(11, 2));
}

TEST(SegmentStoreTest, MeasuredReadCostFeedsHierarchy) {
  std::string dir = UniqueDir("store_measured");
  storage::StorageHierarchy h(ThreeTiers());
  auto store = segment::SegmentStore::Open(StoreOpts(dir, &h));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Seal({{1, "x"}}).ok());
  EXPECT_EQ(h.measured_read_count(1), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Lookup(1).ok());
  }
  EXPECT_EQ(h.measured_read_count(1), 5u);
}

TEST(SegmentStoreTest, DropEvictsAndPinnedReaderKeepsServing) {
  std::string dir = UniqueDir("store_drop");
  storage::StorageHierarchy h(ThreeTiers());
  auto store = segment::SegmentStore::Open(StoreOpts(dir, &h));
  ASSERT_TRUE(store.ok());
  auto seq = (*store)->Seal({{5, "pinned-value"}});
  ASSERT_TRUE(seq.ok());
  auto pinned = (*store)->Lookup(5);
  ASSERT_TRUE(pinned.ok());

  ASSERT_TRUE((*store)->DropSegment(*seq).ok());
  EXPECT_EQ((*store)->segment_count(), 0u);
  EXPECT_FALSE(h.IsResident(5, 1));
  EXPECT_EQ((*store)->Lookup(5).status().code(), StatusCode::kNotFound);
  // The in-flight serve still reads good bytes from the unlinked inode.
  EXPECT_EQ(pinned->value, "pinned-value");
}

TEST(SegmentStoreTest, CorruptSegmentQuarantinedAtOpen) {
  std::string dir = UniqueDir("store_corrupt");
  std::string path;
  {
    auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Seal({{1, "will-be-damaged"}}).ok());
    path = (*store)->ListSegments()[0].path;
  }
  {
    // Flip one payload byte.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(70);
    char c = 0;
    f.read(&c, 1);
    f.seekp(70);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  auto damaged = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".corrupt"));  // Evidence retained.

  // A retried open comes up clean (empty store).
  auto retried = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ((*retried)->segment_count(), 0u);
}

TEST(SegmentStoreTest, StrayTmpFromCrashedSealIsCleaned) {
  std::string dir = UniqueDir("store_tmp");
  {
    auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Seal({{1, "kept"}}).ok());
  }
  // Simulate a seal that died mid-write.
  std::ofstream(dir + "/tier-1/seg-000000000099.seg.tmp") << "partial";
  auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->segment_count(), 1u);
  EXPECT_FALSE(fs::exists(dir + "/tier-1/seg-000000000099.seg.tmp"));
}

TEST(SegmentStoreTest, ConcurrentReadersDuringMigration) {
  std::string dir = UniqueDir("store_concurrent");
  auto store = segment::SegmentStore::Open(StoreOpts(dir, nullptr));
  ASSERT_TRUE(store.ok());
  std::vector<std::pair<uint64_t, std::string>> kvs;
  for (uint64_t k = 0; k < 64; ++k) {
    kvs.emplace_back(k, std::string(1024 + k * 17, 'a' + k % 26));
  }
  auto seq = (*store)->Seal(kvs);
  ASSERT_TRUE(seq.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Pcg32 rng(7, t);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng.NextBounded(64);
        auto hit = (*store)->Lookup(k);
        if (!hit.ok() || hit->value != kvs[k].second) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Bounce the segment between tiers until the readers have provably
  // raced the renames (at least 50 bounces and 2000 lookups).
  for (int i = 0; i < 50 || reads.load(std::memory_order_relaxed) < 2000;
       ++i) {
    ASSERT_TRUE((*store)->MigrateSegment(*seq, 2).ok());
    ASSERT_TRUE((*store)->MigrateSegment(*seq, 1).ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Segment-backed BodyStore
// ---------------------------------------------------------------------------

corpus::CorpusOptions SmallCorpus() {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 20;
  copts.seed = 5;
  return copts;
}

TEST(SegmentBodyStoreTest, ByteParityWithHeapModeAndZeroHeapBytes) {
  corpus::WebCorpus corpus(SmallCorpus());
  std::string dir = UniqueDir("bodies");
  server::BodyStoreOptions opts;
  opts.segment_dir = dir;
  server::BodyStore seg_store(corpus, opts);
  ASSERT_TRUE(seg_store.segment_backed()) << seg_store.segment_status();
  server::BodyStore heap_store(corpus);
  ASSERT_FALSE(heap_store.segment_backed());

  ASSERT_EQ(seg_store.num_objects(), heap_store.num_objects());
  for (corpus::RawId id = 0; id < corpus.num_raw_objects(); ++id) {
    EXPECT_EQ(seg_store.Body(id), heap_store.Body(id)) << "object " << id;
    EXPECT_EQ(seg_store.RenderedSize(id), heap_store.RenderedSize(id));
  }
  // The fix under test: segment mode holds zero body bytes on the heap.
  EXPECT_EQ(seg_store.rendered_bytes(), 0u);
  EXPECT_EQ(seg_store.rendered_objects(), 0u);
  EXPECT_GT(heap_store.rendered_bytes(), 0u);
  // Out-of-range stays an empty view in both modes.
  EXPECT_TRUE(seg_store.Body(corpus.num_raw_objects() + 7).empty());
}

TEST(SegmentBodyStoreTest, WarmRestartAdoptsExistingSegment) {
  corpus::WebCorpus corpus(SmallCorpus());
  std::string dir = UniqueDir("bodies_warm");
  server::BodyStoreOptions opts;
  opts.segment_dir = dir;
  std::string first_body;
  {
    server::BodyStore store(corpus, opts);
    ASSERT_TRUE(store.segment_backed());
    first_body = std::string(store.Body(0));
  }
  auto mtime_before = fs::last_write_time(dir + "/bodies.seg");
  server::BodyStore again(corpus, opts);
  ASSERT_TRUE(again.segment_backed());
  EXPECT_EQ(again.Body(0), first_body);
  // Adopted, not rebuilt.
  EXPECT_EQ(fs::last_write_time(dir + "/bodies.seg"), mtime_before);
}

TEST(SegmentBodyStoreTest, UnwritableDirFallsBackToHeap) {
  corpus::WebCorpus corpus(SmallCorpus());
  server::BodyStoreOptions opts;
  opts.segment_dir = "/proc/definitely/not/writable";
  server::BodyStore store(corpus, opts);
  EXPECT_FALSE(store.segment_backed());
  EXPECT_FALSE(store.segment_status().ok());
  // Heap fallback still serves.
  EXPECT_FALSE(store.Body(0).empty());
}

// ---------------------------------------------------------------------------
// Segment-format checkpoints (a checkpoint IS a segment)
// ---------------------------------------------------------------------------

struct Rig {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<core::Warehouse> wh;
};

Rig MakeRig(const std::string& dir, bool segment_checkpoints = true) {
  Rig rig;
  rig.corpus = std::make_unique<corpus::WebCorpus>(SmallCorpus());
  rig.origin = std::make_unique<net::OriginServer>(rig.corpus.get(),
                                                   net::NetworkModel());
  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  wopts.durability.dir = dir;
  wopts.durability.segment_checkpoints = segment_checkpoints;
  rig.wh = std::make_unique<core::Warehouse>(rig.corpus.get(),
                                             rig.origin.get(), nullptr,
                                             wopts);
  return rig;
}

std::vector<trace::TraceEvent> SmallWorkload() {
  trace::WorkloadOptions w;
  w.horizon = kHour;
  w.sessions_per_hour = 30;
  w.modifications_per_hour = 10;
  w.seed = 3;
  corpus::WebCorpus gen_corpus(SmallCorpus());
  trace::WorkloadGenerator gen(&gen_corpus, nullptr, w);
  return gen.Generate();
}

std::string DurableReport(core::Warehouse& wh) {
  std::ostringstream os;
  wh.PrintDurableReport(os);
  return os.str();
}

TEST(SegmentCheckpointTest, RoundTripRecoversByteIdentical) {
  std::string dir = UniqueDir("seg_ckpt");
  std::string state;
  uint64_t events = 0;
  {
    Rig rig = MakeRig(dir);
    ASSERT_TRUE(rig.wh->OpenDurability().ok());
    for (const auto& e : SmallWorkload()) rig.wh->ProcessEvent(e);
    ASSERT_TRUE(rig.wh->CheckpointNow().ok());
    events = rig.wh->events_processed();
    state = DurableReport(*rig.wh);
    // The rotation produced a segment checkpoint, not a flat one.
    EXPECT_TRUE(fs::exists(dir + "/warehouse.seg.2"));
    EXPECT_FALSE(fs::exists(dir + "/warehouse.ckpt.2"));
  }
  Rig rec = MakeRig(dir);
  auto report = rec.wh->OpenDurability();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recovered);
  EXPECT_TRUE(report->checkpoint_from_segment);
  EXPECT_EQ(report->events_processed, events);
  EXPECT_EQ(DurableReport(*rec.wh), state);
}

TEST(SegmentCheckpointTest, FormatFlipEitherDirectionRecovers) {
  // Flat-format run, then reopen with segment checkpoints on (and back).
  std::string dir = UniqueDir("seg_flip");
  std::string state;
  {
    Rig rig = MakeRig(dir, /*segment_checkpoints=*/false);
    ASSERT_TRUE(rig.wh->OpenDurability().ok());
    for (const auto& e : SmallWorkload()) rig.wh->ProcessEvent(e);
    state = DurableReport(*rig.wh);
  }
  {
    Rig rig = MakeRig(dir, /*segment_checkpoints=*/true);
    auto report = rig.wh->OpenDurability();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->checkpoint_from_segment);  // Old flat file.
    EXPECT_EQ(DurableReport(*rig.wh), state);
    ASSERT_TRUE(rig.wh->CheckpointNow().ok());  // Rotates to segment.
  }
  {
    Rig rig = MakeRig(dir, /*segment_checkpoints=*/false);
    auto report = rig.wh->OpenDurability();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->checkpoint_from_segment);  // Newest wins.
    EXPECT_EQ(DurableReport(*rig.wh), state);
  }
}

TEST(SegmentCheckpointTest, CrashAtEveryPhaseRecoversWithZeroAckedLoss) {
  using core::CheckpointPhase;
  for (CheckpointPhase phase :
       {CheckpointPhase::kBeforeCheckpointWrite,
        CheckpointPhase::kAfterCheckpointWrite,
        CheckpointPhase::kAfterWalCreate,
        CheckpointPhase::kAfterOldCheckpointRemoved}) {
    std::string tag = "phase_" + std::to_string(static_cast<int>(phase));
    std::string dir = UniqueDir("seg_crash_" + tag);
    std::string state;
    uint64_t events = 0;
    {
      Rig rig = MakeRig(dir);
      ASSERT_TRUE(rig.wh->OpenDurability().ok());
      for (const auto& e : SmallWorkload()) rig.wh->ProcessEvent(e);
      events = rig.wh->events_processed();
      state = DurableReport(*rig.wh);
      rig.wh->mutable_journal()->set_checkpoint_crash_hook_for_test(
          [phase](CheckpointPhase p) { return p == phase; });
      Status died = rig.wh->CheckpointNow();
      EXPECT_FALSE(died.ok()) << tag;
      // The broken journal refuses further work (log-before-ack holds).
      EXPECT_FALSE(rig.wh->CheckpointNow().ok()) << tag;
    }
    Rig rec = MakeRig(dir);
    auto report = rec.wh->OpenDurability();
    ASSERT_TRUE(report.ok()) << tag << ": " << report.status().ToString();
    // Whichever side of the rotation survived, the recovered state is the
    // exact pre-crash state: the checkpoint covers it, or the old
    // checkpoint + full WAL replays to it.
    EXPECT_EQ(rec.wh->events_processed(), events) << tag;
    EXPECT_EQ(DurableReport(*rec.wh), state) << tag;
  }
}

TEST(SegmentCheckpointTest, ClusterCheckpointAllShardsAndRecover) {
  std::string dir = UniqueDir("seg_cluster");
  std::vector<trace::TraceEvent> events = SmallWorkload();
  std::string report_before;
  {
    cluster::ClusterOptions copts;
    copts.num_shards = 2;
    copts.durability.dir = dir;
    copts.durability.segment_checkpoints = true;
    cluster::WarehouseCluster cl(SmallCorpus(), std::nullopt, copts);
    ASSERT_TRUE(cl.durability_status().ok());
    cl.Replay(events);
    ASSERT_TRUE(cl.CheckpointAllShards().ok());
    std::ostringstream os;
    for (uint32_t i = 0; i < 2; ++i) {
      cl.mutable_shard(i).PrintDurableReport(os);
    }
    report_before = os.str();
    // Both shards rotated to segment checkpoints.
    EXPECT_TRUE(fs::exists(dir + "/shard-0/warehouse.seg.2"));
    EXPECT_TRUE(fs::exists(dir + "/shard-1/warehouse.seg.2"));
  }
  {
    cluster::ClusterOptions copts;
    copts.num_shards = 2;
    copts.durability.dir = dir;
    copts.durability.segment_checkpoints = true;
    cluster::WarehouseCluster cl(SmallCorpus(), std::nullopt, copts);
    ASSERT_TRUE(cl.durability_status().ok());
    ASSERT_EQ(cl.recovery_reports().size(), 2u);
    for (const auto& r : cl.recovery_reports()) {
      EXPECT_TRUE(r.recovered);
      EXPECT_TRUE(r.checkpoint_from_segment);
    }
    std::ostringstream os;
    for (uint32_t i = 0; i < 2; ++i) {
      cl.mutable_shard(i).PrintDurableReport(os);
    }
    EXPECT_EQ(os.str(), report_before);
  }
}

}  // namespace
}  // namespace cbfww
