// Chaos-over-the-wire soak (slow, seed-parameterized): adversarial
// socket fleets — slowloris partial-header writers, abortive resetters,
// byte-dribblers — race a pool of legitimate retrying clients against a
// multi-IO-thread server with short lifecycle deadlines. The invariants:
// every legitimate op eventually succeeds (zero acked loss), the
// open-connection gauge returns to baseline (no fd leaks), the lifecycle
// deadlines actually fired (the chaos was real), and a seeded server-side
// socket-fault run replays byte-identically under the same seed.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "fault/socket_fault_injector.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "util/clock.h"

namespace cbfww::server {
namespace {

using cluster::ClusterOptions;
using cluster::WarehouseCluster;

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

corpus::CorpusOptions SoakCorpus() {
  corpus::CorpusOptions opts;
  opts.num_sites = 6;
  opts.pages_per_site = 60;
  opts.topic.num_topics = 4;
  opts.seed = 77;
  return opts;
}

ClusterOptions SoakCluster(uint32_t shards, uint32_t lanes) {
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.producer_lanes = lanes;
  opts.warehouse.memory_bytes = 8ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 512ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  return opts;
}

int OpenRawConn(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One adversarial actor. Which kind it plays is derived from the seed so
/// the fleet's composition varies per seed but is stable for one seed.
void AdversaryThread(uint16_t port, uint64_t seed, uint32_t id,
                     std::atomic<bool>* stop) {
  Pcg32 rng(seed, 0xbad0 + id);
  while (!stop->load(std::memory_order_relaxed)) {
    int fd = OpenRawConn(port);
    if (fd < 0) {
      SleepMs(5);
      continue;
    }
    switch (rng.Next() % 3) {
      case 0: {  // Slowloris: partial header, then hold the socket open.
        const char* partial = "GET /page/1 HTTP/1.1\r\nHost: slow\r\n";
        (void)!::send(fd, partial, strlen(partial), MSG_NOSIGNAL);
        // Hold until the server's header deadline kills us (poll for the
        // close so we don't outstay the test).
        pollfd p{fd, POLLIN, 0};
        ::poll(&p, 1, 700);
        break;
      }
      case 1: {  // Resetter: half a request, then an abortive RST close.
        const char* partial = "GET /metri";
        (void)!::send(fd, partial, strlen(partial), MSG_NOSIGNAL);
        linger hard{1, 0};
        setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        break;
      }
      default: {  // Dribbler: a real request, one byte at a time, then bail
                  // partway through with the connection just... left there.
        const char* req = "GET /healthz HTTP/1.1\r\n\r\n";
        size_t cut = 5 + rng.Next() % 15;
        for (size_t i = 0; i < cut; ++i) {
          if (::send(fd, req + i, 1, MSG_NOSIGNAL) != 1) break;
          SleepMs(1 + rng.Next() % 3);
        }
        break;
      }
    }
    ::close(fd);
    SleepMs(1 + rng.Next() % 5);
  }
}

/// One legitimate client: every op retries (reconnecting) until it gets a
/// 200 or the hard deadline passes. A single lost ack fails the soak.
void LegitThread(uint16_t port, uint64_t seed, uint32_t id, int ops,
                 std::atomic<uint64_t>* acked,
                 std::atomic<uint64_t>* lost) {
  ClientOptions opts;
  opts.connect_timeout_ms = 2000;
  opts.read_timeout_ms = 3000;
  opts.write_timeout_ms = 2000;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff_ms = 10;
  opts.retry.max_backoff_ms = 200;
  opts.seed = seed * 1000003u + id;
  SimpleHttpClient client(opts);
  Pcg32 rng(seed, 0x900d + id);
  for (int op = 0; op < ops; ++op) {
    std::string target = "/page/" + std::to_string(rng.Next() % 300);
    bool ok = false;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (!client.connected() &&
          !client.Connect("127.0.0.1", port).ok()) {
        SleepMs(10);
        continue;
      }
      auto response = client.RoundTripWithRetry("GET", target);
      if (response.ok() && response->status == 200) {
        ok = true;
        break;
      }
      SleepMs(5);
    }
    if (ok) {
      acked->fetch_add(1, std::memory_order_relaxed);
    } else {
      lost->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

class NetChaosSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetChaosSoakTest, AdversarialFleetNeverLosesAckedWork) {
  const uint64_t seed = GetParam();
  WarehouseCluster cluster(SoakCorpus(), std::nullopt, SoakCluster(2, 2));
  ServerOptions sopts;
  sopts.io_threads = 2;
  sopts.accept_mode = AcceptMode::kHandoff;
  sopts.lifecycle.header_timeout_ms = 300;
  sopts.lifecycle.body_timeout_ms = 300;
  sopts.lifecycle.idle_timeout_ms = 2000;
  sopts.lifecycle.write_stall_timeout_ms = 300;
  sopts.lifecycle.timer_tick_ms = 5;
  HttpServer server(&cluster, sopts);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0}, lost{0};
  std::vector<std::thread> threads;
  constexpr int kAdversaries = 12;
  constexpr int kLegit = 4;
  constexpr int kOpsPerLegit = 60;
  for (uint32_t a = 0; a < kAdversaries; ++a) {
    threads.emplace_back(AdversaryThread, port, seed, a, &stop);
  }
  for (uint32_t c = 0; c < kLegit; ++c) {
    threads.emplace_back(LegitThread, port, seed, c, kOpsPerLegit, &acked,
                         &lost);
  }
  // Legit clients finish first; then call off the adversaries.
  for (size_t i = kAdversaries; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  for (size_t i = 0; i < kAdversaries; ++i) threads[i].join();

  // Zero acked loss: every legitimate op landed a 200 despite the chaos.
  EXPECT_EQ(lost.load(), 0u);
  EXPECT_EQ(acked.load(),
            static_cast<uint64_t>(kLegit) * kOpsPerLegit);

  // The chaos was real: lifecycle deadlines fired.
  const ServerStats& stats = server.stats();
  EXPECT_GE(stats.timeouts_header.load(), 1u) << "slowloris never tripped";

  // No fd leaks: with every client gone the gauge must return to zero
  // (idle/header deadlines collect any adversarial stragglers).
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    drained = server.open_connections() == 0;
    if (!drained) SleepMs(10);
  }
  EXPECT_TRUE(drained) << server.open_connections() << " conns leaked";
  server.Stop();
}

/// Runs one scripted client session against a server with a seeded
/// socket-fault injector and returns the (status, body) transcript.
/// /metrics is excluded from scripts — it embeds live latency values.
std::vector<std::pair<int, std::string>> ScriptedRun(uint64_t seed) {
  WarehouseCluster cluster(SoakCorpus(), std::nullopt, SoakCluster(1, 1));
  fault::SocketFaultOptions fopts;
  fopts.accept_reset_probability = 0.05;
  fopts.read_reset_probability = 0.02;
  fopts.write_reset_probability = 0.02;
  fault::SocketFaultInjector injector(seed, fopts);
  ServerOptions sopts;  // io_threads=1: a total order over the wire.
  sopts.socket_faults = &injector;
  HttpServer server(&cluster, sopts);
  EXPECT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.read_timeout_ms = 2000;
  copts.retry.max_attempts = 6;
  copts.retry.initial_backoff_ms = 5;
  copts.retry.max_backoff_ms = 50;
  copts.retry.jitter = 0;  // Deterministic backoff for the replay check.
  copts.seed = seed;
  SimpleHttpClient client(copts);

  std::vector<std::pair<int, std::string>> transcript;
  Pcg32 rng(seed, 0x5c21);
  SimTime t = kSecond;
  for (int op = 0; op < 120; ++op) {
    std::string target;
    uint32_t raw = rng.Next() % 100;
    t += kSecond;
    if (raw < 80) {
      target = "/page/" + std::to_string(rng.Next() % 300);
    } else if (raw < 90) {
      target = "/body/" + std::to_string(rng.Next() % 300);
    } else {
      target = "/healthz";
    }
    target += "?t=" + std::to_string(t);
    if (!client.connected()) {
      // Connect may be reset by the injector; retry until it sticks.
      for (int i = 0; i < 50 && !client.connected(); ++i) {
        (void)client.Connect("127.0.0.1", server.port());
      }
    }
    auto response = client.RoundTripWithRetry("GET", target);
    if (response.ok()) {
      transcript.emplace_back(response->status, response->body);
    } else {
      transcript.emplace_back(-1, std::string(response.status().message()));
    }
  }
  // The injector's per-connection plans are part of the transcript: same
  // seed must mean the same faults at the same byte offsets.
  for (uint64_t serial = 1; serial <= injector.connections(); ++serial) {
    transcript.emplace_back(0, injector.PlanString(serial));
  }
  server.Stop();
  return transcript;
}

TEST_P(NetChaosSoakTest, SameSeedReplaysByteIdentically) {
  const uint64_t seed = GetParam();
  auto first = ScriptedRun(seed);
  auto second = ScriptedRun(seed);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << "op " << i;
    EXPECT_EQ(first[i].second, second[i].second) << "op " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetChaosSoakTest,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace cbfww::server
