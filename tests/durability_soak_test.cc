// Crash-restart soak matrix (label: slow; run by `scripts/ci.sh
// durability` under ASan): 3 seeds x 10 seeded crash points. Every cell
// runs a journaled warehouse to its crash point, applies the scheduled
// WAL damage, recovers twice, and checks the full durability contract:
// zero acknowledged-object loss, monotonically advancing data epoch,
// deterministic double recovery, and byte-identical durable state against
// a never-crashed oracle over the surviving event prefix — then finishes
// the workload to prove the recovered warehouse is fully live.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/crash_point.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/clock.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeeds[] = {7, 77, 777};
constexpr uint32_t kCrashPointsPerSeed = 10;

corpus::CorpusOptions SoakCorpusOptions(uint64_t seed) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 40;
  copts.seed = seed;
  return copts;
}

core::WarehouseOptions SoakWarehouseOptions(const std::string& dir) {
  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  wopts.durability.dir = dir;
  // Exercise rotation inside the matrix: crashes land on checkpoints of
  // several ages.
  wopts.durability.checkpoint_every_events = 64;
  return wopts;
}

struct Rig {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<core::Warehouse> wh;
  core::RecoveryReport recovery;
};

Rig MakeRig(uint64_t seed, const std::string& dir, bool durable) {
  Rig rig;
  rig.corpus = std::make_unique<corpus::WebCorpus>(SoakCorpusOptions(seed));
  rig.origin = std::make_unique<net::OriginServer>(rig.corpus.get(),
                                                   net::NetworkModel());
  core::WarehouseOptions wopts = SoakWarehouseOptions(durable ? dir : "");
  rig.wh = std::make_unique<core::Warehouse>(rig.corpus.get(),
                                             rig.origin.get(), nullptr, wopts);
  if (durable) {
    auto report = rig.wh->OpenDurability();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) rig.recovery = *report;
  }
  return rig;
}

std::vector<trace::TraceEvent> SoakTrace(uint64_t seed) {
  corpus::WebCorpus corpus(SoakCorpusOptions(seed));
  trace::WorkloadOptions w;
  w.horizon = 3 * kHour;
  w.sessions_per_hour = 40;
  w.modifications_per_hour = 12;
  w.seed = seed + 1;
  trace::WorkloadGenerator gen(&corpus, nullptr, w);
  return gen.Generate();
}

std::string DurableReport(core::Warehouse& wh) {
  std::ostringstream os;
  wh.PrintDurableReport(os);
  return os.str();
}

std::string FindWal(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".wal.") != std::string::npos) {
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no WAL in " << dir;
  return found;
}

void RunCell(uint64_t seed, const std::vector<trace::TraceEvent>& events,
             const fault::CrashPoint& point, const std::string& tag) {
  std::string dir = testing::TempDir() + "/soak_" + tag;
  fs::remove_all(dir);
  uint64_t crash_at = std::min<uint64_t>(point.event_index, events.size());
  {
    Rig victim = MakeRig(seed, dir, true);
    for (uint64_t i = 0; i < crash_at; ++i) {
      victim.wh->ProcessEvent(events[i]);
    }
  }
  ASSERT_TRUE(fault::ApplyCrash(FindWal(dir), point).ok()) << tag;

  Rig recovered = MakeRig(seed, dir, true);
  ASSERT_TRUE(recovered.recovery.recovered) << tag;
  uint64_t replayed = recovered.recovery.events_processed;
  ASSERT_LE(replayed, crash_at) << tag;
  std::string state = DurableReport(*recovered.wh);

  // Deterministic double recovery.
  {
    Rig again = MakeRig(seed, dir, true);
    ASSERT_EQ(again.recovery.events_processed, replayed) << tag;
    ASSERT_EQ(DurableReport(*again.wh), state) << tag;
  }

  // Byte-identical convergence with the never-crashed oracle prefix.
  Rig oracle = MakeRig(seed, dir, false);
  for (uint64_t i = 0; i < replayed; ++i) oracle.wh->ProcessEvent(events[i]);
  ASSERT_EQ(state, DurableReport(*oracle.wh)) << tag;
  // Monotonic epoch: strictly above the oracle prefix and above every
  // epoch the surviving log recorded — no cached result produced by an
  // acknowledged pre-crash state can validate.
  EXPECT_GT(recovered.wh->data_epoch(), oracle.wh->data_epoch()) << tag;
  EXPECT_GT(recovered.wh->data_epoch(), recovered.recovery.max_epoch_seen)
      << tag;

  // Zero acknowledged-object loss.
  for (const auto& [rid, rec] : recovered.wh->raw_records()) {
    if (!rec.acknowledged) continue;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    ASSERT_NE(recovered.wh->hierarchy().FastestTierOf(full_id),
              storage::kNoTier)
        << tag << ": acknowledged object " << rid << " lost";
  }

  // Finish the workload on the recovered warehouse: still a full citizen.
  for (uint64_t i = replayed; i < events.size(); ++i) {
    recovered.wh->ProcessEvent(events[i]);
  }
  Status inv = recovered.wh->CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << tag << ": " << inv.ToString();
  fs::remove_all(dir);
}

class DurabilitySoakTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DurabilitySoakTest, CrashRestartMatrix) {
  uint64_t seed = GetParam();
  std::vector<trace::TraceEvent> events = SoakTrace(seed);
  ASSERT_GT(events.size(), 100u);
  fault::CrashScheduleOptions copts;
  copts.total_events = events.size();
  copts.num_crashes = kCrashPointsPerSeed;
  copts.min_event = 5;
  fault::CrashSchedule schedule = fault::CrashSchedule::Generate(seed, copts);
  ASSERT_EQ(schedule.points.size(), kCrashPointsPerSeed);
  for (size_t c = 0; c < schedule.points.size(); ++c) {
    RunCell(seed, events, schedule.points[c],
            "s" + std::to_string(seed) + "_c" + std::to_string(c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilitySoakTest,
                         testing::ValuesIn(kSeeds),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cbfww
