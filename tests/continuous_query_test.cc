#include <gtest/gtest.h>

#include <memory>

#include "core/continuous_query.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"

namespace cbfww::core {
namespace {

/// Mutable catalog so tests can change the data between polls.
class MutableCatalog : public query::QueryCatalog {
 public:
  std::vector<uint64_t> objects = {1, 2, 3};

  std::vector<uint64_t> AllObjects(query::EntityKind) const override {
    return objects;
  }
  query::Value GetAttribute(query::EntityKind, uint64_t oid,
                            const std::string& attr) const override {
    if (attr == "oid") return query::Value(static_cast<int64_t>(oid));
    if (attr == "size") return query::Value(static_cast<int64_t>(oid * 10));
    return query::Value();
  }
  SimTime LastReference(query::EntityKind, uint64_t) const override {
    return 0;
  }
  uint64_t Frequency(query::EntityKind, uint64_t oid) const override {
    return oid;
  }
  bool RowMentions(query::EntityKind, uint64_t, const std::string&,
                   const std::vector<std::string>&) const override {
    return false;
  }
};

TEST(ContinuousQueryTest, RegisterValidatesSyntax) {
  MutableCatalog catalog;
  ContinuousQueryManager mgr(&catalog);
  EXPECT_FALSE(mgr.Register("SELECT FROM nothing", kHour).ok());
  EXPECT_FALSE(
      mgr.Register("SELECT oid FROM Physical_Page", 0).ok());  // Bad period.
  auto id = mgr.Register("SELECT oid FROM Physical_Page", kHour);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(mgr.size(), 1u);
}

TEST(ContinuousQueryTest, PollRespectsPeriod) {
  MutableCatalog catalog;
  ContinuousQueryManager mgr(&catalog);
  auto id = mgr.Register("SELECT oid FROM Physical_Page", kHour);
  ASSERT_TRUE(id.ok());

  // Due immediately at the first poll.
  EXPECT_EQ(mgr.Poll(0).size(), 1u);
  EXPECT_EQ(mgr.Find(*id)->evaluations, 1u);
  // Within the period: nothing to do.
  EXPECT_TRUE(mgr.Poll(30 * kMinute).empty());
  // After the period: re-evaluated.
  EXPECT_EQ(mgr.Poll(kHour + kMinute).size(), 1u);
  EXPECT_EQ(mgr.Find(*id)->evaluations, 2u);
}

TEST(ContinuousQueryTest, DetectsResultChanges) {
  MutableCatalog catalog;
  ContinuousQueryManager mgr(&catalog);
  auto id = mgr.Register("SELECT oid FROM Physical_Page p WHERE p.size > 15",
                         kHour);
  ASSERT_TRUE(id.ok());
  mgr.Poll(0);  // {2, 3}.
  EXPECT_EQ(mgr.Find(*id)->latest.rows.size(), 2u);
  EXPECT_EQ(mgr.Find(*id)->last_added, 2u);

  catalog.objects = {2, 3, 4, 5};  // Object 1 gone; 4, 5 appear.
  mgr.Poll(2 * kHour);             // {2, 3, 4, 5}.
  EXPECT_EQ(mgr.Find(*id)->latest.rows.size(), 4u);
  EXPECT_EQ(mgr.Find(*id)->last_added, 2u);
  EXPECT_EQ(mgr.Find(*id)->last_removed, 0u);

  catalog.objects = {4};
  mgr.Poll(4 * kHour);  // {4}.
  EXPECT_EQ(mgr.Find(*id)->last_removed, 3u);
  EXPECT_EQ(mgr.Find(*id)->last_added, 0u);
}

TEST(ContinuousQueryTest, Unregister) {
  MutableCatalog catalog;
  ContinuousQueryManager mgr(&catalog);
  auto id = mgr.Register("SELECT oid FROM Physical_Page", kHour);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(mgr.Unregister(*id).ok());
  EXPECT_EQ(mgr.Unregister(*id).code(), StatusCode::kNotFound);
  EXPECT_TRUE(mgr.Poll(0).empty());
  EXPECT_EQ(mgr.Find(*id), nullptr);
}

TEST(ContinuousQueryTest, WorksEndToEndInWarehouse) {
  corpus::CorpusOptions copts;
  copts.num_sites = 3;
  copts.pages_per_site = 30;
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());
  Warehouse wh(&corpus, &origin, nullptr, WarehouseOptions{});

  auto id = wh.RegisterContinuousQuery(
      "SELECT MFU 3 p.oid, p.frequency FROM Physical_Page p", 30 * kMinute);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  SimTime t = kSecond;
  for (int round = 0; round < 3; ++round) {
    for (corpus::PageId p = 0; p < 10; ++p) {
      wh.RequestPage(
          {.page = p, .user = 1, .session = static_cast<int64_t>(round * 100 + p), .now = t});
      t += kMinute;
    }
    wh.Tick(t);  // Housekeeping evaluates due standing queries.
  }
  wh.Tick(t + kHour);
  const auto* reg = wh.continuous_queries().Find(*id);
  ASSERT_NE(reg, nullptr);
  EXPECT_GT(reg->evaluations, 1u);
  ASSERT_FALSE(reg->latest.rows.empty());
  // The standing query tracks the live MFU ranking.
  EXPECT_GT(reg->latest.rows[0][1].AsInt(), 1);
}

}  // namespace
}  // namespace cbfww::core
