#include <gtest/gtest.h>

#include "core/priority_manager.h"
#include "core/topic.h"
#include "corpus/news_feed.h"
#include "corpus/web_corpus.h"

namespace cbfww::core {
namespace {

using index::ObjectLevel;

// ---------------------------------------------------------------------------
// PriorityManager
// ---------------------------------------------------------------------------

PriorityOptions TestPriorityOptions() {
  PriorityOptions opts;
  opts.lambda = 0.5;
  opts.aging_period = kHour;
  opts.similarity_threshold = 0.2;
  opts.topic_boost_weight = 2.0;
  return opts;
}

TEST(PriorityManagerTest, AccessRaisesOwnPriority) {
  PriorityManager pm(TestPriorityOptions());
  EXPECT_DOUBLE_EQ(pm.OwnPriority(ObjectLevel::kPhysical, 1, 0), 0.0);
  for (int i = 0; i < 10; ++i) {
    pm.RecordAccess(ObjectLevel::kPhysical, 1, i * kMinute);
  }
  EXPECT_GT(pm.OwnPriority(ObjectLevel::kPhysical, 1, kHour), 0.0);
}

TEST(PriorityManagerTest, PriorityDecaysWhenIdle) {
  PriorityManager pm(TestPriorityOptions());
  for (int i = 0; i < 10; ++i) pm.RecordAccess(ObjectLevel::kRaw, 5, i);
  double warm = pm.OwnPriority(ObjectLevel::kRaw, 5, kHour);
  double cold = pm.OwnPriority(ObjectLevel::kRaw, 5, 50 * kHour);
  EXPECT_LT(cold, warm * 0.01);
}

TEST(PriorityManagerTest, LevelsAreIndependent) {
  PriorityManager pm(TestPriorityOptions());
  pm.RecordAccess(ObjectLevel::kRaw, 1, 0);
  EXPECT_GT(pm.OwnPriority(ObjectLevel::kRaw, 1, kHour), 0.0);
  EXPECT_DOUBLE_EQ(pm.OwnPriority(ObjectLevel::kPhysical, 1, kHour), 0.0);
}

TEST(PriorityManagerTest, SeedPriorityStartsWarm) {
  PriorityManager pm(TestPriorityOptions());
  pm.SeedPriority(ObjectLevel::kPhysical, 9, 4.0, 0);
  EXPECT_DOUBLE_EQ(pm.OwnPriority(ObjectLevel::kPhysical, 9, 0), 4.0);
}

TEST(PriorityManagerTest, ForgetClearsState) {
  PriorityManager pm(TestPriorityOptions());
  pm.SeedPriority(ObjectLevel::kRaw, 2, 5.0, 0);
  pm.Forget(ObjectLevel::kRaw, 2);
  EXPECT_DOUBLE_EQ(pm.OwnPriority(ObjectLevel::kRaw, 2, 0), 0.0);
}

TEST(PriorityManagerTest, InitialPriorityRequiresSimilarity) {
  PriorityManager pm(TestPriorityOptions());
  // Similar region: inherit its mean priority.
  EXPECT_DOUBLE_EQ(pm.InitialPriority(3.0, 0.5, 0.0), 3.0);
  // Below the similarity threshold: cold start.
  EXPECT_DOUBLE_EQ(pm.InitialPriority(3.0, 0.1, 0.0), 0.0);
}

TEST(PriorityManagerTest, TopicHotnessAlwaysBoosts) {
  PriorityManager pm(TestPriorityOptions());
  // Even a dissimilar page gets the hot-topic boost (weight 2).
  EXPECT_DOUBLE_EQ(pm.InitialPriority(0.0, 0.0, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(pm.InitialPriority(2.0, 0.9, 1.0), 4.0);
}

TEST(PriorityManagerTest, CombineRules) {
  // Figure 2: shared component takes exactly the max container priority.
  EXPECT_DOUBLE_EQ(PriorityManager::CombineShared(12.0), 12.0);
  // Containment: an object never loses its own priority.
  EXPECT_DOUBLE_EQ(PriorityManager::CombineContained(5.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(PriorityManager::CombineContained(3.0, 5.0), 5.0);
}

// ---------------------------------------------------------------------------
// DecayingTermWeights
// ---------------------------------------------------------------------------

TEST(DecayingTermWeightsTest, HalfLifeDecay) {
  DecayingTermWeights w(kHour);
  w.Add(1, 8.0, 0);
  EXPECT_DOUBLE_EQ(w.WeightOf(1, 0), 8.0);
  EXPECT_NEAR(w.WeightOf(1, kHour), 4.0, 1e-9);
  EXPECT_NEAR(w.WeightOf(1, 3 * kHour), 1.0, 1e-9);
}

TEST(DecayingTermWeightsTest, AddAccumulatesAfterDecay) {
  DecayingTermWeights w(kHour);
  w.Add(1, 4.0, 0);
  w.Add(1, 1.0, kHour);  // 4/2 + 1 = 3.
  EXPECT_NEAR(w.WeightOf(1, kHour), 3.0, 1e-9);
}

TEST(DecayingTermWeightsTest, OverlapNormalizedByVectorNorm) {
  DecayingTermWeights w(kHour);
  w.Add(1, 2.0, 0);
  text::TermVector v;
  v.Add(1, 3.0);
  v.Add(2, 4.0);  // Norm 5.
  EXPECT_NEAR(w.Overlap(v, 0), 2.0 * 3.0 / 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.Overlap(text::TermVector(), 0), 0.0);
}

TEST(DecayingTermWeightsTest, TopTermsSortedAndBounded) {
  DecayingTermWeights w(kHour);
  w.Add(1, 1.0, 0);
  w.Add(2, 3.0, 0);
  w.Add(3, 2.0, 0);
  auto top = w.TopTerms(0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
}

TEST(DecayingTermWeightsTest, CompactDropsDecayedEntries) {
  DecayingTermWeights w(kHour);
  w.Add(1, 1.0, 0);
  w.Add(2, 1000.0, 0);
  // After 10 half-lives: term 1 ~ 1e-3 (dropped), term 2 ~ 0.98 (kept).
  w.Compact(10 * kHour, 1e-2);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_GT(w.WeightOf(2, 10 * kHour), 0.5);
}

// ---------------------------------------------------------------------------
// TopicSensor + TopicManager against a real news feed
// ---------------------------------------------------------------------------

class TopicSensorTest : public ::testing::Test {
 protected:
  TopicSensorTest() {
    corpus::CorpusOptions copts;
    copts.num_sites = 3;
    copts.pages_per_site = 20;
    corpus_ = std::make_unique<corpus::WebCorpus>(copts);
    corpus::NewsFeed::Options fopts;
    fopts.num_bursts = 3;
    fopts.horizon = kDay;
    feed_ = std::make_unique<corpus::NewsFeed>(fopts, &corpus_->topic_model());
  }

  text::TermVector TopicVector(corpus::TopicId topic) {
    text::TermVector v;
    for (text::TermId t : corpus_->topic_model().TopicSignature(topic, 8)) {
      v.Add(t, 1.0);
    }
    return v;
  }

  std::unique_ptr<corpus::WebCorpus> corpus_;
  std::unique_ptr<corpus::NewsFeed> feed_;
};

TEST_F(TopicSensorTest, ColdBeforePolling) {
  TopicSensor sensor(feed_.get(), TopicSensor::Options());
  EXPECT_EQ(sensor.headlines_seen(), 0u);
  EXPECT_DOUBLE_EQ(sensor.HotnessOf(TopicVector(0), 0), 0.0);
}

TEST_F(TopicSensorTest, PollIngestsHeadlinesOnce) {
  TopicSensor sensor(feed_.get(), TopicSensor::Options());
  sensor.Poll(kDay);
  uint64_t seen = sensor.headlines_seen();
  EXPECT_EQ(seen, feed_->headlines().size());
  sensor.Poll(kDay);  // Idempotent for the same horizon.
  EXPECT_EQ(sensor.headlines_seen(), seen);
}

TEST_F(TopicSensorTest, HotTopicScoresAboveColdTopic) {
  TopicSensor sensor(feed_.get(), TopicSensor::Options());
  const corpus::BurstSpec& burst = feed_->bursts().front();
  SimTime t = burst.start;
  sensor.Poll(t);
  double hot = sensor.HotnessOf(TopicVector(burst.topic), t);
  // Some other topic that has no burst yet at this time.
  double cold_best = 0.0;
  for (uint32_t topic = 0; topic < corpus_->topic_model().num_topics();
       ++topic) {
    bool bursted = false;
    for (const auto& b : feed_->bursts()) {
      if (b.topic == static_cast<corpus::TopicId>(topic) && b.start <= t) {
        bursted = true;
      }
    }
    if (!bursted) {
      cold_best = std::max(
          cold_best,
          sensor.HotnessOf(TopicVector(static_cast<corpus::TopicId>(topic)), t));
    }
  }
  EXPECT_GT(hot, cold_best);
}

TEST_F(TopicSensorTest, HotTermsComeFromHeadlines) {
  TopicSensor sensor(feed_.get(), TopicSensor::Options());
  sensor.Poll(kDay);
  auto hot = sensor.HotTerms(kDay, 5);
  ASSERT_FALSE(hot.empty());
  // Every hot term must appear in some headline.
  for (const auto& [term, weight] : hot) {
    bool found = false;
    for (const auto& h : feed_->headlines()) {
      if (std::find(h.terms.begin(), h.terms.end(), term) != h.terms.end()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(TopicSensorTest, NullFeedStaysCold) {
  TopicSensor sensor(nullptr, TopicSensor::Options());
  sensor.Poll(kDay);
  EXPECT_EQ(sensor.headlines_seen(), 0u);
}

TEST_F(TopicSensorTest, ManagerMergesSensorAndUsage) {
  TopicSensor sensor(feed_.get(), TopicSensor::Options());
  TopicManager::Options mopts;
  mopts.sensor_weight = 1.0;
  mopts.usage_weight = 1.0;
  TopicManager manager(&sensor, mopts);

  text::TermVector v = TopicVector(1);
  double before = manager.TopicScore(v, 0);
  manager.RecordUsage(v, /*priority=*/5.0, 0);
  double after = manager.TopicScore(v, 0);
  EXPECT_GT(after, before);

  auto important = manager.ImportantTerms(0, 3);
  EXPECT_FALSE(important.empty());
}

TEST_F(TopicSensorTest, HighPriorityUsageWeighsMoreInTheMix) {
  // Topic scores are scale-free (normalized by total mass), so priority
  // matters through the *share* of the profile a topic earns: equal usage
  // counts, but topic 2 carried high priority in manager `a` and low in
  // manager `b` — topic 2 must outscore topic 3 only in `a`.
  TopicManager::Options mopts;
  mopts.sensor_weight = 0.0;
  mopts.usage_weight = 1.0;
  TopicManager a(nullptr, mopts), b(nullptr, mopts);
  text::TermVector hot = TopicVector(2);
  text::TermVector other = TopicVector(3);
  a.RecordUsage(hot, 10.0, 0);
  a.RecordUsage(other, 0.0, 0);
  b.RecordUsage(hot, 0.0, 0);
  b.RecordUsage(other, 10.0, 0);
  EXPECT_GT(a.TopicScore(hot, 0), a.TopicScore(other, 0));
  EXPECT_LT(b.TopicScore(hot, 0), b.TopicScore(other, 0));
}

}  // namespace
}  // namespace cbfww::core
