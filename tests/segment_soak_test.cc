// Segment-compaction crash soak (label: slow; run as a 3-fixed-seed
// smoke by `scripts/ci.sh segments`): the durability_soak matrix with
// segment-format checkpoints on, plus a killer that dies *inside*
// compaction. Each cell runs a journaled warehouse (automatic rotation
// every 64 events, so several segment checkpoints age naturally) to a
// seeded crash point, then kills a manual compaction at one of the four
// CheckpointPhases — before the segment write, after it, after the new
// WAL exists, after the old generation is unlinked — and in odd cells
// additionally mutilates the surviving WAL with the scheduled damage.
// Gates: zero acknowledged-object loss, deterministic double recovery,
// byte-identical convergence with a never-crashed oracle prefix, and a
// strictly advancing data epoch.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/crash_point.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/clock.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeeds[] = {7, 77, 777};
constexpr uint32_t kCrashPointsPerSeed = 8;

constexpr core::CheckpointPhase kPhases[] = {
    core::CheckpointPhase::kBeforeCheckpointWrite,
    core::CheckpointPhase::kAfterCheckpointWrite,
    core::CheckpointPhase::kAfterWalCreate,
    core::CheckpointPhase::kAfterOldCheckpointRemoved,
};

corpus::CorpusOptions SoakCorpusOptions(uint64_t seed) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 40;
  copts.seed = seed;
  return copts;
}

core::WarehouseOptions SoakWarehouseOptions(const std::string& dir) {
  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  wopts.durability.dir = dir;
  wopts.durability.segment_checkpoints = true;
  // Rotate often enough that the matrix crashes over checkpoints of
  // several ages, including cells with no completed rotation at all.
  wopts.durability.checkpoint_every_events = 64;
  return wopts;
}

struct Rig {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<core::Warehouse> wh;
  core::RecoveryReport recovery;
};

Rig MakeRig(uint64_t seed, const std::string& dir, bool durable) {
  Rig rig;
  rig.corpus = std::make_unique<corpus::WebCorpus>(SoakCorpusOptions(seed));
  rig.origin = std::make_unique<net::OriginServer>(rig.corpus.get(),
                                                   net::NetworkModel());
  core::WarehouseOptions wopts = SoakWarehouseOptions(durable ? dir : "");
  rig.wh = std::make_unique<core::Warehouse>(rig.corpus.get(),
                                             rig.origin.get(), nullptr, wopts);
  if (durable) {
    auto report = rig.wh->OpenDurability();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) rig.recovery = *report;
  }
  return rig;
}

std::vector<trace::TraceEvent> SoakTrace(uint64_t seed) {
  corpus::WebCorpus corpus(SoakCorpusOptions(seed));
  trace::WorkloadOptions w;
  w.horizon = 3 * kHour;
  w.sessions_per_hour = 40;
  w.modifications_per_hour = 12;
  w.seed = seed + 1;
  trace::WorkloadGenerator gen(&corpus, nullptr, w);
  return gen.Generate();
}

std::string DurableReport(core::Warehouse& wh) {
  std::ostringstream os;
  wh.PrintDurableReport(os);
  return os.str();
}

/// Newest WAL in `dir` (highest sequence suffix).
std::string FindWal(const std::string& dir) {
  std::string found;
  uint64_t best_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    size_t pos = name.find(".wal.");
    if (pos == std::string::npos) continue;
    uint64_t seq = std::strtoull(name.c_str() + pos + 5, nullptr, 10);
    if (found.empty() || seq > best_seq) {
      best_seq = seq;
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no WAL in " << dir;
  return found;
}

bool AnySegmentCheckpoint(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".seg.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void RunCell(uint64_t seed, const std::vector<trace::TraceEvent>& events,
             const fault::CrashPoint& point, core::CheckpointPhase phase,
             bool damage_wal, const std::string& tag,
             uint64_t* segment_recoveries) {
  std::string dir = testing::TempDir() + "/segsoak_" +
                    std::to_string(getpid()) + "_" + tag;
  fs::remove_all(dir);
  uint64_t crash_at = std::min<uint64_t>(point.event_index, events.size());
  {
    Rig victim = MakeRig(seed, dir, true);
    for (uint64_t i = 0; i < crash_at; ++i) {
      victim.wh->ProcessEvent(events[i]);
    }
    // Die inside the compaction itself, at the cell's phase. The hook
    // poisons the journal exactly as the real crash would leave the
    // process: disk state frozen mid-rotation, no further acks.
    victim.wh->mutable_journal()->set_checkpoint_crash_hook_for_test(
        [phase](core::CheckpointPhase p) { return p == phase; });
    Status died = victim.wh->CheckpointNow();
    ASSERT_FALSE(died.ok()) << tag;
    if (crash_at >= 64) {
      // At least one automatic rotation completed before the crash, so
      // the directory holds a segment-format checkpoint.
      EXPECT_TRUE(AnySegmentCheckpoint(dir)) << tag;
    }
  }
  if (damage_wal) {
    ASSERT_TRUE(fault::ApplyCrash(FindWal(dir), point).ok()) << tag;
  }

  Rig recovered = MakeRig(seed, dir, true);
  ASSERT_TRUE(recovered.recovery.recovered) << tag;
  if (recovered.recovery.checkpoint_from_segment) ++*segment_recoveries;
  uint64_t replayed = recovered.recovery.events_processed;
  ASSERT_LE(replayed, crash_at) << tag;
  std::string state = DurableReport(*recovered.wh);

  // Deterministic double recovery.
  {
    Rig again = MakeRig(seed, dir, true);
    ASSERT_EQ(again.recovery.events_processed, replayed) << tag;
    ASSERT_EQ(DurableReport(*again.wh), state) << tag;
  }

  // Byte-identical convergence with the never-crashed oracle prefix.
  Rig oracle = MakeRig(seed, dir, false);
  for (uint64_t i = 0; i < replayed; ++i) oracle.wh->ProcessEvent(events[i]);
  ASSERT_EQ(state, DurableReport(*oracle.wh)) << tag;
  // Monotonic epoch: strictly above the oracle prefix and above every
  // epoch the surviving log recorded.
  EXPECT_GT(recovered.wh->data_epoch(), oracle.wh->data_epoch()) << tag;
  EXPECT_GT(recovered.wh->data_epoch(), recovered.recovery.max_epoch_seen)
      << tag;

  // Zero acknowledged-object loss.
  for (const auto& [rid, rec] : recovered.wh->raw_records()) {
    if (!rec.acknowledged) continue;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    ASSERT_NE(recovered.wh->hierarchy().FastestTierOf(full_id),
              storage::kNoTier)
        << tag << ": acknowledged object " << rid << " lost";
  }

  // Finish the workload on the recovered warehouse: still a full citizen,
  // including further segment-checkpoint rotations.
  for (uint64_t i = replayed; i < events.size(); ++i) {
    recovered.wh->ProcessEvent(events[i]);
  }
  Status inv = recovered.wh->CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << tag << ": " << inv.ToString();
  fs::remove_all(dir);
}

class SegmentSoakTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SegmentSoakTest, CompactionCrashMatrix) {
  uint64_t seed = GetParam();
  std::vector<trace::TraceEvent> events = SoakTrace(seed);
  ASSERT_GT(events.size(), 100u);
  fault::CrashScheduleOptions copts;
  copts.total_events = events.size();
  copts.num_crashes = kCrashPointsPerSeed;
  copts.min_event = 5;
  fault::CrashSchedule schedule = fault::CrashSchedule::Generate(seed, copts);
  ASSERT_EQ(schedule.points.size(), kCrashPointsPerSeed);
  uint64_t segment_recoveries = 0;
  for (size_t c = 0; c < schedule.points.size(); ++c) {
    // Cycle the crash phase across cells (every phase twice per seed)
    // and mutilate the surviving WAL in every odd cell.
    RunCell(seed, events, schedule.points[c], kPhases[c % 4],
            /*damage_wal=*/(c % 2) == 1,
            "s" + std::to_string(seed) + "_c" + std::to_string(c),
            &segment_recoveries);
  }
  // The matrix must actually exercise segment-checkpoint recovery, not
  // just WAL-only first-boot cells.
  EXPECT_GT(segment_recoveries, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentSoakTest, testing::ValuesIn(kSeeds),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cbfww
