// Wire-resilience fast battery: the per-IO-loop timer wheel, the seeded
// socket-fault injector's replay determinism, every connection-lifecycle
// deadline (header/body/idle/write-stall/lifetime) observed through real
// sockets, LIFO idle reaping under the connection high-water mark, the
// client's connect/read timeouts against unresponsive listeners, retry
// with Retry-After over a shedding server, the degraded-answer wire
// contract (X-Cbfww-Degraded, 503-vs-200 policy), the pipelined
// byte-at-a-time progress guarantee, and the drain-report quiesce path at
// io_threads > 1.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "fault/fault_injector.h"
#include "fault/socket_fault_injector.h"
#include "server/event_loop.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/timer_wheel.h"
#include "util/clock.h"
#include "util/hash.h"

namespace cbfww::server {
namespace {

using cluster::ClusterOptions;
using cluster::WarehouseCluster;

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Spin-waits (up to `budget_ms`) for `cond` to become true.
template <typename Cond>
bool WaitFor(Cond cond, int64_t budget_ms = 5000) {
  for (int64_t spent = 0; spent < budget_ms; spent += 2) {
    if (cond()) return true;
    SleepMs(2);
  }
  return cond();
}

// ----- TimerWheel -----

TEST(TimerWheelTest, SchedulesExpiresAndCancels) {
  TimerWheel wheel(10, 8);  // One rotation = 80ms.
  TimerWheel::Entry a, b, c;
  int ta = 1, tb = 2, tc = 3;
  wheel.Schedule(&a, 20, &ta);
  wheel.Schedule(&b, 50, &tb);
  wheel.Schedule(&c, 45, &tc);
  EXPECT_EQ(wheel.scheduled(), 3u);

  std::vector<void*> expired;
  wheel.Advance(10, &expired);
  EXPECT_TRUE(expired.empty());

  wheel.Advance(25, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], &ta);
  EXPECT_FALSE(a.scheduled());

  wheel.Cancel(&c);
  EXPECT_EQ(wheel.scheduled(), 1u);
  wheel.Cancel(&c);  // Double-cancel is harmless.

  expired.clear();
  wheel.Advance(100, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], &tb);
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheelTest, LongDeadlinesSurviveWheelWrap) {
  TimerWheel wheel(10, 8);  // Rotation 80ms; deadline 500 wraps 6 times.
  TimerWheel::Entry e;
  int tag = 0;
  wheel.Schedule(&e, 500, &tag);
  std::vector<void*> expired;
  // Sweep in steps smaller than a rotation: the entry's slot is visited
  // repeatedly, but it must only be reported once its deadline passes.
  for (uint64_t now = 25; now < 500; now += 25) {
    wheel.Advance(now, &expired);
    EXPECT_TRUE(expired.empty()) << "at now=" << now;
  }
  wheel.Advance(505, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], &tag);
}

TEST(TimerWheelTest, ReschedulingMovesTheDeadline) {
  TimerWheel wheel(10, 16);
  TimerWheel::Entry e;
  int tag = 0;
  wheel.Schedule(&e, 30, &tag);
  wheel.Schedule(&e, 120, &tag);  // Rearm replaces the old slot entry.
  EXPECT_EQ(wheel.scheduled(), 1u);
  std::vector<void*> expired;
  wheel.Advance(60, &expired);
  EXPECT_TRUE(expired.empty());
  wheel.Advance(130, &expired);
  ASSERT_EQ(expired.size(), 1u);
}

TEST(TimerWheelTest, NextTimeoutBoundsTheSleep) {
  TimerWheel wheel(10, 16);
  EXPECT_EQ(wheel.NextTimeoutMs(0, 250), 250);  // Nothing scheduled.
  TimerWheel::Entry e;
  int tag = 0;
  wheel.Schedule(&e, 40, &tag);
  EXPECT_LE(wheel.NextTimeoutMs(0, 250), 40);
  EXPECT_GT(wheel.NextTimeoutMs(0, 250), 0);
  EXPECT_EQ(wheel.NextTimeoutMs(45, 250), 0);  // Already due.
  EXPECT_EQ(wheel.NextTimeoutMs(0, 5), 5);     // Cap wins.
}

// ----- SocketFaultInjector determinism -----

TEST(SocketFaultInjectorTest, SameSeedYieldsByteIdenticalPlans) {
  fault::SocketFaultOptions opts;  // Defaults: every fault class enabled.
  fault::SocketFaultInjector a(42, opts);
  fault::SocketFaultInjector b(42, opts);
  for (int i = 0; i < 32; ++i) {
    uint64_t sa = a.OnConnection();
    uint64_t sb = b.OnConnection();
    ASSERT_EQ(sa, sb);
    EXPECT_EQ(a.PlanString(sa), b.PlanString(sb)) << "serial " << sa;
  }
  // A different seed must produce a different plan somewhere.
  fault::SocketFaultInjector c(43, opts);
  bool any_differ = false;
  for (int i = 0; i < 32; ++i) {
    uint64_t s = c.OnConnection();
    if (c.PlanString(s) != a.PlanString(s)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(SocketFaultInjectorTest, DecisionsKeyOnByteOffsetNotChunking) {
  // Two same-seed injectors asked about the same byte offsets must return
  // identical verdicts even when one caller "reads" in different chunk
  // sizes — offsets are the replay key, not attempt counts.
  fault::SocketFaultOptions opts;
  opts.accept_reset_probability = 0;  // Keep every connection usable.
  fault::SocketFaultInjector a(7, opts);
  fault::SocketFaultInjector b(7, opts);
  for (int conn = 0; conn < 8; ++conn) {
    uint64_t sa = a.OnConnection();
    uint64_t sb = b.OnConnection();
    ASSERT_EQ(sa, sb);
    for (uint64_t offset : {0ull, 1ull, 3ull, 64ull, 512ull, 4096ull}) {
      net::SocketIoFault fa = a.OnRead(sa, offset);
      net::SocketIoFault fb = b.OnRead(sb, offset);
      EXPECT_EQ(static_cast<int>(fa.action), static_cast<int>(fb.action));
      EXPECT_EQ(fa.max_bytes, fb.max_bytes);
      net::SocketIoFault wa = a.OnWrite(sa, offset);
      net::SocketIoFault wb = b.OnWrite(sb, offset);
      EXPECT_EQ(static_cast<int>(wa.action), static_cast<int>(wb.action));
      EXPECT_EQ(wa.max_bytes, wb.max_bytes);
    }
  }
}

// ----- Raw socket helper (deliberately dumb: tests drive bad clients) --

struct RawSocket {
  int fd = -1;

  ~RawSocket() { Close(); }
  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  bool ConnectTo(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool WriteStr(std::string_view s) {
    size_t off = 0;
    while (off < s.size()) {
      ssize_t n = ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads whatever arrives until the peer closes or `budget_ms` passes.
  std::string ReadUntilClosed(int budget_ms) {
    std::string out;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    char buf[4096];
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) break;
      pollfd p{fd, POLLIN, 0};
      int rc = ::poll(&p, 1, static_cast<int>(left));
      if (rc <= 0) {
        if (rc < 0 && errno == EINTR) continue;
        break;  // Timeout.
      }
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EOF or reset: the server closed us.
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  /// True when the peer has closed (EOF/reset observed) within budget.
  bool ClosedBy(int budget_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    char buf[4096];
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return false;
      pollfd p{fd, POLLIN, 0};
      int rc = ::poll(&p, 1, static_cast<int>(left));
      if (rc <= 0) {
        if (rc < 0 && errno == EINTR) continue;
        return false;
      }
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return true;
    }
  }
};

// ----- Server-side lifecycle deadlines over real sockets -----

corpus::CorpusOptions SmallCorpus() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 40;
  opts.topic.num_topics = 4;
  opts.seed = 77;
  return opts;
}

ClusterOptions SmallCluster(uint32_t shards = 1) {
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.warehouse.memory_bytes = 4ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 256ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  return opts;
}

ServerOptions FastTimers() {
  ServerOptions opts;
  opts.lifecycle.header_timeout_ms = 200;
  opts.lifecycle.body_timeout_ms = 200;
  opts.lifecycle.idle_timeout_ms = 0;  // Off unless the test wants it.
  opts.lifecycle.write_stall_timeout_ms = 200;
  opts.lifecycle.timer_tick_ms = 5;
  return opts;
}

TEST(ConnLifecycleTest, SlowlorisHeaderGets408AndClose) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  HttpServer server(&cluster, FastTimers());
  ASSERT_TRUE(server.Start().ok());

  RawSocket loris;
  ASSERT_TRUE(loris.ConnectTo(server.port()));
  // Complete request line, header section never finished.
  ASSERT_TRUE(loris.WriteStr("GET /healthz HTTP/1.1\r\nHost: x\r\n"));
  std::string response = loris.ReadUntilClosed(5000);
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);

  EXPECT_TRUE(WaitFor([&] { return server.open_connections() == 0; }));
  EXPECT_EQ(server.stats().timeouts_header.load(), 1u);
  EXPECT_EQ(server.stats().responses_408.load(), 1u);
  // The stalled request's route is attributed from its request line.
  EXPECT_EQ(server.stats()
                .route[static_cast<size_t>(Route::kHealth)]
                .timeouts.load(),
            1u);
  server.Stop();
}

TEST(ConnLifecycleTest, StalledBodyGets408) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts = FastTimers();
  opts.lifecycle.header_timeout_ms = 10000;  // Only the body clock is short.
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  RawSocket slow;
  ASSERT_TRUE(slow.ConnectTo(server.port()));
  ASSERT_TRUE(slow.WriteStr(
      "POST /query HTTP/1.1\r\nContent-Length: 64\r\n\r\nSELECT"));
  std::string response = slow.ReadUntilClosed(5000);
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  EXPECT_EQ(server.stats().timeouts_body.load(), 1u);
  EXPECT_EQ(server.stats()
                .route[static_cast<size_t>(Route::kQuery)]
                .timeouts.load(),
            1u);
  server.Stop();
}

TEST(ConnLifecycleTest, IdleKeepAliveIsSilentlyClosed) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts = FastTimers();
  opts.lifecycle.idle_timeout_ms = 200;
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  RawSocket conn;
  ASSERT_TRUE(conn.ConnectTo(server.port()));
  ASSERT_TRUE(conn.WriteStr("GET /healthz HTTP/1.1\r\n\r\n"));
  // One good response, then silence from us: the server must close the
  // idle connection without queuing any 408 (there is no request to fail).
  std::string all = conn.ReadUntilClosed(5000);
  EXPECT_NE(all.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(all.find("408"), std::string::npos) << all;
  EXPECT_TRUE(WaitFor([&] { return server.open_connections() == 0; }));
  EXPECT_GE(server.stats().timeouts_idle.load(), 1u);
  EXPECT_EQ(server.stats().responses_408.load(), 0u);
  server.Stop();
}

TEST(ConnLifecycleTest, PeerThatStopsReadingIsHardClosed) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  HttpServer server(&cluster, FastTimers());
  ASSERT_TRUE(server.Start().ok());

  RawSocket sink;
  // Tiny receive window, set before connect so the handshake advertises it.
  sink.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(sink.fd, 0);
  int rcvbuf = 4096;
  setsockopt(sink.fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(sink.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Pipeline enough /metrics responses to overflow both socket buffers,
  // then never read: the server's output queue stops making progress and
  // the write-stall deadline must hard-close the connection.
  std::string burst;
  for (int i = 0; i < 400; ++i) burst += "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(sink.WriteStr(burst));
  EXPECT_TRUE(WaitFor(
      [&] { return server.stats().timeouts_write_stall.load() >= 1; },
      10000));
  EXPECT_TRUE(WaitFor([&] { return server.open_connections() == 0; }));
  server.Stop();
}

TEST(ConnLifecycleTest, LifetimeCapClosesAfterInFlightFinishes) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts;  // Generous per-phase deadlines; only lifetime binds.
  opts.lifecycle.max_lifetime_ms = 200;
  opts.lifecycle.timer_tick_ms = 5;
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  RawSocket conn;
  ASSERT_TRUE(conn.ConnectTo(server.port()));
  ASSERT_TRUE(conn.WriteStr("GET /healthz HTTP/1.1\r\n\r\n"));
  std::string all = conn.ReadUntilClosed(5000);
  EXPECT_NE(all.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_TRUE(WaitFor([&] { return server.open_connections() == 0; }));
  EXPECT_GE(server.stats().conns_lifetime_closed.load(), 1u);
  server.Stop();
}

TEST(ConnLifecycleTest, HighWaterReapsColdestIdleConnectionFirst) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts;
  opts.max_connections = 100;
  opts.lifecycle.reap_high_water_fraction = 0.04;  // High water at 4 conns.
  opts.lifecycle.timer_tick_ms = 5;
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  // Four keep-alive connections, idled in order 0..3 (0 is the coldest).
  std::vector<std::unique_ptr<RawSocket>> conns;
  for (int i = 0; i < 4; ++i) {
    auto conn = std::make_unique<RawSocket>();
    ASSERT_TRUE(conn->ConnectTo(server.port()));
    ASSERT_TRUE(conn->WriteStr("GET /healthz HTTP/1.1\r\n\r\n"));
    // Wait for the response so this conn is registered + idle before the
    // next connects (fixes the LIFO order the test asserts).
    std::string r;
    char buf[512];
    while (r.find("\"status\":\"ok\"") == std::string::npos) {
      pollfd p{conn->fd, POLLIN, 0};
      ASSERT_GT(::poll(&p, 1, 5000), 0);
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      r.append(buf, static_cast<size_t>(n));
    }
    conns.push_back(std::move(conn));
  }
  ASSERT_EQ(server.open_connections(), 4u);

  // The fifth connection pushes past the high-water mark: the coldest
  // idle connection (#0) is reaped; the warm ones survive.
  RawSocket fresh;
  ASSERT_TRUE(fresh.ConnectTo(server.port()));
  ASSERT_TRUE(fresh.WriteStr("GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(
      WaitFor([&] { return server.stats().conns_reaped.load() >= 1; }));
  EXPECT_TRUE(conns[0]->ClosedBy(5000));
  // A warm survivor still serves.
  ASSERT_TRUE(conns[3]->WriteStr("GET /healthz HTTP/1.1\r\n\r\n"));
  std::string again = conns[3]->ReadUntilClosed(500);
  EXPECT_NE(again.find("HTTP/1.1 200"), std::string::npos);
  server.Stop();
}

TEST(ConnLifecycleTest, SlowReaderDrainingResponsesIsNotIdleClosed) {
  // Regression: once the last pipelined request parses, the connection
  // must classify as flushing (kFlush), not idle, while responses are
  // still queued — an idle expiry or high-water reap here would silently
  // truncate an in-flight response. The write-stall clock (reset by every
  // byte of progress) is the only deadline that governs the drain.
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts = FastTimers();
  opts.lifecycle.header_timeout_ms = 10000;
  opts.lifecycle.body_timeout_ms = 10000;
  opts.lifecycle.idle_timeout_ms = 150;  // Far shorter than the drain.
  opts.lifecycle.write_stall_timeout_ms = 2000;
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  RawSocket slow;
  // Tiny receive window, set before connect so the handshake advertises
  // it: the server's output queue stays non-empty for the whole drain.
  slow.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow.fd, 0);
  int rcvbuf = 4096;
  setsockopt(slow.fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(slow.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Pipeline enough /metrics responses to overflow both socket buffers,
  // then read them back slowly: total drain time is many idle windows,
  // but steady progress must keep the connection alive until the last
  // byte, after which the idle deadline (not a truncating close) ends it.
  constexpr int kRequests = 400;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(slow.WriteStr(burst));

  std::string all;
  char buf[4096];
  for (;;) {
    pollfd p{slow.fd, POLLIN, 0};
    int rc = ::poll(&p, 1, 5000);
    if (rc < 0 && errno == EINTR) continue;
    ASSERT_GT(rc, 0) << "server stopped sending mid-drain";
    ssize_t n = ::recv(slow.fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // Post-drain idle close.
    ASSERT_GT(n, 0);
    all.append(buf, static_cast<size_t>(n));
    SleepMs(5);  // Pace the drain well past idle_timeout_ms.
  }

  size_t responses = 0;
  for (size_t at = all.find("HTTP/1.1 200"); at != std::string::npos;
       at = all.find("HTTP/1.1 200", at + 1)) {
    ++responses;
  }
  EXPECT_EQ(responses, static_cast<size_t>(kRequests));
  // The close that ended the read loop was the post-drain idle expiry,
  // not a write-stall abort (progress never stopped for 2s).
  EXPECT_TRUE(WaitFor([&] { return server.stats().timeouts_idle.load() >= 1; }));
  EXPECT_EQ(server.stats().timeouts_write_stall.load(), 0u);
  EXPECT_TRUE(WaitFor([&] { return server.open_connections() == 0; }));
  server.Stop();
}

TEST(ConnLifecycleTest, PipelinedByteAtATimeNeverTripsHeaderDeadline) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster());
  ServerOptions opts;
  opts.lifecycle.header_timeout_ms = 250;
  opts.lifecycle.timer_tick_ms = 5;
  HttpServer server(&cluster, opts);
  ASSERT_TRUE(server.Start().ok());

  // Ten pipelined requests dribbled one byte every 2ms: each request's
  // header completes in ~50ms (inside the 250ms window), but the stream
  // as a whole takes ~0.5s — far past a single window. The per-request
  // restamp is what keeps the deadline from firing while bytes flow.
  constexpr int kRequests = 10;
  std::string stream;
  for (int i = 0; i < kRequests; ++i) {
    stream += "GET /healthz HTTP/1.1\r\n\r\n";
  }
  RawSocket conn;
  ASSERT_TRUE(conn.ConnectTo(server.port()));
  std::string responses;
  char buf[512];
  for (char byte : stream) {
    ASSERT_TRUE(conn.WriteStr(std::string_view(&byte, 1)));
    SleepMs(2);
    // Drain whatever responses have arrived (non-blocking).
    pollfd p{conn.fd, POLLIN, 0};
    while (::poll(&p, 1, 0) > 0) {
      ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "server closed a flowing connection";
      responses.append(buf, static_cast<size_t>(n));
      p.revents = 0;
    }
  }
  // Collect the tail.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    size_t count = 0;
    for (size_t pos = responses.find("HTTP/1.1 200");
         pos != std::string::npos;
         pos = responses.find("HTTP/1.1 200", pos + 1)) {
      ++count;
    }
    if (count >= kRequests) break;
    pollfd p{conn.fd, POLLIN, 0};
    if (::poll(&p, 1, 100) > 0) {
      ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "server closed a flowing connection";
      responses.append(buf, static_cast<size_t>(n));
    }
  }
  size_t count = 0;
  for (size_t pos = responses.find("HTTP/1.1 200"); pos != std::string::npos;
       pos = responses.find("HTTP/1.1 200", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(kRequests));
  EXPECT_EQ(server.stats().timeouts_header.load(), 0u);
  EXPECT_EQ(server.stats().responses_408.load(), 0u);
  server.Stop();
}

// ----- EventLoop EINTR bound -----

void IgnoreSignal(int) {}

TEST(EventLoopTest, SignalStormDoesNotExtendWaitBeyondBudget) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so poll/epoll_wait
  // actually return EINTR.
  struct sigaction sa{};
  sa.sa_handler = IgnoreSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  EventLoop loop;
  int tag = 0;
  ASSERT_TRUE(loop.Add(pipe_fds[0], true, false, &tag).ok());

  std::atomic<bool> done{false};
  pthread_t victim = pthread_self();
  std::thread storm([&] {
    while (!done.load()) {
      pthread_kill(victim, SIGUSR1);
      SleepMs(10);
    }
  });

  // A 300ms wait peppered by a signal every 10ms: the EINTR fix recomputes
  // the remaining budget, so the wait ends near 300ms — not 300ms after
  // the *last* signal (which would be unbounded while the storm lasts).
  std::vector<IoEvent> events;
  auto start = std::chrono::steady_clock::now();
  int n = loop.Wait(events, 300);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  done.store(true);
  storm.join();
  EXPECT_EQ(n, 0);  // Timed out; the pipe never became readable.
  EXPECT_GE(elapsed_ms, 280);
  EXPECT_LE(elapsed_ms, 2000);

  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  sigaction(SIGUSR1, &old, nullptr);
}

// ----- SimpleHttpClient timeouts against unresponsive listeners -----

struct StallListener {
  int listen_fd = -1;
  uint16_t port = 0;

  bool Open(int backlog = 8) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return false;
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
    return ::listen(listen_fd, backlog) == 0;
  }
  ~StallListener() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

TEST(ClientTimeoutTest, ReadTimeoutAgainstAcceptThenStall) {
  StallListener listener;
  ASSERT_TRUE(listener.Open());
  std::atomic<bool> done{false};
  std::thread acceptor([&] {
    int fd = ::accept(listener.listen_fd, nullptr, nullptr);
    while (!done.load()) SleepMs(5);  // Accept, then say nothing, ever.
    if (fd >= 0) ::close(fd);
  });

  ClientOptions opts;
  opts.read_timeout_ms = 150;
  SimpleHttpClient client(opts);
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port).ok());
  auto start = std::chrono::steady_clock::now();
  auto response = client.RoundTrip("GET", "/healthz");
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status();
  EXPECT_LT(elapsed_ms, 5000);  // Returned on the deadline, not a hang.
  EXPECT_GE(client.client_stats().timeouts, 1u);
  done.store(true);
  acceptor.join();
}

TEST(ClientTimeoutTest, HalfClosedServerYieldsPromptErrorNotHang) {
  StallListener listener;
  ASSERT_TRUE(listener.Open());
  std::atomic<bool> done{false};
  std::thread acceptor([&] {
    int fd = ::accept(listener.listen_fd, nullptr, nullptr);
    if (fd >= 0) ::shutdown(fd, SHUT_WR);  // Half-close: EOF to the client.
    while (!done.load()) SleepMs(5);
    if (fd >= 0) ::close(fd);
  });

  ClientOptions opts;
  opts.read_timeout_ms = 2000;
  SimpleHttpClient client(opts);
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port).ok());
  auto start = std::chrono::steady_clock::now();
  auto response = client.RoundTrip("GET", "/healthz");
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_FALSE(response.ok());
  // EOF is a transport error, detected immediately — well before the
  // 2s read deadline.
  EXPECT_LT(elapsed_ms, 1000);
  done.store(true);
  acceptor.join();
}

TEST(ClientTimeoutTest, ConnectTimeoutAgainstFullBacklog) {
  // listen(fd, 0) + unaccepted connects fill the accept queue; loopback
  // SYNs are then dropped, so a further connect can only time out.
  StallListener listener;
  ASSERT_TRUE(listener.Open(/*backlog=*/0));
  std::vector<int> fillers;
  for (int i = 0; i < 6; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  SleepMs(50);  // Let the fillers occupy the queue.

  ClientOptions opts;
  opts.connect_timeout_ms = 200;
  SimpleHttpClient client(opts);
  auto start = std::chrono::steady_clock::now();
  Status status = client.Connect("127.0.0.1", listener.port);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_FALSE(status.ok());
  EXPECT_LT(elapsed_ms, 5000);
  for (int fd : fillers) ::close(fd);
}

// ----- Retry with Retry-After over a shedding server -----

TEST(ClientRetryTest, RetriesShed503sHonoringRetryAfterUntilSuccess) {
  ClusterOptions copts = SmallCluster(1);
  copts.queue_capacity = 2;
  copts.dispatch_max_pauses = 0;
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, copts);
  HttpServer server(&cluster, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  // Park the shard and fill its queue so page requests shed with 503.
  cluster.SuspendShard(0);
  std::vector<SimpleHttpClient> parked(2);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(parked[i].Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(parked[i]
                    .Send("GET", "/page/" + std::to_string(i) + "?t=" +
                                     std::to_string((i + 1) * kSecond))
                    .ok());
  }
  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().requests_total.load() >= 2; }));

  std::thread resumer([&] {
    SleepMs(150);
    cluster.ResumeShard(0);
  });

  ClientOptions opts;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff_ms = 20;
  opts.retry.retry_after_cap_ms = 40;  // Retry-After: 1 capped to 40ms.
  opts.seed = 4242;
  SimpleHttpClient client(opts);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  auto response = client.RoundTripWithRetry(
      "GET", "/page/5?t=" + std::to_string(10 * kSecond));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  EXPECT_GE(client.client_stats().retries, 1u);

  resumer.join();
  for (auto& p : parked) {
    auto r = p.Receive();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200);
  }
  server.Stop();
}

TEST(ClientRetryTest, InjectedConnectResetsExhaustRetryBudget) {
  // A client-side fault mirror that resets every connection on accept:
  // RoundTripWithRetry must reconnect per attempt, burn the whole budget,
  // and report the injected faults in its stats.
  fault::SocketFaultOptions fopts;
  fopts.accept_reset_probability = 1.0;
  fopts.read_reset_probability = 0;
  fopts.write_reset_probability = 0;
  fopts.dribble_probability = 0;
  fopts.short_io_probability = 0;
  fopts.eagain_probability = 0;
  fault::SocketFaultInjector faults(11, fopts);

  ClientOptions opts;
  opts.socket_faults = &faults;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_ms = 1;
  opts.retry.max_backoff_ms = 5;
  SimpleHttpClient client(opts);

  // A real listener so TCP connects succeed; the injected reset happens at
  // the fault seam above it.
  StallListener listener;
  ASSERT_TRUE(listener.Open());
  EXPECT_FALSE(client.Connect("127.0.0.1", listener.port).ok());
  auto response = client.RoundTripWithRetry("GET", "/healthz");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(client.client_stats().retries, 2u);  // max_attempts - 1.
  EXPECT_GE(client.client_stats().injected_faults, 3u);
}

TEST(ClientReuseTest, SequentialRequestsReuseOneConnection) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster(1));
  HttpServer server(&cluster, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 5; ++i) {
    auto r = client.RoundTrip(
        "GET", "/page/" + std::to_string(i) + "?t=" +
                   std::to_string((i + 1) * kSecond));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->status, 200);
  }
  // One dial, five requests: four rode the kept-alive connection.
  EXPECT_EQ(client.client_stats().requests, 5u);
  EXPECT_EQ(client.client_stats().reuses, 4u);
  EXPECT_EQ(client.client_stats().reconnects, 0u);
  // The server agrees there was exactly one connection.
  EXPECT_EQ(server.stats().connections_accepted.load(), 1u);
  server.Stop();
}

TEST(ClientRetryTest, ReconnectsWhenServerDiesBetweenRequests) {
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, SmallCluster(1));
  HttpServer first(&cluster, ServerOptions{});
  ASSERT_TRUE(first.Start().ok());
  const uint16_t port = first.port();

  ClientOptions opts;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff_ms = 10;
  SimpleHttpClient client(opts);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  auto r = client.RoundTripWithRetry(
      "GET", "/page/1?t=" + std::to_string(kSecond));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);

  // The server dies wholesale between requests; a replacement comes up on
  // the same port (SO_REUSEADDR). The client's next round trip finds its
  // cached connection dead, reconnects, and succeeds — no caller-visible
  // error.
  first.Stop();
  WarehouseCluster cluster2(SmallCorpus(), std::nullopt, SmallCluster(1));
  ServerOptions sopts;
  sopts.port = port;
  HttpServer second(&cluster2, sopts);
  ASSERT_TRUE(second.Start().ok());

  r = client.RoundTripWithRetry("GET",
                                "/page/2?t=" + std::to_string(2 * kSecond));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->status, 200);
  EXPECT_GE(client.client_stats().reconnects, 1u);
  second.Stop();
}

// ----- Degraded serving over the wire -----

/// Finds (t_clear, t_outage): a quiet minute before the first origin
/// outage, and the midpoint of that outage window. The schedule is
/// regenerated exactly as WarehouseCluster derives it for shard 0.
bool FindOutageTimes(const fault::FaultSchedule& schedule, SimTime* t_clear,
                     SimTime* t_outage) {
  for (const fault::FaultWindow& w : schedule.windows) {
    if (w.kind != fault::FaultKind::kOriginOutage) continue;
    // A quiet minute strictly before this window.
    for (SimTime t = kMinute; t + kMinute < w.start; t += kMinute) {
      if (!schedule.AnyActiveAt(t) && !schedule.AnyActiveAt(t + kSecond)) {
        *t_clear = t;
        *t_outage = w.start + (w.end - w.start) / 2;
        return true;
      }
    }
  }
  return false;
}

fault::FaultScheduleOptions OutageOnlySchedule() {
  fault::FaultScheduleOptions fopts;
  fopts.horizon = kDay;
  fopts.tier_losses = 0;
  fopts.tier_outages = 0;
  fopts.read_error_bursts = 0;
  fopts.store_error_bursts = 0;
  fopts.latency_spikes = 0;
  fopts.origin_error_bursts = 0;
  fopts.origin_slowdowns = 0;
  fopts.origin_outages = 3;
  fopts.mean_window = 2 * kHour;
  return fopts;
}

TEST(DegradedServingTest, StaleAnd503FailedContractsOverTheWire) {
  constexpr uint64_t kFaultSeed = 99;
  fault::FaultSchedule schedule = fault::FaultSchedule::Generate(
      HashCombine(kFaultSeed, 0), OutageOnlySchedule());
  SimTime t_clear = 0, t_outage = 0;
  ASSERT_TRUE(FindOutageTimes(schedule, &t_clear, &t_outage))
      << schedule.ToString();

  for (DegradedPolicy policy :
       {DegradedPolicy::kServe200, DegradedPolicy::kFail503}) {
    SCOPED_TRACE(policy == DegradedPolicy::kServe200 ? "serve200"
                                                     : "fail503");
    ClusterOptions copts = SmallCluster(1);
    copts.faults = OutageOnlySchedule();
    copts.fault_seed = kFaultSeed;
    // Strong consistency: a known-stale copy is validated against the
    // origin, so an outage forces the degradation ladder.
    copts.warehouse.constraints.default_consistency =
        core::ConsistencyMode::kStrong;
    WarehouseCluster cluster(SmallCorpus(), std::nullopt, copts);
    corpus::RawId container = cluster.shard(0).corpus().page(0).container;

    ServerOptions sopts;
    sopts.degraded_critical = policy;
    HttpServer server(&cluster, sopts);
    ASSERT_TRUE(server.Start().ok());

    SimpleHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

    // Clean weather: page 0 is fetched and cached, no degradation.
    auto fresh = client.RoundTrip(
        "GET", "/page/0?t=" + std::to_string(t_clear));
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh->status, 200);
    EXPECT_TRUE(fresh->Header("x-cbfww-degraded").empty());

    // The origin revs page 0's container: the cached copy is now stale.
    auto modified = client.RoundTrip(
        "POST", "/modify/" + std::to_string(container) +
                    "?t=" + std::to_string(t_clear + kSecond));
    ASSERT_TRUE(modified.ok());
    EXPECT_EQ(modified->status, 202);

    // Mid-outage revisit: validation is impossible, the resident stale
    // copy is handed out — 200 + header, or 503 under kFail503.
    auto stale = client.RoundTrip(
        "GET", "/page/0?t=" + std::to_string(t_outage));
    ASSERT_TRUE(stale.ok());
    EXPECT_EQ(stale->Header("x-cbfww-degraded"), "stale") << stale->status;
    EXPECT_EQ(stale->status,
              policy == DegradedPolicy::kServe200 ? 200 : 503);
    if (policy == DegradedPolicy::kFail503) {
      EXPECT_FALSE(stale->Header("retry-after").empty());
    }

    // A never-seen page mid-outage: nothing cached, no summary — the
    // ladder is exhausted and the answer is always 503 "failed".
    auto failed = client.RoundTrip(
        "GET", "/page/30?t=" + std::to_string(t_outage + kSecond));
    ASSERT_TRUE(failed.ok());
    EXPECT_EQ(failed->status, 503);
    EXPECT_EQ(failed->Header("x-cbfww-degraded"), "failed");
    EXPECT_FALSE(failed->Header("retry-after").empty());

    // The per-route ledger on /metrics agrees.
    auto metrics = client.RoundTrip("GET", "/metrics");
    ASSERT_TRUE(metrics.ok());
    EXPECT_NE(metrics->body.find("cbfww_route_degraded_total{route=\"page\""
                                 ",mode=\"stale\"} 1"),
              std::string::npos)
        << metrics->body;
    EXPECT_NE(metrics->body.find("cbfww_route_degraded_total{route=\"page\""
                                 ",mode=\"failed\"} 1"),
              std::string::npos);
    server.Stop();
  }
}

// ----- POST /admin/drain-report at io_threads > 1 -----

TEST(DrainReportTest, QuiescedWarehouseReportAtAnyIoThreadCount) {
  ClusterOptions copts = SmallCluster(2);
  copts.producer_lanes = 2;
  WarehouseCluster cluster(SmallCorpus(), std::nullopt, copts);
  ServerOptions sopts;
  sopts.io_threads = 2;
  HttpServer server(&cluster, sopts);
  ASSERT_TRUE(server.Start().ok());

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (uint64_t p = 0; p < 8; ++p) {
    auto r = client.RoundTrip("GET", "/page/" + std::to_string(p) + "?t=" +
                                         std::to_string((p + 1) * kSecond));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, 200);
  }

  // GET /metrics cannot produce the warehouse section here: with two IO
  // threads "idle" is not a stable claim, so full_report stays 0.
  auto metrics = client.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("cbfww_metrics_full_report 0"),
            std::string::npos);
  EXPECT_EQ(metrics->body.find("cbfww_warehouse_requests_total"),
            std::string::npos);

  // Wrong method first.
  auto got = client.RoundTrip("GET", "/admin/drain-report");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->status, 405);

  // The drain-report path quiesces all loops, drains the cluster, and
  // emits the full warehouse section regardless of io_threads.
  auto report = client.RoundTrip("POST", "/admin/drain-report");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status, 200);
  EXPECT_NE(report->body.find("cbfww_warehouse_requests_total"),
            std::string::npos)
      << report->body;
  EXPECT_NE(report->body.find("cbfww_served_from_total"), std::string::npos);
  EXPECT_EQ(server.stats().drain_reports.load(), 1u);

  // The latch is released: serving continues and a second report works.
  auto after = client.RoundTrip(
      "GET", "/page/1?t=" + std::to_string(100 * kSecond));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
  auto second = client.RoundTrip("POST", "/admin/drain-report");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(server.stats().drain_reports.load(), 2u);

  // A suspended shard cannot be drained: the report answers 409 instead
  // of deadlocking the quiesce.
  cluster.SuspendShard(0);
  auto refused = client.RoundTrip("POST", "/admin/drain-report");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 409);
  cluster.ResumeShard(0);
  server.Stop();
}

}  // namespace
}  // namespace cbfww::server
