#include <gtest/gtest.h>

#include <cmath>

#include "text/summarizer.h"
#include "text/term_vector.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace cbfww::text {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer t;
  auto tokens = t.Tokenize("Kyoto Station Access");
  EXPECT_EQ(tokens, (std::vector<std::string>{"kyoto", "station", "access"}));
}

TEST(TokenizerTest, DropsStopwordsAndShortTokens) {
  Tokenizer t;
  auto tokens = t.Tokenize("the access to a station");
  EXPECT_EQ(tokens, (std::vector<std::string>{"access", "station"}));
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.min_token_length = 1;
  Tokenizer t(opts);
  auto tokens = t.Tokenize("the a x");
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "a", "x"}));
}

TEST(TokenizerTest, SplitsOnPunctuationAndDigitsKept) {
  Tokenizer t;
  auto tokens = t.Tokenize("data-warehouse: cidr2003!");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"data", "warehouse", "cidr2003"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, DuplicatesPreserved) {
  Tokenizer t;
  auto tokens = t.Tokenize("cache cache cache");
  EXPECT_EQ(tokens.size(), 3u);
}

TEST(TokenizerTest, StopwordLookup) {
  EXPECT_TRUE(Tokenizer::IsStopword("the"));
  EXPECT_TRUE(Tokenizer::IsStopword("and"));
  EXPECT_FALSE(Tokenizer::IsStopword("warehouse"));
}

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  TermId a = v.Intern("cache");
  TermId b = v.Intern("cache");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.TermOf(a), "cache");
}

TEST(VocabularyTest, LookupUnknown) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("nothing"), kInvalidTermId);
  v.Intern("x");
  EXPECT_NE(v.Lookup("x"), kInvalidTermId);
}

TEST(VocabularyTest, DocumentFrequencyCountsOncePerDoc) {
  Vocabulary v;
  TermId a = v.Intern("a");
  TermId b = v.Intern("b");
  v.AddDocument({a, a, a, b});
  v.AddDocument({a});
  EXPECT_EQ(v.DocumentFrequency(a), 2u);
  EXPECT_EQ(v.DocumentFrequency(b), 1u);
  EXPECT_EQ(v.num_documents(), 2u);
}

// ---------------------------------------------------------------------------
// TermVector
// ---------------------------------------------------------------------------

TEST(TermVectorTest, FromUnsortedMergesDuplicates) {
  TermVector v = TermVector::FromUnsorted({{3, 1.0}, {1, 2.0}, {3, 0.5}});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.WeightOf(1), 2.0);
  EXPECT_DOUBLE_EQ(v.WeightOf(3), 1.5);
  EXPECT_DOUBLE_EQ(v.WeightOf(2), 0.0);
}

TEST(TermVectorTest, FromCounts) {
  TermVector v = TermVector::FromCounts({5, 5, 7});
  EXPECT_DOUBLE_EQ(v.WeightOf(5), 2.0);
  EXPECT_DOUBLE_EQ(v.WeightOf(7), 1.0);
}

TEST(TermVectorTest, AddInsertsSorted) {
  TermVector v;
  v.Add(10, 1.0);
  v.Add(2, 1.0);
  v.Add(10, 0.5);
  EXPECT_EQ(v.entries().front().first, 2u);
  EXPECT_DOUBLE_EQ(v.WeightOf(10), 1.5);
}

TEST(TermVectorTest, DotAndNorm) {
  TermVector a = TermVector::FromUnsorted({{1, 3.0}, {2, 4.0}});
  TermVector b = TermVector::FromUnsorted({{2, 2.0}, {3, 9.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 8.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(TermVectorTest, CosineIdenticalIsOne) {
  TermVector a = TermVector::FromUnsorted({{1, 1.0}, {2, 2.0}});
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
}

TEST(TermVectorTest, CosineOrthogonalIsZero) {
  TermVector a = TermVector::FromUnsorted({{1, 1.0}});
  TermVector b = TermVector::FromUnsorted({{2, 1.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(b), 0.0);
}

TEST(TermVectorTest, CosineEmptyIsZero) {
  TermVector a;
  TermVector b = TermVector::FromUnsorted({{1, 1.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(b), 0.0);
}

TEST(TermVectorTest, L2Distance) {
  TermVector a = TermVector::FromUnsorted({{1, 1.0}});
  TermVector b = TermVector::FromUnsorted({{2, 1.0}});
  EXPECT_NEAR(a.L2Distance(b), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.L2Distance(a), 0.0);
}

TEST(TermVectorTest, AddScaledMergesAndScales) {
  TermVector a = TermVector::FromUnsorted({{1, 1.0}, {2, 1.0}});
  TermVector b = TermVector::FromUnsorted({{2, 1.0}, {3, 2.0}});
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(1), 1.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(2), 3.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(3), 4.0);
}

TEST(TermVectorTest, ScaleAndPrune) {
  TermVector a = TermVector::FromUnsorted({{1, 1.0}, {2, 1e-15}});
  a.Prune();
  EXPECT_EQ(a.size(), 1u);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a.WeightOf(1), 2.0);
}

TEST(TermVectorTest, TopKKeepsHeaviest) {
  TermVector a =
      TermVector::FromUnsorted({{1, 0.1}, {2, 5.0}, {3, 3.0}, {4, 0.2}});
  TermVector top = a.TopK(2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top.WeightOf(2), 5.0);
  EXPECT_DOUBLE_EQ(top.WeightOf(3), 3.0);
  // TopK with k >= size returns everything.
  EXPECT_EQ(a.TopK(10).size(), 4u);
}

// Property sweep: AddScaled(x, 1) then AddScaled(x, -1) is identity.
class TermVectorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TermVectorRoundTrip, AddThenSubtractIsIdentity) {
  int seed = GetParam();
  TermVector a;
  TermVector b;
  for (int i = 0; i < 20; ++i) {
    a.Add((seed * 31 + i * 7) % 50, (i % 5) + 0.5);
    b.Add((seed * 17 + i * 3) % 50, (i % 3) + 0.25);
  }
  TermVector orig = a;
  a.AddScaled(b, 1.0);
  a.AddScaled(b, -1.0);
  a.Prune(1e-9);
  orig.Prune(1e-9);
  ASSERT_EQ(a.size(), orig.size());
  for (const auto& [term, w] : orig.entries()) {
    EXPECT_NEAR(a.WeightOf(term), w, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermVectorRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// TF-IDF
// ---------------------------------------------------------------------------

TEST(TfIdfTest, RareTermsWeighMore) {
  Vocabulary vocab;
  TfIdfVectorizer vec(&vocab);
  // "common" appears in all docs, "rare" in one.
  vec.Vectorize("common rare", true);
  vec.Vectorize("common other", true);
  vec.Vectorize("common third", true);
  TermVector v = vec.Vectorize("common rare", false);
  TermId common = vocab.Lookup("common");
  TermId rare = vocab.Lookup("rare");
  EXPECT_GT(v.WeightOf(rare), v.WeightOf(common));
}

TEST(TfIdfTest, TfIsSublinear) {
  Vocabulary vocab;
  TfIdfVectorizer vec(&vocab);
  TermVector v = vec.Vectorize("word word word word other", true);
  TermId word = vocab.Lookup("word");
  TermId other = vocab.Lookup("other");
  // 4 occurrences weigh more than 1 but less than 4x.
  EXPECT_GT(v.WeightOf(word), v.WeightOf(other));
  EXPECT_LT(v.WeightOf(word), 4.0 * v.WeightOf(other));
}

TEST(TfIdfTest, NormalizeMakesUnitNorm) {
  Vocabulary vocab;
  TfIdfVectorizer vec(&vocab);
  TermVector v = vec.Vectorize("a few words here now", true);
  TfIdfVectorizer::Normalize(v);
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
}

TEST(TfIdfTest, NormalizeZeroVectorNoop) {
  TermVector v;
  TfIdfVectorizer::Normalize(v);
  EXPECT_EQ(v.Norm(), 0.0);
}

TEST(TfIdfTest, StatisticsOnlyWhenRequested) {
  Vocabulary vocab;
  TfIdfVectorizer vec(&vocab);
  vec.Vectorize("hello world", false);
  EXPECT_EQ(vocab.num_documents(), 0u);
  vec.Vectorize("hello world", true);
  EXPECT_EQ(vocab.num_documents(), 1u);
}

TEST(TfIdfTest, SimilarDocumentsHaveHighCosine) {
  Vocabulary vocab;
  TfIdfVectorizer vec(&vocab);
  TermVector a = vec.Vectorize("kyoto travel guide station bus", true);
  TermVector b = vec.Vectorize("kyoto travel station subway", true);
  TermVector c = vec.Vectorize("database stream query aggregate", true);
  EXPECT_GT(a.Cosine(b), a.Cosine(c));
}

// ---------------------------------------------------------------------------
// Summarizer (levels of detail)
// ---------------------------------------------------------------------------

TEST(SummarizerTest, BoundsTermsAndSize) {
  SummarizerOptions opts;
  opts.max_terms = 4;
  opts.bytes_per_term = 10;
  Summarizer s(opts);
  TermVector big;
  for (TermId t = 0; t < 100; ++t) big.Add(t, 1.0 + t);
  DocumentSummary sum = s.Summarize(big);
  EXPECT_EQ(sum.terms.size(), 4u);
  EXPECT_EQ(sum.size_bytes, 40u);
  // The kept terms are the heaviest ones.
  EXPECT_GT(sum.terms.WeightOf(99), 0.0);
  EXPECT_EQ(sum.terms.WeightOf(0), 0.0);
}

TEST(SummarizerTest, CoverageInUnitInterval) {
  Summarizer s;
  TermVector v;
  for (TermId t = 0; t < 100; ++t) v.Add(t, t < 5 ? 10.0 : 0.1);
  DocumentSummary sum = s.Summarize(v);
  EXPECT_GT(sum.weight_coverage, 0.9);  // Heavy terms dominate the mass.
  EXPECT_LE(sum.weight_coverage, 1.0);
}

TEST(SummarizerTest, SmallDocUnchanged) {
  Summarizer s;
  TermVector v = TermVector::FromUnsorted({{1, 2.0}, {2, 1.0}});
  DocumentSummary sum = s.Summarize(v);
  EXPECT_EQ(sum.terms.size(), 2u);
  EXPECT_NEAR(sum.weight_coverage, 1.0, 1e-12);
}

TEST(SummarizerTest, EmptyDoc) {
  Summarizer s;
  DocumentSummary sum = s.Summarize(TermVector());
  EXPECT_EQ(sum.terms.size(), 0u);
  EXPECT_EQ(sum.weight_coverage, 0.0);
}

}  // namespace
}  // namespace cbfww::text
