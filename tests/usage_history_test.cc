#include <gtest/gtest.h>

#include <cmath>

#include "core/usage_history.h"
#include "util/rng.h"

namespace cbfww::core {
namespace {

// ---------------------------------------------------------------------------
// UsageHistory (Table 2 attributes)
// ---------------------------------------------------------------------------

TEST(UsageHistoryTest, FreshObjectHasNeverTimes) {
  UsageHistory h;
  EXPECT_EQ(h.frequency(), 0u);
  EXPECT_EQ(h.firstref(), kNeverTime);
  EXPECT_EQ(h.LastKRef(1), kNeverTime);
  EXPECT_EQ(h.LastKMod(1), kNeverTime);
  EXPECT_EQ(h.shared(), 0u);
}

TEST(UsageHistoryTest, FirstrefFixedAtFirstAccess) {
  UsageHistory h;
  h.RecordReference(100);
  h.RecordReference(200);
  EXPECT_EQ(h.firstref(), 100);
  EXPECT_EQ(h.frequency(), 2u);
}

TEST(UsageHistoryTest, LastKRefOrdering) {
  UsageHistory h(/*k_depth=*/3);
  h.RecordReference(10);
  h.RecordReference(20);
  h.RecordReference(30);
  // k=1 is the most recent (paper: k=1 gives the LRU attribute).
  EXPECT_EQ(h.LastKRef(1), 30);
  EXPECT_EQ(h.LastKRef(2), 20);
  EXPECT_EQ(h.LastKRef(3), 10);
}

TEST(UsageHistoryTest, LastKRefBeyondHistoryIsNegInfinity) {
  UsageHistory h(3);
  h.RecordReference(10);
  // Paper: t_i^k = -inf when accessed fewer than k times.
  EXPECT_EQ(h.LastKRef(2), kNeverTime);
  EXPECT_EQ(h.LastKRef(0), kNeverTime);  // Invalid k.
  EXPECT_EQ(h.LastKRef(4), kNeverTime);  // Beyond retained depth.
}

TEST(UsageHistoryTest, KDepthBoundsRetention) {
  UsageHistory h(2);
  for (SimTime t = 1; t <= 10; ++t) h.RecordReference(t);
  EXPECT_EQ(h.LastKRef(1), 10);
  EXPECT_EQ(h.LastKRef(2), 9);
  EXPECT_EQ(h.LastKRef(3), kNeverTime);  // Depth 2 only.
  EXPECT_EQ(h.frequency(), 10u);         // Count is unbounded.
}

TEST(UsageHistoryTest, ModificationsTracked) {
  UsageHistory h;
  h.RecordModification(50);
  h.RecordModification(150);
  EXPECT_EQ(h.modification_count(), 2u);
  EXPECT_EQ(h.LastKMod(1), 150);
  EXPECT_EQ(h.LastKMod(2), 50);
  EXPECT_EQ(h.MeanModificationInterval(), 100);
}

TEST(UsageHistoryTest, MeanModificationIntervalNeedsTwo) {
  UsageHistory h;
  EXPECT_EQ(h.MeanModificationInterval(), 0);
  h.RecordModification(10);
  EXPECT_EQ(h.MeanModificationInterval(), 0);
}

TEST(UsageHistoryTest, SharedSettable) {
  UsageHistory h;
  h.set_shared(3);
  EXPECT_EQ(h.shared(), 3u);
}

// ---------------------------------------------------------------------------
// SlidingWindowCounter
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, CountsWithinWindow) {
  SlidingWindowCounter c(100);
  c.RecordEvent(10);
  c.RecordEvent(50);
  c.RecordEvent(90);
  EXPECT_EQ(c.Count(100), 3u);
  // Event at t=10 expires once now - window >= 10.
  EXPECT_EQ(c.Count(110), 2u);
  EXPECT_EQ(c.Count(1000), 0u);
}

TEST(SlidingWindowTest, StateGrowsWithEvents) {
  SlidingWindowCounter c(kHour);
  for (SimTime t = 0; t < 1000; ++t) c.RecordEvent(t);
  // The overhead the paper attributes to sliding windows: state is O(events
  // in window).
  EXPECT_EQ(c.StateSize(), 1000u);
  c.Count(2 * kHour);
  EXPECT_EQ(c.StateSize(), 0u);
}

// ---------------------------------------------------------------------------
// LambdaAgingCounter
// ---------------------------------------------------------------------------

TEST(LambdaAgingTest, MatchesRecurrenceExactly) {
  // f_{i,j} = λ f* + (1-λ) f_{i,j-1} with λ=0.5, period 100.
  LambdaAgingCounter c(0.5, 100);
  // Period [0,100): 4 events.
  for (int i = 0; i < 4; ++i) c.RecordEvent(10 + i);
  // At t=100 one roll: f = 0.5*4 + 0.5*0 = 2.
  EXPECT_DOUBLE_EQ(c.Frequency(100), 2.0);
  // Period [100,200): 2 events; at t=200: f = 0.5*2 + 0.5*2 = 2.
  c.RecordEvent(150);
  c.RecordEvent(160);
  EXPECT_DOUBLE_EQ(c.Frequency(200), 2.0);
  // Idle period: f = 0.5*0 + 0.5*2 = 1.
  EXPECT_DOUBLE_EQ(c.Frequency(300), 1.0);
}

TEST(LambdaAgingTest, DecaysToZeroWhenIdle) {
  LambdaAgingCounter c(0.3, kHour);
  c.RecordEvent(1);
  double f1 = c.Frequency(kHour);
  EXPECT_GT(f1, 0.0);
  double f2 = c.Frequency(100 * kHour);
  EXPECT_LT(f2, 1e-6);
}

TEST(LambdaAgingTest, HigherLambdaAdaptsFaster) {
  LambdaAgingCounter fast(0.9, 100);
  LambdaAgingCounter slow(0.1, 100);
  // Warm both with steady traffic.
  for (SimTime t = 0; t < 1000; t += 10) {
    fast.RecordEvent(t);
    slow.RecordEvent(t);
  }
  double fast_before = fast.Frequency(1000);
  double slow_before = slow.Frequency(1000);
  // Traffic stops; after one idle period the fast-λ estimate collapses more.
  double fast_after = fast.Frequency(1100);
  double slow_after = slow.Frequency(1100);
  EXPECT_LT(fast_after / fast_before, slow_after / slow_before);
}

TEST(LambdaAgingTest, SeedValueSetsEstimate) {
  LambdaAgingCounter c(0.5, 100);
  c.SeedValue(7.5, 0);
  EXPECT_DOUBLE_EQ(c.Frequency(50), 7.5);
  // Seeded value ages like any other estimate.
  EXPECT_DOUBLE_EQ(c.Frequency(100), 3.75);
}

TEST(LambdaAgingTest, ApproximatesSteadyStateRate) {
  // Under steady traffic of r events/period, the fixed point is r.
  LambdaAgingCounter c(0.4, 100);
  Pcg32 rng(5);
  for (SimTime t = 0; t < 100000; ++t) {
    if (rng.NextBernoulli(0.05)) c.RecordEvent(t);  // ~5 events / period.
  }
  EXPECT_NEAR(c.Frequency(100000), 5.0, 1.5);
}

}  // namespace
}  // namespace cbfww::core
