// Chaos soak (ctest label: slow): day-long fault schedules over several
// seeds, single-warehouse and sharded-cluster, asserting the recovery
// contract holds at scale — acknowledged objects survive, invariants hold
// after a fault-free pass, and same-seed cluster runs reproduce exactly.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cluster/warehouse_cluster.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/fault_injector.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/clock.h"

namespace cbfww {
namespace {

corpus::CorpusOptions SoakCorpusOptions() {
  corpus::CorpusOptions copts;
  copts.num_sites = 4;
  copts.pages_per_site = 60;
  copts.seed = 404;
  return copts;
}

trace::WorkloadOptions SoakWorkloadOptions(uint64_t seed) {
  trace::WorkloadOptions w;
  w.horizon = kDay;
  w.sessions_per_hour = 80;
  w.modifications_per_hour = 30.0;
  w.seed = seed;
  return w;
}

fault::FaultScheduleOptions SoakScheduleOptions() {
  fault::FaultScheduleOptions fopts;
  fopts.horizon = kDay;
  fopts.tier_losses = 3;
  fopts.tier_outages = 2;
  fopts.read_error_bursts = 3;
  fopts.store_error_bursts = 2;
  fopts.origin_outages = 3;
  fopts.origin_error_bursts = 2;
  return fopts;
}

class ChaosSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoakTest, WarehouseSurvivesDayLongSchedule) {
  const uint64_t seed = GetParam();
  corpus::WebCorpus corpus(SoakCorpusOptions());
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  core::Warehouse wh(&corpus, &origin, nullptr, wopts);

  fault::FaultInjector injector(
      fault::FaultSchedule::Generate(seed, SoakScheduleOptions()), seed);
  wh.AttachFaultInjector(&injector);

  trace::WorkloadGenerator gen(&corpus, nullptr, SoakWorkloadOptions(seed));
  for (const trace::TraceEvent& e : gen.Generate()) {
    wh.ProcessEvent(e);
  }
  EXPECT_GE(wh.counters().tier_losses, 1u);
  EXPECT_GT(wh.counters().requests, 0u);

  // No acknowledged object lost, ever.
  for (const auto& [rid, rec] : wh.raw_records()) {
    if (!rec.acknowledged) continue;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    ASSERT_NE(wh.hierarchy().FastestTierOf(full_id), storage::kNoTier)
        << "acknowledged object " << rid << " lost (seed " << seed << ")";
  }

  // Structurally sound after a fault-free recovery pass.
  wh.AttachFaultInjector(nullptr);
  wh.Reconcile(kDay);
  wh.Tick(kDay + 2 * kHour);
  Status inv = wh.CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString() << " (seed " << seed << ")";
}

TEST_P(ChaosSoakTest, ClusterShardsFaultIndependentlyAndReproduce) {
  const uint64_t seed = GetParam();
  corpus::CorpusOptions copts = SoakCorpusOptions();

  cluster::ClusterOptions opts;
  opts.num_shards = 4;
  opts.warehouse.memory_bytes = 1ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 32ull * 1024 * 1024;
  opts.faults = SoakScheduleOptions();
  opts.fault_seed = seed;

  // Two identical runs: same corpus options, same trace, same fault seed.
  auto run_once = [&]() {
    cluster::WarehouseCluster cluster(copts, std::nullopt, opts);
    corpus::WebCorpus trace_corpus(copts);
    trace::WorkloadGenerator gen(&trace_corpus, nullptr,
                                 SoakWorkloadOptions(seed));
    cluster.Replay(gen.Generate());
    cluster::ClusterReport report = cluster.Report();
    std::ostringstream os;
    report.Print(os);

    // Per-shard fault domains are independent: each shard has its own
    // injector with its own derived seed and schedule.
    for (uint32_t i = 0; i < cluster.num_shards(); ++i) {
      EXPECT_NE(cluster.shard_injector(i), nullptr);
      if (cluster.shard_injector(i) == nullptr) continue;
      for (uint32_t j = i + 1; j < cluster.num_shards(); ++j) {
        EXPECT_NE(cluster.shard_injector(i)->schedule().ToString(),
                  cluster.shard_injector(j)->schedule().ToString());
      }
      // Acknowledged objects survive per shard.
      const core::Warehouse& wh = cluster.shard(i);
      for (const auto& [rid, rec] : wh.raw_records()) {
        if (!rec.acknowledged) continue;
        storage::StoreObjectId full_id =
            core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
        EXPECT_NE(wh.hierarchy().FastestTierOf(full_id), storage::kNoTier)
            << "shard " << i << " lost acknowledged object " << rid;
      }
    }
    return os.str();
  };

  std::string first = run_once();
  std::string second = run_once();
  EXPECT_EQ(first, second) << "cluster chaos replay not reproducible";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace cbfww
