#include <gtest/gtest.h>

#include <map>

#include "stream/count_min_sketch.h"
#include "stream/exponential_histogram.h"
#include "stream/stream_system.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace cbfww::stream {
namespace {

// ---------------------------------------------------------------------------
// CountMinSketch
// ---------------------------------------------------------------------------

TEST(CountMinSketchTest, NeverUnderestimates) {
  CountMinSketch sketch(0.01, 0.01);
  std::map<uint64_t, uint64_t> truth;
  Pcg32 rng(1);
  ZipfSampler zipf(500, 1.0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t item = zipf.Sample(rng);
    sketch.Add(item);
    ++truth[item];
  }
  for (const auto& [item, count] : truth) {
    EXPECT_GE(sketch.Estimate(item), count);
  }
}

TEST(CountMinSketchTest, ErrorBoundHolds) {
  const double eps = 0.01;
  CountMinSketch sketch(eps, 0.01);
  std::map<uint64_t, uint64_t> truth;
  Pcg32 rng(2);
  ZipfSampler zipf(1000, 0.9);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t item = zipf.Sample(rng);
    sketch.Add(item);
    ++truth[item];
  }
  // With probability 1-delta per item: error <= eps * N. Allow a couple of
  // outliers across 1000 items.
  int violations = 0;
  for (const auto& [item, count] : truth) {
    if (sketch.Estimate(item) > count + static_cast<uint64_t>(eps * n)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 10);
}

TEST(CountMinSketchTest, UnseenItemsUsuallyZeroish) {
  CountMinSketch sketch(0.001, 0.01);
  for (uint64_t i = 0; i < 100; ++i) sketch.Add(i);
  // An unseen item's estimate is bounded by eps*N = 0.1: must be 0.
  EXPECT_EQ(sketch.Estimate(999999), 0u);
}

TEST(CountMinSketchTest, WeightedAdds) {
  CountMinSketch sketch(0.01, 0.01);
  sketch.Add(7, 42);
  EXPECT_GE(sketch.Estimate(7), 42u);
  EXPECT_EQ(sketch.total(), 42u);
}

TEST(CountMinSketchTest, MemorySublinear) {
  CountMinSketch sketch(0.01, 0.01);
  Pcg32 rng(3);
  for (int i = 0; i < 1000000; ++i) sketch.Add(rng.Next());
  // 1M distinct-ish items in a fixed-size sketch.
  EXPECT_LT(sketch.MemoryBytes(), 200 * 1024u);
}

// ---------------------------------------------------------------------------
// ExponentialHistogram
// ---------------------------------------------------------------------------

TEST(ExponentialHistogramTest, ExactForSmallCounts) {
  ExponentialHistogram h(kHour);
  for (int i = 0; i < 4; ++i) h.RecordEvent(i * kMinute);
  EXPECT_EQ(h.Estimate(5 * kMinute), 4u);
}

TEST(ExponentialHistogramTest, ExpiresOldEvents) {
  ExponentialHistogram h(kHour);
  h.RecordEvent(0);
  h.RecordEvent(kMinute);
  EXPECT_EQ(h.Estimate(2 * kHour), 0u);
}

TEST(ExponentialHistogramTest, RelativeErrorBounded) {
  const uint32_t k = 8;  // eps ~ 2/k = 0.25.
  ExponentialHistogram h(kHour, k);
  std::deque<SimTime> exact;
  Pcg32 rng(4);
  SimTime t = 0;
  int checks = 0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.NextBounded(30) * kSecond;
    h.RecordEvent(t);
    exact.push_back(t);
    while (!exact.empty() && exact.front() <= t - kHour) exact.pop_front();
    if (i % 500 == 0 && exact.size() > 20) {
      double est = static_cast<double>(h.Estimate(t));
      double truth = static_cast<double>(exact.size());
      EXPECT_NEAR(est / truth, 1.0, 0.3) << "at i=" << i;
      ++checks;
    }
  }
  EXPECT_GT(checks, 10);
}

TEST(ExponentialHistogramTest, MemoryLogarithmic) {
  ExponentialHistogram h(10 * kHour, 8);
  for (SimTime t = 0; t < 10 * kHour; t += kSecond) h.RecordEvent(t);
  // 36000 events within the window, held in O(k log n) buckets.
  EXPECT_LT(h.bucket_count(), 100u);
}

// ---------------------------------------------------------------------------
// StreamSystem (the Table 1 DSMS column)
// ---------------------------------------------------------------------------

StreamSystem::Options SmallOptions() {
  StreamSystem::Options opts;
  opts.max_buffered_tuples = 16;
  return opts;
}

TEST(StreamSystemTest, AppendOnlyAggregates) {
  StreamSystem s(SmallOptions());
  for (uint64_t i = 1; i <= 10; ++i) {
    s.Append({static_cast<SimTime>(i) * kSecond, i % 3, i});
  }
  EXPECT_EQ(s.total_tuples(), 10u);
  EXPECT_EQ(s.sum_values(), 55u);
  EXPECT_DOUBLE_EQ(s.AvgValue(), 5.5);
  EXPECT_EQ(s.max_value(), 10u);
  EXPECT_GE(s.ApproxCount(1), 3u);  // Keys 1,4,7,10 -> key 1 appears 4x? 1%3..
}

TEST(StreamSystemTest, WindowCountApproximatesRecentTraffic) {
  StreamSystem::Options opts = SmallOptions();
  opts.window = kHour;
  StreamSystem s(opts);
  for (int i = 0; i < 100; ++i) {
    s.Append({static_cast<SimTime>(i) * kMinute, 1, 1});
  }
  // At t=100min, about 59-60 events fall in the last hour.
  uint64_t est = s.ApproxWindowCount(100 * kMinute);
  EXPECT_GT(est, 40u);
  EXPECT_LT(est, 80u);
}

TEST(StreamSystemTest, OldTuplesNotRetrievable) {
  StreamSystem s(SmallOptions());  // Buffer of 16.
  for (uint64_t i = 0; i < 100; ++i) {
    s.Append({static_cast<SimTime>(i), i, i});
  }
  EXPECT_EQ(s.buffered(), 16u);
  // Recent tuple: retrievable.
  EXPECT_TRUE(s.Retrieve(99, 99).ok());
  // Old tuple: discarded once processed (the paper's DSMS property).
  EXPECT_EQ(s.Retrieve(5, 5).status().code(), StatusCode::kNotFound);
}

TEST(StreamSystemTest, BoundedMemoryUnderUnboundedStream) {
  StreamSystem s(SmallOptions());
  Pcg32 rng(5);
  uint64_t bytes_early = 0;
  for (int i = 0; i < 100000; ++i) {
    s.Append({static_cast<SimTime>(i) * kSecond, rng.Next() % 1000, 1});
    if (i == 1000) bytes_early = s.MemoryBytes();
  }
  // State does not grow linearly with the stream.
  EXPECT_LT(s.MemoryBytes(), bytes_early * 4);
}

}  // namespace
}  // namespace cbfww::stream
