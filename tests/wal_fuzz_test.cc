// Recovery fuzzing (satellite of the crash-durability PR): throw seeded
// random damage — byte flips, zeroed ranges, truncations — at the
// checkpoint/WAL pair of a journaled warehouse and recover. The contract
// under arbitrary corruption:
//  - recovery never crashes and never corrupts memory (the suite runs
//    under ASan in the ci durability stage),
//  - WAL damage is survivable: recovery lands on a valid event prefix,
//    deterministically (recovering twice gives identical state), with
//    every acknowledged object still placed (log-before-ack),
//  - kDataLoss is raised if and only if the checkpoint itself is
//    unreadable — WAL damage alone never aborts recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/crash_point.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/clock.h"
#include "util/rng.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

corpus::CorpusOptions FuzzCorpusOptions() {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 30;
  copts.seed = 31;
  return copts;
}

core::WarehouseOptions FuzzWarehouseOptions(const std::string& dir) {
  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;
  wopts.disk_bytes = 64ull * 1024 * 1024;
  wopts.durability.dir = dir;
  return wopts;
}

struct Rig {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<core::Warehouse> wh;
};

Rig MakeRig(const std::string& dir) {
  Rig rig;
  rig.corpus = std::make_unique<corpus::WebCorpus>(FuzzCorpusOptions());
  rig.origin = std::make_unique<net::OriginServer>(rig.corpus.get(),
                                                   net::NetworkModel());
  rig.wh = std::make_unique<core::Warehouse>(rig.corpus.get(),
                                             rig.origin.get(), nullptr,
                                             FuzzWarehouseOptions(dir));
  return rig;
}

std::string DurableReport(core::Warehouse& wh) {
  std::ostringstream os;
  wh.PrintDurableReport(os);
  return os.str();
}

void AssertAckedObjectsPlaced(const core::Warehouse& wh,
                              const std::string& tag) {
  for (const auto& [rid, rec] : wh.raw_records()) {
    if (!rec.acknowledged) continue;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    ASSERT_NE(wh.hierarchy().FastestTierOf(full_id), storage::kNoTier)
        << tag << ": acknowledged object " << rid << " has no copy";
  }
}

/// Seeds a pristine journaled run once; fuzz iterations copy it.
class WalFuzzTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Process-unique root: ctest runs each case of this suite as its own
    // process, and a shared /tmp path would let one process's
    // SetUpTestSuite rebuild the pristine dir while another copies it.
    pristine_ = new std::string(testing::TempDir() + "/fuzz_" +
                                std::to_string(getpid()) + "_pristine");
    fs::remove_all(*pristine_);
    Rig victim = MakeRig(*pristine_);
    ASSERT_TRUE(victim.wh->OpenDurability().ok());
    trace::WorkloadOptions w;
    w.horizon = kHour;
    w.sessions_per_hour = 40;
    w.modifications_per_hour = 12;
    w.seed = 3;
    corpus::WebCorpus gen_corpus(FuzzCorpusOptions());
    trace::WorkloadGenerator gen(&gen_corpus, nullptr, w);
    for (const trace::TraceEvent& e : gen.Generate()) {
      victim.wh->ProcessEvent(e);
    }
    events_run_ = victim.wh->events_processed();
    ASSERT_GT(events_run_, 50u);
  }

  static void TearDownTestSuite() {
    fs::remove_all(*pristine_);
    delete pristine_;
    pristine_ = nullptr;
  }

  static std::string* pristine_;
  static uint64_t events_run_;
};

std::string* WalFuzzTest::pristine_ = nullptr;
uint64_t WalFuzzTest::events_run_ = 0;

/// Applies `count` random mutations to `path`: flips, zero ranges, or a
/// tail truncation.
void Mutilate(Pcg32& rng, const std::string& path, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    fault::CrashPoint p;
    p.offset_fraction = rng.NextDouble();
    switch (rng.NextBounded(4)) {
      case 0:
        p.effect = fault::CrashEffect::kTruncate;
        break;
      case 1:
        p.effect = fault::CrashEffect::kZeroRange;
        p.zero_len = 1 + rng.NextBounded(128);
        break;
      default:  // Byte flips twice as likely: the nastiest single fault.
        p.effect = fault::CrashEffect::kCorruptByte;
        break;
    }
    ASSERT_TRUE(fault::ApplyCrash(path, p).ok()) << path;
  }
}

TEST_F(WalFuzzTest, WalDamageAlwaysRecoversDeterministically) {
  Pcg32 rng(20260807, /*stream=*/1);
  for (int iter = 0; iter < 24; ++iter) {
    std::string tag = "wal_iter_" + std::to_string(iter);
    std::string dir = testing::TempDir() + "/fuzz_" +
                      std::to_string(getpid()) + "_" + tag;
    fs::remove_all(dir);
    fs::copy(*pristine_, dir, fs::copy_options::recursive);
    // Damage the WAL only; the checkpoint stays sound, so recovery must
    // always succeed on some valid prefix.
    Mutilate(rng, dir + "/warehouse.wal.1", 1 + rng.NextBounded(4));

    Rig first = MakeRig(dir);
    auto report = first.wh->OpenDurability();
    ASSERT_TRUE(report.ok()) << tag << ": " << report.status().ToString();
    EXPECT_TRUE(report->recovered) << tag;
    EXPECT_LE(report->events_processed, events_run_) << tag;
    AssertAckedObjectsPlaced(*first.wh, tag);
    Status inv = first.wh->CheckStorageInvariants();
    EXPECT_TRUE(inv.ok()) << tag << ": " << inv.ToString();
    std::string state = DurableReport(*first.wh);
    uint64_t replayed = report->events_processed;
    first = Rig{};  // Close files before the second recovery.

    Rig second = MakeRig(dir);
    auto again = second.wh->OpenDurability();
    ASSERT_TRUE(again.ok()) << tag;
    EXPECT_EQ(again->events_processed, replayed) << tag;
    EXPECT_EQ(DurableReport(*second.wh), state) << tag;
    fs::remove_all(dir);
  }
}

TEST_F(WalFuzzTest, CheckpointDamageIsDataLossNeverACrash) {
  Pcg32 rng(20260807, /*stream=*/2);
  int data_losses = 0;
  for (int iter = 0; iter < 12; ++iter) {
    std::string tag = "ckpt_iter_" + std::to_string(iter);
    std::string dir = testing::TempDir() + "/fuzz_" +
                      std::to_string(getpid()) + "_" + tag;
    fs::remove_all(dir);
    fs::copy(*pristine_, dir, fs::copy_options::recursive);
    Mutilate(rng, dir + "/warehouse.ckpt.1", 1 + rng.NextBounded(3));

    Rig rig = MakeRig(dir);
    auto report = rig.wh->OpenDurability();
    if (report.ok()) {
      // Possible only if every mutation was a no-op (e.g. truncate at
      // fraction 1.0) — then full recovery holds as usual.
      EXPECT_LE(report->events_processed, events_run_) << tag;
      AssertAckedObjectsPlaced(*rig.wh, tag);
    } else {
      // Damaged checkpoint: loud, typed refusal — never UB, never a
      // silently half-loaded warehouse.
      EXPECT_EQ(report.status().code(), StatusCode::kDataLoss)
          << tag << ": " << report.status().ToString();
      ++data_losses;
    }
    fs::remove_all(dir);
  }
  EXPECT_GT(data_losses, 0);  // The fuzzer actually bit at least once.
}

TEST_F(WalFuzzTest, CombinedDamageNeverLosesAckedPrefix) {
  Pcg32 rng(20260807, /*stream=*/3);
  for (int iter = 0; iter < 12; ++iter) {
    std::string tag = "both_iter_" + std::to_string(iter);
    std::string dir = testing::TempDir() + "/fuzz_" +
                      std::to_string(getpid()) + "_" + tag;
    fs::remove_all(dir);
    fs::copy(*pristine_, dir, fs::copy_options::recursive);
    Mutilate(rng, dir + "/warehouse.wal.1", 1 + rng.NextBounded(3));
    if (rng.NextBernoulli(0.5)) {
      Mutilate(rng, dir + "/warehouse.ckpt.1", 1);
    }
    Rig rig = MakeRig(dir);
    auto report = rig.wh->OpenDurability();
    if (report.ok()) {
      EXPECT_LE(report->events_processed, events_run_) << tag;
      AssertAckedObjectsPlaced(*rig.wh, tag);
      Status inv = rig.wh->CheckStorageInvariants();
      EXPECT_TRUE(inv.ok()) << tag << ": " << inv.ToString();
    } else {
      EXPECT_EQ(report.status().code(), StatusCode::kDataLoss) << tag;
    }
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace cbfww
