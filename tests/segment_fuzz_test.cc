// Corruption battery for the immutable segment format: randomized byte
// surgery — truncation, bit flips, zeroed ranges, and corruption aimed
// at the hash directory — applied to a known-good segment, 1000 cases
// per class. The contract under test is the full-coverage CRC design:
// every damaged file must yield a clean failure (kDataLoss from
// Open/ValidateAll/Lookup, or kNotFound) or byte-correct values; a
// wrong-byte serve is an automatic failure, as is any crash (this test
// runs under ASan in scripts/ci.sh segments).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "segment/segment_format.h"
#include "segment/segment_reader.h"
#include "segment/segment_writer.h"
#include "util/rng.h"
#include "util/status.h"

namespace cbfww {
namespace {

namespace fs = std::filesystem;

constexpr int kCasesPerClass = 1000;

class SegmentFuzzTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/segfuzz_" +
                           std::to_string(getpid()));
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    pristine_ = new std::string(*dir_ + "/pristine.seg");
    oracle_ = new std::unordered_map<uint64_t, std::string>();

    Pcg32 rng(20030107, 1);
    segment::SegmentWriter w;
    ASSERT_TRUE(w.Create(*pristine_).ok());
    for (int i = 0; i < 150; ++i) {
      uint64_t key = (static_cast<uint64_t>(rng.Next()) << 32) | rng.Next();
      if (oracle_->count(key)) continue;
      std::string value(rng.NextBounded(512), '\0');
      for (char& c : value) c = static_cast<char>(rng.NextBounded(256));
      ASSERT_TRUE(w.Add(key, value).ok());
      oracle_->emplace(key, std::move(value));
    }
    ASSERT_TRUE(w.Finish().ok());

    pristine_size_ = fs::file_size(*pristine_);
    // Directory offset, straight from the on-disk header (little-endian
    // u64 at byte 40: magic 8 + version 4 + flags 4 + record_count 8 +
    // data_offset 8 + data_bytes 8).
    std::ifstream in(*pristine_, std::ios::binary);
    in.seekg(40);
    unsigned char b[8];
    in.read(reinterpret_cast<char*>(b), 8);
    dir_offset_ = 0;
    for (int i = 7; i >= 0; --i) dir_offset_ = (dir_offset_ << 8) | b[i];
    ASSERT_GT(dir_offset_, segment::kSegmentHeaderSize);
    ASSERT_LT(dir_offset_, pristine_size_);
  }

  static void TearDownTestSuite() {
    fs::remove_all(*dir_);
    delete oracle_;
    delete pristine_;
    delete dir_;
  }

  /// Copies the pristine segment to a scratch path for one case.
  std::string FreshVictim() {
    std::string victim = *dir_ + "/victim.seg";
    fs::copy_file(*pristine_, victim, fs::copy_options::overwrite_existing);
    return victim;
  }

  static void WriteAt(const std::string& path, uint64_t offset,
                      const std::string& bytes) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static char ReadAt(const std::string& path, uint64_t offset) {
    std::ifstream f(path, std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    return c;
  }

  /// The core invariant: after arbitrary surgery, every observable
  /// outcome is a clean error or byte-correct data — never wrong bytes,
  /// never a crash. Returns the number of keys still served correctly.
  int CheckNeverWrongBytes(const std::string& path, const std::string& tag) {
    auto r = segment::SegmentReader::Open(path);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << tag;
      return 0;
    }
    // Open passed (damage may sit in a record body or be a no-op, e.g. a
    // flip that landed back on the same value). ValidateAll must either
    // pass or report data loss; it must not crash.
    Status va = (*r)->ValidateAll();
    if (!va.ok()) {
      EXPECT_EQ(va.code(), StatusCode::kDataLoss) << tag;
    }
    int correct = 0;
    for (const auto& [key, value] : *oracle_) {
      auto got = (*r)->Lookup(key);
      if (got.ok()) {
        // A served value must be the exact bytes that were written.
        if (*got != value) {
          ADD_FAILURE() << tag << " wrong bytes for key " << key;
        } else {
          ++correct;
        }
      } else {
        StatusCode code = got.status().code();
        EXPECT_TRUE(code == StatusCode::kNotFound ||
                    code == StatusCode::kDataLoss)
            << tag << " key " << key << ": " << got.status();
      }
    }
    // Keys never written must not materialize values out of damage.
    Pcg32 probe(99, 4);
    for (int i = 0; i < 32; ++i) {
      uint64_t key =
          (static_cast<uint64_t>(probe.Next()) << 32) | probe.Next();
      if (oracle_->count(key)) continue;
      auto got = (*r)->Lookup(key);
      EXPECT_FALSE(got.ok()) << tag << " absent key " << key
                             << " served " << got->size() << " bytes";
    }
    return correct;
  }

  static std::string* dir_;
  static std::string* pristine_;
  static std::unordered_map<uint64_t, std::string>* oracle_;
  static uint64_t pristine_size_;
  static uint64_t dir_offset_;
};

std::string* SegmentFuzzTest::dir_ = nullptr;
std::string* SegmentFuzzTest::pristine_ = nullptr;
std::unordered_map<uint64_t, std::string>* SegmentFuzzTest::oracle_ = nullptr;
uint64_t SegmentFuzzTest::pristine_size_ = 0;
uint64_t SegmentFuzzTest::dir_offset_ = 0;

TEST_F(SegmentFuzzTest, PristineBaseline) {
  // Sanity: the harness itself reports all keys correct on clean input.
  EXPECT_EQ(CheckNeverWrongBytes(*pristine_, "pristine"),
            static_cast<int>(oracle_->size()));
}

TEST_F(SegmentFuzzTest, Truncation) {
  Pcg32 rng(1001, 0);
  int opened = 0;
  for (int i = 0; i < kCasesPerClass; ++i) {
    std::string victim = FreshVictim();
    uint64_t new_size = rng.NextBounded(static_cast<uint32_t>(pristine_size_));
    fs::resize_file(victim, new_size);
    std::string tag = "truncate[" + std::to_string(i) + "] size " +
                      std::to_string(new_size);
    // Any truncation cuts the directory (it is the file tail), so Open
    // must always fail cleanly: geometry or CRC.
    auto r = segment::SegmentReader::Open(victim);
    ASSERT_FALSE(r.ok()) << tag;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << tag;
    if (r.ok()) ++opened;
  }
  EXPECT_EQ(opened, 0);
}

TEST_F(SegmentFuzzTest, BitFlips) {
  Pcg32 rng(1002, 0);
  for (int i = 0; i < kCasesPerClass; ++i) {
    std::string victim = FreshVictim();
    uint32_t flips = 1 + rng.NextBounded(8);
    for (uint32_t f = 0; f < flips; ++f) {
      uint64_t off = rng.NextBounded(static_cast<uint32_t>(pristine_size_));
      char c = ReadAt(victim, off);
      c = static_cast<char>(c ^ (1u << rng.NextBounded(8)));
      WriteAt(victim, off, std::string(1, c));
    }
    CheckNeverWrongBytes(victim,
                         "bitflip[" + std::to_string(i) + "] x" +
                             std::to_string(flips));
  }
}

TEST_F(SegmentFuzzTest, ZeroedRanges) {
  Pcg32 rng(1003, 0);
  for (int i = 0; i < kCasesPerClass; ++i) {
    std::string victim = FreshVictim();
    uint64_t off = rng.NextBounded(static_cast<uint32_t>(pristine_size_));
    uint64_t len = 1 + rng.NextBounded(4096);
    if (off + len > pristine_size_) len = pristine_size_ - off;
    WriteAt(victim, off, std::string(len, '\0'));
    CheckNeverWrongBytes(victim, "zero[" + std::to_string(i) + "] @" +
                                     std::to_string(off) + "+" +
                                     std::to_string(len));
  }
}

TEST_F(SegmentFuzzTest, DirectoryCorruption) {
  // Surgery confined to the two-level hash directory: bucket table
  // entries, slot arrays, and the directory CRC itself. Dangling or
  // cyclic probe structure must never escape the file or serve a wrong
  // record — the reader re-bounds every slot region and offset.
  Pcg32 rng(1004, 0);
  const uint64_t dir_len = pristine_size_ - dir_offset_;
  for (int i = 0; i < kCasesPerClass; ++i) {
    std::string victim = FreshVictim();
    std::string tag = "dir[" + std::to_string(i) + "]";
    switch (rng.NextBounded(3)) {
      case 0: {  // Bit flip inside the directory.
        uint64_t off = dir_offset_ + rng.NextBounded(
                                         static_cast<uint32_t>(dir_len));
        char c = ReadAt(victim, off);
        c = static_cast<char>(c ^ (1u << rng.NextBounded(8)));
        WriteAt(victim, off, std::string(1, c));
        break;
      }
      case 1: {  // Zero a directory range.
        uint64_t off = dir_offset_ + rng.NextBounded(
                                         static_cast<uint32_t>(dir_len));
        uint64_t len = 1 + rng.NextBounded(256);
        if (off + len > pristine_size_) len = pristine_size_ - off;
        WriteAt(victim, off, std::string(len, '\0'));
        break;
      }
      default: {  // Overwrite a whole 16-byte entry with random bytes
                  // (a "plausible but wrong" pointer, the nastiest case).
        uint64_t entries = dir_len / 16;
        uint64_t off = dir_offset_ + 16 * rng.NextBounded(
                                              static_cast<uint32_t>(entries));
        std::string junk(16, '\0');
        for (char& c : junk) c = static_cast<char>(rng.NextBounded(256));
        WriteAt(victim, off, junk);
        break;
      }
    }
    CheckNeverWrongBytes(victim, tag);
  }
}

}  // namespace
}  // namespace cbfww
