#include <gtest/gtest.h>

#include "core/constraint_manager.h"
#include "core/recommendation_manager.h"
#include "core/storage_manager.h"
#include "core/version_manager.h"
#include "index/inverted_index.h"

namespace cbfww::core {
namespace {

// ---------------------------------------------------------------------------
// ConstraintManager
// ---------------------------------------------------------------------------

ConstraintManager::Options ConstraintOpts() {
  ConstraintManager::Options opts;
  opts.tier_max_object_bytes = {1024, 1024 * 1024, 0};
  opts.max_update_rate_per_day = 24.0;
  return opts;
}

TEST(ConstraintTest, SizeAdmissionPerTier) {
  ConstraintManager cm(ConstraintOpts());
  UsageHistory h;
  EXPECT_TRUE(cm.CheckAdmission(1, 512, 0, h).ok());
  EXPECT_EQ(cm.CheckAdmission(1, 2048, 0, h).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(cm.CheckAdmission(1, 2048, 1, h).ok());
  // Unlimited tier takes anything.
  EXPECT_TRUE(cm.CheckAdmission(1, 1ull << 33, 2, h).ok());
}

TEST(ConstraintTest, CopyrightedNeverAdmitted) {
  ConstraintManager cm(ConstraintOpts());
  cm.MarkCopyrighted(7);
  UsageHistory h;
  EXPECT_EQ(cm.CheckAdmission(7, 10, 2, h).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(cm.CheckAdmission(8, 10, 2, h).ok());
  EXPECT_TRUE(cm.IsCopyrighted(7));
}

TEST(ConstraintTest, UpdateRateLimitRejectsChurners) {
  ConstraintManager cm(ConstraintOpts());  // Limit: 24 updates/day.
  UsageHistory churner;
  // Modified every 30 minutes -> 48/day.
  for (int i = 0; i < 4; ++i) churner.RecordModification(i * 30 * kMinute);
  EXPECT_EQ(cm.CheckAdmission(1, 10, 2, churner).code(),
            StatusCode::kFailedPrecondition);
  UsageHistory calm;
  for (int i = 0; i < 4; ++i) calm.RecordModification(i * 6 * kHour);
  EXPECT_TRUE(cm.CheckAdmission(1, 10, 2, calm).ok());
}

TEST(ConstraintTest, PollingIntervalTracksUpdatePeriod) {
  ConstraintManager cm(ConstraintOpts());
  UsageHistory fast_changing;
  for (int i = 0; i < 4; ++i) {
    fast_changing.RecordModification(i * 2 * kHour);
  }
  UsageHistory slow_changing;
  for (int i = 0; i < 4; ++i) {
    slow_changing.RecordModification(i * 40 * kHour);
  }
  EXPECT_LT(cm.PollingInterval(fast_changing),
            cm.PollingInterval(slow_changing));
}

TEST(ConstraintTest, PollingIntervalShrinksWithUsage) {
  ConstraintManager cm(ConstraintOpts());
  UsageHistory popular, unpopular;
  for (int i = 0; i < 3; ++i) {
    popular.RecordModification(i * 12 * kHour);
    unpopular.RecordModification(i * 12 * kHour);
  }
  for (int i = 0; i < 1000; ++i) popular.RecordReference(i);
  EXPECT_LT(cm.PollingInterval(popular), cm.PollingInterval(unpopular));
}

TEST(ConstraintTest, PollingIntervalClamped) {
  ConstraintManager::Options opts = ConstraintOpts();
  opts.min_poll_interval = kHour;
  opts.max_poll_interval = kDay;
  ConstraintManager cm(opts);
  UsageHistory no_history;
  SimTime t = cm.PollingInterval(no_history);
  EXPECT_GE(t, kHour);
  EXPECT_LE(t, kDay);
  UsageHistory hyper;
  for (int i = 0; i < 4; ++i) hyper.RecordModification(i);
  EXPECT_GE(cm.PollingInterval(hyper), kHour);
}

TEST(ConstraintTest, ConsistencyModeSwitch) {
  ConstraintManager cm(ConstraintOpts());
  EXPECT_EQ(cm.consistency_mode(), ConsistencyMode::kWeak);
  cm.set_consistency_mode(ConsistencyMode::kStrong);
  EXPECT_EQ(cm.consistency_mode(), ConsistencyMode::kStrong);
}

// ---------------------------------------------------------------------------
// VersionManager
// ---------------------------------------------------------------------------

TEST(VersionTest, CapturesLineage) {
  VersionManager vm(VersionManager::Options{});
  vm.CaptureVersion(1, 1, 100, 1000);
  vm.CaptureVersion(1, 2, 200, 1100);
  vm.CaptureVersion(1, 3, 300, 900);
  EXPECT_EQ(vm.VersionsOf(1).size(), 3u);
  EXPECT_EQ(vm.num_versions(), 3u);
  EXPECT_EQ(vm.TotalBytesRetained(), 3000u);
}

TEST(VersionTest, CaptureIdempotentPerVersion) {
  VersionManager vm(VersionManager::Options{});
  vm.CaptureVersion(1, 1, 100, 1000);
  vm.CaptureVersion(1, 1, 150, 1000);
  EXPECT_EQ(vm.num_versions(), 1u);
}

TEST(VersionTest, AsOfReturnsLatestNotAfter) {
  VersionManager vm(VersionManager::Options{});
  vm.CaptureVersion(1, 1, 100, 10);
  vm.CaptureVersion(1, 2, 200, 10);
  auto v = vm.AsOf(1, 150);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->version, 1u);
  auto v2 = vm.AsOf(1, 200);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(vm.AsOf(1, 50).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(vm.AsOf(99, 150).status().code(), StatusCode::kNotFound);
}

TEST(VersionTest, RetentionDropsOldest) {
  VersionManager::Options opts;
  opts.max_versions_per_object = 2;
  VersionManager vm(opts);
  vm.CaptureVersion(1, 1, 100, 10);
  vm.CaptureVersion(1, 2, 200, 20);
  vm.CaptureVersion(1, 3, 300, 30);
  EXPECT_EQ(vm.VersionsOf(1).size(), 2u);
  EXPECT_EQ(vm.VersionsOf(1).front().version, 2u);
  EXPECT_EQ(vm.TotalBytesRetained(), 50u);
  // The dropped version is no longer reachable as-of its capture time.
  EXPECT_FALSE(vm.AsOf(1, 150).ok());
}

TEST(VersionTest, ZeroMeansKeepEverything) {
  VersionManager::Options opts;
  opts.max_versions_per_object = 0;
  VersionManager vm(opts);
  for (uint32_t v = 1; v <= 100; ++v) vm.CaptureVersion(1, v, v * 100, 1);
  EXPECT_EQ(vm.VersionsOf(1).size(), 100u);
}

// ---------------------------------------------------------------------------
// RecommendationManager
// ---------------------------------------------------------------------------

text::TermVector TopicContent(text::TermId base) {
  text::TermVector v;
  for (text::TermId t = base; t < base + 5; ++t) v.Add(t, 1.0);
  return v;
}

TEST(RecommendationTest, ProfileBuiltFromAccesses) {
  RecommendationManager rm(RecommendationManager::Options{});
  EXPECT_TRUE(rm.UserProfile(1, 0).empty());
  rm.RecordAccess(1, TopicContent(100), 0);
  text::TermVector profile = rm.UserProfile(1, 0);
  EXPECT_FALSE(profile.empty());
  EXPECT_GT(profile.WeightOf(100), 0.0);
  EXPECT_EQ(rm.num_users(), 1u);
}

TEST(RecommendationTest, RecommendsContentMatchingProfile) {
  RecommendationManager rm(RecommendationManager::Options{});
  index::InvertedIndex idx;
  idx.Add(1, TopicContent(100));  // On the user's topic.
  idx.Add(2, TopicContent(500));  // Off topic.
  rm.RecordAccess(7, TopicContent(100), 0);
  auto recs = rm.RecommendPages(7, idx, 2, 0);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].doc, 1u);
  // Unknown user: nothing.
  EXPECT_TRUE(rm.RecommendPages(99, idx, 2, 0).empty());
}

TEST(RecommendationTest, InterestsDecay) {
  RecommendationManager::Options opts;
  opts.half_life = kHour;
  RecommendationManager rm(opts);
  rm.RecordAccess(1, TopicContent(100), 0);
  rm.RecordAccess(1, TopicContent(500), 50 * kHour);
  text::TermVector profile = rm.UserProfile(1, 50 * kHour);
  // The old interest decayed far below the fresh one.
  EXPECT_GT(profile.WeightOf(500), 100 * profile.WeightOf(100));
}

// ---------------------------------------------------------------------------
// StorageManager (unit; integration covered in warehouse_test)
// ---------------------------------------------------------------------------

StorageManager::Options StorageOpts() {
  StorageManager::Options opts;
  opts.lod_threshold_bytes = 1000;
  return opts;
}

struct StorageFixture {
  StorageFixture()
      : hierarchy({storage::DeviceModel::Memory(4000),
                   storage::DeviceModel::Disk(20000),
                   storage::DeviceModel::Tertiary(0)}),
        constraints(ConstraintManager::Options{}),
        manager(&hierarchy, &constraints, StorageOpts()) {}

  RawObjectRecord MakeRecord(corpus::RawId id, uint64_t bytes) {
    RawObjectRecord rec;
    rec.id = id;
    rec.bytes = bytes;
    rec.has_summary = true;
    rec.summary_bytes = 64;
    return rec;
  }

  storage::StorageHierarchy hierarchy;
  ConstraintManager constraints;
  StorageManager manager;
};

TEST(StorageManagerTest, AdmitNewAlwaysBacksUpToTertiary) {
  StorageFixture f;
  RawObjectRecord rec = f.MakeRecord(1, 500);
  ASSERT_TRUE(f.manager.AdmitNew(rec, 0.0).ok());
  auto id = EncodeStoreId(index::ObjectLevel::kRaw, 1);
  EXPECT_TRUE(f.hierarchy.IsResident(id, 2));
  EXPECT_TRUE(f.hierarchy.IsResident(id, 1));  // Disk copy too.
}

TEST(StorageManagerTest, HighPriorityGoesStraightToMemory) {
  StorageFixture f;
  RawObjectRecord rec = f.MakeRecord(1, 500);
  // Threshold starts at 0, so any priority >= 0 may enter memory.
  ASSERT_TRUE(f.manager.AdmitNew(rec, 5.0).ok());
  EXPECT_TRUE(f.hierarchy.IsResident(
      EncodeStoreId(index::ObjectLevel::kRaw, 1), 0));
}

TEST(StorageManagerTest, LargeObjectGetsSummaryInMemory) {
  StorageFixture f;
  RawObjectRecord rec = f.MakeRecord(1, 3000);  // > LoD threshold 1000.
  ASSERT_TRUE(f.manager.AdmitNew(rec, 5.0).ok());
  auto full = EncodeStoreId(index::ObjectLevel::kRaw, 1);
  auto summary = EncodeStoreId(index::ObjectLevel::kRaw, 1, true);
  EXPECT_FALSE(f.hierarchy.IsResident(full, 0));
  EXPECT_TRUE(f.hierarchy.IsResident(summary, 0));
  EXPECT_TRUE(f.hierarchy.IsResident(full, 1));
}

TEST(StorageManagerTest, ReadPreviewUsesSummary) {
  StorageFixture f;
  RawObjectRecord rec = f.MakeRecord(1, 3000);
  ASSERT_TRUE(f.manager.AdmitNew(rec, 5.0).ok());
  auto preview = f.manager.ReadPreview(rec);
  auto full = f.manager.ReadObject(rec);
  ASSERT_TRUE(preview.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(*preview, *full);  // Memory summary beats disk full object.
}

TEST(StorageManagerTest, RebalanceFillsMemoryWithTopPriorities) {
  StorageFixture f;
  std::vector<RawObjectRecord> recs;
  recs.reserve(20);
  for (corpus::RawId id = 0; id < 20; ++id) {
    recs.push_back(f.MakeRecord(id, 500));
    ASSERT_TRUE(f.manager.AdmitNew(recs.back(), 0.0).ok());
  }
  std::vector<StorageManager::RankedObject> ranked;
  for (auto& rec : recs) {
    ranked.push_back({&rec, static_cast<double>(rec.id)});  // id = priority.
  }
  auto result = f.manager.Rebalance(ranked);
  // Memory (4000 bytes * 0.9 fill = 3600) fits the 7 hottest 500-byte objs.
  EXPECT_EQ(result.objects_in_memory, 7u);
  for (corpus::RawId id = 13; id < 20; ++id) {
    EXPECT_TRUE(f.hierarchy.IsResident(
        EncodeStoreId(index::ObjectLevel::kRaw, id), 0))
        << "object " << id;
  }
  EXPECT_FALSE(f.hierarchy.IsResident(
      EncodeStoreId(index::ObjectLevel::kRaw, 0), 0));
  // Memory threshold now reflects the weakest memory resident. Object 12's
  // summary also squeezed into the leftover budget (levels of detail), so
  // the weakest memory presence has priority 12.
  EXPECT_EQ(result.summaries_in_memory, 1u);
  EXPECT_GE(f.manager.memory_admission_threshold(), 12.0);
}

TEST(StorageManagerTest, RebalanceDemotesCooledObjects) {
  StorageFixture f;
  RawObjectRecord hot = f.MakeRecord(1, 500);
  ASSERT_TRUE(f.manager.AdmitNew(hot, 10.0).ok());
  auto id1 = EncodeStoreId(index::ObjectLevel::kRaw, 1);
  ASSERT_TRUE(f.hierarchy.IsResident(id1, 0));
  // Object cooled to 0 and 8 hotter objects arrive.
  std::vector<RawObjectRecord> recs;
  recs.push_back(hot);
  for (corpus::RawId id = 2; id < 10; ++id) {
    recs.push_back(f.MakeRecord(id, 500));
    ASSERT_TRUE(f.manager.AdmitNew(recs.back(), 0.0).ok());
  }
  std::vector<StorageManager::RankedObject> ranked;
  for (auto& rec : recs) {
    ranked.push_back({&rec, rec.id == 1 ? 0.0 : 5.0});
  }
  auto result = f.manager.Rebalance(ranked);
  EXPECT_FALSE(f.hierarchy.IsResident(id1, 0));  // Demoted.
  EXPECT_TRUE(f.hierarchy.IsResident(id1, 1));   // Still on disk.
  EXPECT_GT(result.demotions + result.promotions, 0u);
}

TEST(StorageManagerTest, CopyControlKeepsBackups) {
  StorageFixture f;
  std::vector<RawObjectRecord> recs;
  for (corpus::RawId id = 0; id < 4; ++id) {
    recs.push_back(f.MakeRecord(id, 500));
    ASSERT_TRUE(f.manager.AdmitNew(recs.back(), 0.0).ok());
  }
  std::vector<StorageManager::RankedObject> ranked;
  for (auto& rec : recs) ranked.push_back({&rec, 1.0});
  f.manager.Rebalance(ranked);
  for (corpus::RawId id = 0; id < 4; ++id) {
    auto sid = EncodeStoreId(index::ObjectLevel::kRaw, id);
    if (f.hierarchy.IsResident(sid, 0)) {
      // Memory residents must have a disk copy (recovery rule).
      EXPECT_TRUE(f.hierarchy.IsResident(sid, 1));
    }
    EXPECT_TRUE(f.hierarchy.IsResident(sid, 2));  // Everything on tertiary.
  }
}

}  // namespace
}  // namespace cbfww::core
