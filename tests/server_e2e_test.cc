// End-to-end tests of the wire serving layer: a real HttpServer over a
// real multi-shard WarehouseCluster, exercised through TCP sockets.
//
// The headline test drives 10k keep-alive requests over 8 concurrent
// connections against a 4-shard cluster and proves the wire path is
// *transparent*: every page response must be byte-identical to what direct
// in-process calls against an identically-configured mirror cluster
// produce. Concurrent connections normally interleave nondeterministically
// across shards, so the test gives each page-serving connection exclusive
// ownership of one shard's pages — per-shard arrival order then equals
// per-connection order, which the mirror replays exactly. Four more
// connections hammer /healthz and /metrics concurrently to keep the IO
// thread multiplexing under pressure.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "core/counters_io.h"
#include "corpus/web_corpus.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/wire_format.h"
#include "util/strings.h"

namespace cbfww::server {
namespace {

using cluster::ClusterOptions;
using cluster::WarehouseCluster;

corpus::CorpusOptions TestCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 40;
  opts.topic.num_topics = 4;
  opts.seed = 77;
  return opts;
}

ClusterOptions TestClusterOptions(uint32_t shards) {
  ClusterOptions opts;
  opts.num_shards = shards;
  opts.warehouse.memory_bytes = 4ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 256ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  return opts;
}

TEST(ServerE2eTest, TenThousandRequestsByteIdenticalToDirectCalls) {
  constexpr uint32_t kShards = 4;
  constexpr int kPageConns = 4;   // One per shard.
  constexpr int kAuxConns = 4;    // /healthz + /metrics pressure.
  constexpr uint64_t kPageRequestsPerConn = 2300;
  constexpr uint64_t kAuxRequestsPerConn = 200;
  // 4*2300 + 4*200 = 10000 total requests over 8 concurrent connections.

  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(kShards));
  // Pages of each shard, in page-id order (both sides derive this the same
  // way, so server and mirror agree on the sequence).
  uint64_t num_pages = cluster.shard(0).corpus().num_pages();
  std::vector<std::vector<corpus::PageId>> shard_pages(kShards);
  for (uint64_t p = 0; p < num_pages; ++p) {
    shard_pages[cluster.ShardOf(p)].push_back(p);
  }
  for (const auto& pages : shard_pages) ASSERT_FALSE(pages.empty());

  HttpServer server(&cluster, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  std::vector<std::vector<std::string>> bodies(kPageConns);
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kPageConns; ++c) {
    threads.emplace_back([&, c] {
      SimpleHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(kPageRequestsPerConn);
        return;
      }
      bodies[c].reserve(kPageRequestsPerConn);
      const auto& pages = shard_pages[c];
      for (uint64_t i = 0; i < kPageRequestsPerConn; ++i) {
        corpus::PageId page = pages[i % pages.size()];
        // Scripted deterministic request context: time advances 1s per
        // request on this shard, sessions rotate every 10 requests.
        std::string target =
            "/page/" + std::to_string(page) +
            "?user=" + std::to_string(c + 1) +
            "&session=" + std::to_string(i / 10) +
            "&t=" + std::to_string((i + 1) * kSecond);
        auto response = client.RoundTrip("GET", target);
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          if (!response.ok()) return;
          continue;
        }
        bodies[c].push_back(std::move(response->body));
      }
    });
  }
  for (int a = 0; a < kAuxConns; ++a) {
    threads.emplace_back([&, a] {
      SimpleHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(kAuxRequestsPerConn);
        return;
      }
      for (uint64_t i = 0; i < kAuxRequestsPerConn; ++i) {
        bool metrics = (i % 2) == (static_cast<uint64_t>(a) % 2);
        auto response =
            client.RoundTrip("GET", metrics ? "/metrics" : "/healthz");
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          if (!response.ok()) return;
          continue;
        }
        if (!metrics && response->body.find("\"status\":\"ok\"") ==
                            std::string::npos) {
          failures.fetch_add(1);
        }
        if (metrics &&
            response->body.find("cbfww_up 1") == std::string::npos) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(server.stats().requests_total.load(),
            kPageConns * kPageRequestsPerConn + kAuxConns * kAuxRequestsPerConn);

  server.Stop();
  ASSERT_FALSE(server.running());

  // Mirror: an identically-configured cluster, driven by direct in-process
  // ServeRequest calls replaying each connection's exact sequence.
  WarehouseCluster mirror(TestCorpusOptions(), std::nullopt,
                          TestClusterOptions(kShards));
  for (int c = 0; c < kPageConns; ++c) {
    ASSERT_EQ(bodies[c].size(), kPageRequestsPerConn) << "conn " << c;
    const auto& pages = shard_pages[c];
    for (uint64_t i = 0; i < kPageRequestsPerConn; ++i) {
      core::PageRequest request;
      request.page = pages[i % pages.size()];
      request.user = static_cast<uint32_t>(c + 1);
      request.session = static_cast<int64_t>(i / 10);
      request.now = static_cast<SimTime>((i + 1) * kSecond);
      core::PageVisit visit =
          mirror.mutable_shard(static_cast<uint32_t>(c)).ServeRequest(request);
      ASSERT_EQ(bodies[c][i], PageVisitToJson(visit, ""))
          << "conn " << c << " request " << i;
    }
  }

  // Stronger than per-response equality: the full per-shard counter state
  // must match too (the wire layer added no hidden work).
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(core::CountersToJson(cluster.shard(s).counters()),
              core::CountersToJson(mirror.shard(s).counters()))
        << "shard " << s;
  }
}

// The multi-IO-thread server must be exactly as transparent as the
// single-threaded one: with each page connection owning one shard, the
// responses and final per-shard counters must match a direct in-process
// mirror no matter which IO thread serves which connection. Runs under
// both accept-sharding modes (kernel SO_REUSEPORT and single-acceptor fd
// handoff).
TEST(ServerE2eTest, MultiIoThreadsStayByteIdenticalToDirectCalls) {
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kIoThreads = 4;
  constexpr uint64_t kRequestsPerConn = 400;

  for (AcceptMode mode : {AcceptMode::kHandoff, AcceptMode::kAuto}) {
    SCOPED_TRACE(mode == AcceptMode::kHandoff ? "handoff" : "auto");
    ClusterOptions cluster_options = TestClusterOptions(kShards);
    // One producer lane per IO thread keeps every queue SPSC.
    cluster_options.producer_lanes = kIoThreads;
    WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                             cluster_options);
    uint64_t num_pages = cluster.shard(0).corpus().num_pages();
    std::vector<std::vector<corpus::PageId>> shard_pages(kShards);
    for (uint64_t p = 0; p < num_pages; ++p) {
      shard_pages[cluster.ShardOf(p)].push_back(p);
    }

    ServerOptions server_options;
    server_options.io_threads = kIoThreads;
    server_options.accept_mode = mode;
    HttpServer server(&cluster, server_options);
    ASSERT_TRUE(server.Start().ok());
    EXPECT_EQ(server.io_threads(), kIoThreads);
    if (mode == AcceptMode::kHandoff) {
      EXPECT_EQ(server.accept_mode_resolved(), AcceptMode::kHandoff);
    }
    uint16_t port = server.port();

    std::vector<std::vector<std::string>> bodies(kShards);
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (uint32_t c = 0; c < kShards; ++c) {
      threads.emplace_back([&, c] {
        SimpleHttpClient client;
        if (!client.Connect("127.0.0.1", port).ok()) {
          failures.fetch_add(kRequestsPerConn);
          return;
        }
        const auto& pages = shard_pages[c];
        for (uint64_t i = 0; i < kRequestsPerConn; ++i) {
          corpus::PageId page = pages[i % pages.size()];
          std::string target =
              "/page/" + std::to_string(page) +
              "?user=" + std::to_string(c + 1) +
              "&session=" + std::to_string(i / 10) +
              "&t=" + std::to_string((i + 1) * kSecond);
          auto response = client.RoundTrip("GET", target);
          if (!response.ok() || response->status != 200) {
            failures.fetch_add(1);
            if (!response.ok()) return;
            continue;
          }
          bodies[c].push_back(std::move(response->body));
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0u);
    server.Stop();

    WarehouseCluster mirror(TestCorpusOptions(), std::nullopt,
                            TestClusterOptions(kShards));
    for (uint32_t c = 0; c < kShards; ++c) {
      ASSERT_EQ(bodies[c].size(), kRequestsPerConn) << "conn " << c;
      const auto& pages = shard_pages[c];
      for (uint64_t i = 0; i < kRequestsPerConn; ++i) {
        core::PageRequest request;
        request.page = pages[i % pages.size()];
        request.user = c + 1;
        request.session = static_cast<int64_t>(i / 10);
        request.now = static_cast<SimTime>((i + 1) * kSecond);
        core::PageVisit visit = mirror.mutable_shard(c).ServeRequest(request);
        ASSERT_EQ(bodies[c][i], PageVisitToJson(visit, ""))
            << "conn " << c << " request " << i;
      }
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(core::CountersToJson(cluster.shard(s).counters()),
                core::CountersToJson(mirror.shard(s).counters()))
          << "shard " << s;
    }
  }
}

// Admission classes under overload: with a shard parked and its queue past
// the overload threshold, background routes (/metrics, /admin) shed with
// 503 + Retry-After BEFORE the critical path feels pressure, /healthz
// still answers, and the shed totals match both stats() and the
// cbfww_admission_shed_total counter once the backlog clears.
TEST(ServerE2eTest, BackgroundClassShedsFirstWhileHealthAlwaysAnswers) {
  ClusterOptions cluster_options = TestClusterOptions(1);
  cluster_options.queue_capacity = 4;
  cluster_options.dispatch_max_pauses = 0;
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt, cluster_options);

  ServerOptions server_options;
  server_options.overload_queue_fraction = 0.5;  // Threshold: 2 of 4 slots.
  HttpServer server(&cluster, server_options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  // Park the shard directly (not via /admin: once the queue is past the
  // threshold the admin route itself is shed, which is the point).
  cluster.SuspendShard(0);

  // Three connections each queue one page request at the parked shard:
  // depth 3 >= threshold 2, below capacity 4 (no queue-admission sheds).
  constexpr int kParked = 3;
  std::vector<SimpleHttpClient> parked(kParked);
  for (int i = 0; i < kParked; ++i) {
    ASSERT_TRUE(parked[i].Connect("127.0.0.1", port).ok());
    ASSERT_TRUE(parked[i]
                    .Send("GET", "/page/" + std::to_string(i) + "?t=" +
                                     std::to_string((i + 1) * kSecond))
                    .ok());
  }
  for (int spin = 0;
       spin < 2000 && server.stats().requests_total.load() < kParked;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().requests_total.load(),
            static_cast<uint64_t>(kParked));

  SimpleHttpClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", port).ok());

  // Health answers regardless of overload.
  auto health = probe.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  // Background routes shed with the full 503 contract.
  uint64_t sheds = 0;
  auto metrics = probe.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 503);
  EXPECT_FALSE(metrics->Header("retry-after").empty());
  ++sheds;
  auto admin = probe.RoundTrip("POST", "/admin/shard/0/resume");
  ASSERT_TRUE(admin.ok());
  EXPECT_EQ(admin->status, 503);
  EXPECT_FALSE(admin->Header("retry-after").empty());
  ++sheds;

  // Health still answers after the sheds; the books agree live.
  health = probe.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(server.stats().admission_shed_background.load(), sheds);

  // Unpark: every parked critical request completes normally — overload
  // never cost the critical path anything.
  cluster.ResumeShard(0);
  for (int i = 0; i < kParked; ++i) {
    auto response = parked[i].Receive();
    ASSERT_TRUE(response.ok()) << "parked conn " << i;
    EXPECT_EQ(response->status, 200) << "parked conn " << i;
  }

  // Pressure gone: /metrics answers again and advertises the sheds.
  metrics = probe.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find(StrFormat(
                "cbfww_admission_shed_total{class=\"background\"} %llu",
                static_cast<unsigned long long>(sheds))),
            std::string::npos)
      << metrics->body;

  server.Stop();
}

// GET /body streams rendered page bodies (container + components) by
// reference: the served bytes must equal the body store's concatenation,
// large bodies must take the chunked path, and the zero-copy accounting
// must show every body byte bypassing the arena.
TEST(ServerE2eTest, BodyRouteStreamsRenderedBodiesZeroCopy) {
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(1));
  ServerOptions server_options;
  server_options.chunk_threshold = 2048;  // Large pages stream chunked.
  HttpServer server(&cluster, server_options);
  ASSERT_TRUE(server.Start().ok());

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const auto& corpus = cluster.shard(0).corpus();
  uint64_t expected_total = 0;
  bool saw_chunked = false;
  for (corpus::PageId page = 0; page < 6; ++page) {
    auto response = client.RoundTrip("GET", "/body/" + std::to_string(page));
    ASSERT_TRUE(response.ok()) << "page " << page;
    ASSERT_EQ(response->status, 200) << "page " << page;
    EXPECT_EQ(response->Header("content-type"), "text/html; charset=utf-8");

    const corpus::PhysicalPageSpec& spec = corpus.page(page);
    std::string expected(server.body_store()->Body(spec.container));
    for (corpus::RawId component : spec.components) {
      expected += server.body_store()->Body(component);
    }
    ASSERT_EQ(response->body, expected) << "page " << page;
    expected_total += expected.size();
    if (expected.size() > server_options.chunk_threshold) {
      EXPECT_EQ(response->Header("transfer-encoding"), "chunked");
      saw_chunked = true;
    }
  }
  EXPECT_TRUE(saw_chunked);  // The test corpus must exercise the big path.

  // The acceptance counter: every body byte reached writev by reference.
  EXPECT_EQ(server.stats().body_bytes_zero_copy.load(), expected_total);
  EXPECT_EQ(server.stats().body_bytes_copied.load(), 0u);

  auto missing = client.RoundTrip("GET", "/body/999999");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  server.Stop();
}

// Same /body contract with the segment-backed store: bodies stream
// zero-copy from the mmap'd segment file rather than heap snapshots.
// Lifetime body_bytes_copied must stay 0, heap body bytes must stay 0,
// and >chunk_threshold bodies must still take the chunked path — the
// external-iovec framing works identically over mmap pages.
TEST(ServerE2eTest, BodyRouteServesFromSegmentStoreZeroCopy) {
  std::string seg_dir = testing::TempDir() + "/e2e_bodies_" +
                        std::to_string(getpid());
  std::filesystem::remove_all(seg_dir);

  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(1));
  ServerOptions server_options;
  server_options.chunk_threshold = 2048;
  server_options.body_segment_dir = seg_dir;
  HttpServer server(&cluster, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.body_store()->segment_backed())
      << server.body_store()->segment_status();
  // Segment mode never materializes bodies on the heap.
  EXPECT_EQ(server.body_store()->rendered_bytes(), 0u);

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // A heap-mode twin is the byte oracle: both modes must serve
  // identical bodies.
  WarehouseCluster mirror(TestCorpusOptions(), std::nullopt,
                          TestClusterOptions(1));
  BodyStore oracle(mirror.shard(0).corpus());

  const auto& corpus = cluster.shard(0).corpus();
  uint64_t expected_total = 0;
  bool saw_chunked = false;
  for (corpus::PageId page = 0; page < 8; ++page) {
    auto response = client.RoundTrip("GET", "/body/" + std::to_string(page));
    ASSERT_TRUE(response.ok()) << "page " << page;
    ASSERT_EQ(response->status, 200) << "page " << page;

    const corpus::PhysicalPageSpec& spec = corpus.page(page);
    std::string expected(oracle.Body(spec.container));
    for (corpus::RawId component : spec.components) {
      expected += oracle.Body(component);
    }
    ASSERT_EQ(response->body, expected) << "page " << page;
    expected_total += expected.size();
    if (expected.size() > server_options.chunk_threshold) {
      EXPECT_EQ(response->Header("transfer-encoding"), "chunked");
      saw_chunked = true;
    }
  }
  EXPECT_TRUE(saw_chunked);

  // The acceptance gate: every body byte left via writev by reference to
  // the mmap — nothing was copied, nothing rendered onto the heap.
  EXPECT_EQ(server.stats().body_bytes_zero_copy.load(), expected_total);
  EXPECT_EQ(server.stats().body_bytes_copied.load(), 0u);
  EXPECT_EQ(server.body_store()->rendered_bytes(), 0u);
  EXPECT_EQ(server.body_store()->rendered_objects(), 0u);

  // The mode is observable on the wire.
  auto metrics = client.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("cbfww_body_store_segment_backed 1"),
            std::string::npos);

  server.Stop();
  std::filesystem::remove_all(seg_dir);
}

TEST(ServerE2eTest, OverloadedShardYields503AndMetricsMatchReport) {
  ClusterOptions opts = TestClusterOptions(1);
  opts.queue_capacity = 2;        // Tiny ring: fills after 2 requests.
  opts.dispatch_max_pauses = 0;   // Shed immediately, never wait.
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt, opts);

  // This test is about queue-admission shedding and live observability of
  // a saturated shard, so background-class admission shedding is off:
  // /metrics and /admin must answer normally while the queue sits full.
  ServerOptions server_options;
  server_options.overload_queue_fraction = 0;
  HttpServer server(&cluster, server_options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  // Park the only shard via the admin API so queued requests stay queued.
  SimpleHttpClient admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", port).ok());
  auto suspended = admin.RoundTrip("POST", "/admin/shard/0/suspend");
  ASSERT_TRUE(suspended.ok());
  EXPECT_EQ(suspended->status, 200);
  EXPECT_NE(suspended->body.find("\"suspended\":true"), std::string::npos);

  // 6 connections each fire one request at the parked shard. The queue
  // holds 2; the rest must shed as immediate 503s — never block.
  constexpr int kProbes = 6;
  std::vector<SimpleHttpClient> probes(kProbes);
  std::atomic<int> got_503{0};
  std::vector<std::thread> threads;
  std::vector<int> statuses(kProbes, 0);
  for (int i = 0; i < kProbes; ++i) {
    ASSERT_TRUE(probes[i].Connect("127.0.0.1", port).ok());
  }
  for (int i = 0; i < kProbes; ++i) {
    threads.emplace_back([&, i] {
      auto response = probes[i].RoundTrip(
          "GET", "/page/" + std::to_string(i) + "?t=" +
                     std::to_string((i + 1) * kSecond));
      if (response.ok()) {
        statuses[i] = response->status;
        if (response->status == 503) {
          got_503.fetch_add(1);
          // The shed contract: Retry-After is always advertised.
          if (response->Header("retry-after").empty()) statuses[i] = -1;
        }
      }
    });
  }
  // The 503s return immediately even though the shard is parked; the two
  // queued requests stay in flight until resume. Wait for the sheds first.
  for (int spin = 0; spin < 2000 && got_503.load() < kProbes - 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got_503.load(), kProbes - 2);

  // /metrics must stay responsive while the shard is parked with a full
  // queue (it must not drain), and its shed counter must already agree.
  auto metrics = admin.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find(StrFormat("cbfww_cluster_shed_total %d",
                                         kProbes - 2)),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("cbfww_shard_suspended{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("cbfww_shard_queue_depth{shard=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("cbfww_metrics_full_report 0"),
            std::string::npos);

  // Resume: the two parked requests complete with 200.
  auto resumed = admin.RoundTrip("POST", "/admin/shard/0/resume");
  ASSERT_TRUE(resumed.ok());
  EXPECT_NE(resumed->body.find("\"suspended\":false"), std::string::npos);
  for (auto& t : threads) t.join();
  int ok_count = 0;
  for (int s : statuses) {
    if (s == 200) ++ok_count;
  }
  EXPECT_EQ(ok_count, 2);

  server.Stop();
  // The cluster-level report agrees with what /metrics advertised.
  EXPECT_EQ(cluster.Report().TotalShed(),
            static_cast<uint64_t>(kProbes - 2));
}

TEST(ServerE2eTest, QueryScatterGatherOverTheWire) {
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(2));
  HttpServer server(&cluster, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Touch a few pages so the warehouses hold records.
  for (uint64_t p = 0; p < 8; ++p) {
    auto response = client.RoundTrip(
        "GET", "/page/" + std::to_string(p) + "?t=" +
                   std::to_string((p + 1) * kSecond));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
  }

  auto result = client.RoundTrip("POST", "/query",
                                 "SELECT p.url FROM Physical_Page p");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_NE(result->body.find("\"columns\":[\"p.url\"]"), std::string::npos);
  EXPECT_NE(result->body.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(result->body.find("\"errors\":[]"), std::string::npos);
  // 8 pages touched: the union across shards has 8 url rows.
  size_t rows = 0;
  for (size_t pos = result->body.find("http");
       pos != std::string::npos;
       pos = result->body.find("http", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 8u);

  // A malformed query surfaces as a client error, not a hang or a 500.
  auto bad = client.RoundTrip("POST", "/query", "NOT A QUERY");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  auto empty = client.RoundTrip("POST", "/query", "");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status, 400);

  server.Stop();
}

TEST(ServerE2eTest, RoutingEdgesAndPipelining) {
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(1));
  ServerOptions options;
  options.chunk_threshold = 128;  // Force /metrics to stream chunked.
  HttpServer server(&cluster, options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());

  auto missing = client.RoundTrip("GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto wrong_method = client.RoundTrip("POST", "/healthz");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto unknown_page = client.RoundTrip("GET", "/page/999999");
  ASSERT_TRUE(unknown_page.ok());
  EXPECT_EQ(unknown_page->status, 404);

  auto bad_shard = client.RoundTrip("POST", "/admin/shard/9/suspend");
  ASSERT_TRUE(bad_shard.ok());
  EXPECT_EQ(bad_shard->status, 404);

  // URL-addressed page: resolve a real container URL through the percent-
  // encoded path form.
  const auto& corpus = cluster.shard(0).corpus();
  const std::string& url = corpus.raw(corpus.page(0).container).url;
  std::string encoded;
  for (char c : url) {
    if (c == ':') {
      encoded += "%3A";
    } else if (c == '/') {
      encoded += "%2F";
    } else {
      encoded += c;
    }
  }
  auto by_url = client.RoundTrip("GET", "/page/" + encoded + "?t=1000000");
  ASSERT_TRUE(by_url.ok());
  EXPECT_EQ(by_url->status, 200);
  EXPECT_NE(by_url->body.find("\"url\":\"" + url + "\""), std::string::npos);

  // Chunked response decoding (threshold forces /metrics to chunk).
  auto metrics = client.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_EQ(metrics->Header("transfer-encoding"), "chunked");
  EXPECT_NE(metrics->body.find("cbfww_up 1"), std::string::npos);

  // Pipelining: three requests written back-to-back, three in-order
  // responses.
  ASSERT_TRUE(client.Send("GET", "/healthz").ok());
  ASSERT_TRUE(client.Send("GET", "/page/1?t=2000000").ok());
  ASSERT_TRUE(client.Send("GET", "/healthz").ok());
  auto r1 = client.Receive();
  auto r2 = client.Receive();
  auto r3 = client.Receive();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r1->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r2->body.find("\"page\":1"), std::string::npos);
  EXPECT_NE(r3->body.find("\"status\":\"ok\""), std::string::npos);

  // A malformed request gets a 4xx and the connection is closed.
  SimpleHttpClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(bad.Send("GET", "bad target with spaces").ok());
  auto error = bad.Receive();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->status, 400);
  EXPECT_FALSE(error->keep_alive);

  server.Stop();
}

TEST(ServerE2eTest, GracefulDrainFinishesInFlightAndRefusesNew) {
  WarehouseCluster cluster(TestCorpusOptions(), std::nullopt,
                           TestClusterOptions(2));
  HttpServer server(&cluster, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  // Keep a stream of requests going while Stop() lands mid-traffic.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> served{0};
  std::thread traffic([&] {
    SimpleHttpClient client;
    if (!client.Connect("127.0.0.1", port).ok()) return;
    for (uint64_t i = 0; i < 100000 && !done.load(); ++i) {
      auto response =
          client.RoundTrip("GET", "/page/" + std::to_string(i % 50));
      if (!response.ok()) break;  // Server drained underneath us: fine.
      if (response->status == 200) served.fetch_add(1);
    }
  });
  while (served.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();  // Must not hang with the request stream active.
  done.store(true);
  traffic.join();
  EXPECT_FALSE(server.running());
  EXPECT_GE(served.load(), 20u);

  // New connections are refused after the drain.
  SimpleHttpClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());

  // The cluster is quiescent and reports cleanly.
  EXPECT_GE(cluster.Report().counters.requests, served.load());
}

}  // namespace
}  // namespace cbfww::server
