#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "corpus/news_feed.h"
#include "corpus/topic_model.h"
#include "corpus/web_corpus.h"

namespace cbfww::corpus {
namespace {

CorpusOptions SmallCorpus(uint64_t seed = 42) {
  CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 25;
  opts.topic.num_topics = 5;
  opts.seed = seed;
  return opts;
}

// ---------------------------------------------------------------------------
// TopicModel
// ---------------------------------------------------------------------------

TEST(TopicModelTest, InternsDistinctBlocks) {
  text::Vocabulary vocab;
  TopicModel::Options opts;
  opts.num_topics = 3;
  opts.terms_per_topic = 10;
  opts.shared_terms = 5;
  TopicModel model(opts, &vocab);
  EXPECT_EQ(vocab.size(), 3u * 10u + 5u);
  // Signatures are disjoint across topics.
  auto s0 = model.TopicSignature(0, 10);
  auto s1 = model.TopicSignature(1, 10);
  std::set<text::TermId> set0(s0.begin(), s0.end());
  for (text::TermId t : s1) EXPECT_FALSE(set0.contains(t));
}

TEST(TopicModelTest, ConcentrationBiasesSampling) {
  text::Vocabulary vocab;
  TopicModel::Options opts;
  opts.num_topics = 4;
  opts.concentration = 0.9;
  TopicModel model(opts, &vocab);
  Pcg32 rng(1);
  int in_topic = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (model.TermInTopic(model.SampleTerm(2, rng), 2)) ++in_topic;
  }
  double frac = static_cast<double>(in_topic) / n;
  EXPECT_NEAR(frac, 0.9, 0.03);
}

TEST(TopicModelTest, NoTopicSamplesBackground) {
  text::Vocabulary vocab;
  TopicModel model(TopicModel::Options(), &vocab);
  Pcg32 rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.TopicOfTerm(model.SampleTerm(kNoTopic, rng)), kNoTopic);
  }
}

TEST(TopicModelTest, TopicOfTermRecoversOwner) {
  text::Vocabulary vocab;
  TopicModel::Options opts;
  opts.num_topics = 3;
  TopicModel model(opts, &vocab);
  for (TopicId t = 0; t < 3; ++t) {
    for (text::TermId id : model.TopicSignature(t, 5)) {
      EXPECT_EQ(model.TopicOfTerm(id), t);
    }
  }
}

TEST(TopicModelTest, SignatureBoundedByTopicSize) {
  text::Vocabulary vocab;
  TopicModel::Options opts;
  opts.terms_per_topic = 7;
  TopicModel model(opts, &vocab);
  EXPECT_EQ(model.TopicSignature(0, 100).size(), 7u);
  EXPECT_TRUE(model.TopicSignature(-1, 5).empty());
}

// ---------------------------------------------------------------------------
// WebCorpus
// ---------------------------------------------------------------------------

TEST(WebCorpusTest, GeneratesRequestedPages) {
  WebCorpus corpus(SmallCorpus());
  EXPECT_EQ(corpus.num_pages(), 100u);
  EXPECT_GT(corpus.num_raw_objects(), corpus.num_pages());
}

TEST(WebCorpusTest, PagesHaveValidStructure) {
  WebCorpus corpus(SmallCorpus());
  for (const PhysicalPageSpec& page : corpus.pages()) {
    const RawWebObject& container = corpus.raw(page.container);
    EXPECT_TRUE(container.is_html());
    EXPECT_FALSE(container.title_terms.empty());
    EXPECT_FALSE(container.body_terms.empty());
    EXPECT_EQ(container.site, page.site);
    for (RawId c : page.components) {
      EXPECT_LT(c, corpus.num_raw_objects());
      EXPECT_FALSE(corpus.raw(c).is_html());
    }
    for (const Anchor& a : page.anchors) {
      EXPECT_LT(a.target, corpus.num_pages());
      EXPECT_NE(a.target, page.id);
      EXPECT_FALSE(a.text_terms.empty());
    }
  }
}

TEST(WebCorpusTest, ComponentsAreShared) {
  WebCorpus corpus(SmallCorpus());
  // At least one media object embedded by 2+ pages (Figure 2 situation).
  bool found_shared = false;
  for (RawId id = 0; id < corpus.num_raw_objects(); ++id) {
    if (!corpus.raw(id).is_html() && corpus.ContainersOf(id).size() >= 2) {
      found_shared = true;
      break;
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(WebCorpusTest, ContainersOfMatchesPageSpecs) {
  WebCorpus corpus(SmallCorpus());
  for (const PhysicalPageSpec& page : corpus.pages()) {
    for (RawId c : page.components) {
      const auto& containers = corpus.ContainersOf(c);
      EXPECT_NE(std::find(containers.begin(), containers.end(), page.id),
                containers.end());
    }
  }
}

TEST(WebCorpusTest, DeterministicForSeed) {
  WebCorpus a(SmallCorpus(7));
  WebCorpus b(SmallCorpus(7));
  ASSERT_EQ(a.num_raw_objects(), b.num_raw_objects());
  for (RawId id = 0; id < a.num_raw_objects(); ++id) {
    EXPECT_EQ(a.raw(id).size_bytes, b.raw(id).size_bytes);
    EXPECT_EQ(a.raw(id).url, b.raw(id).url);
    EXPECT_EQ(a.raw(id).body_terms, b.raw(id).body_terms);
  }
}

TEST(WebCorpusTest, DifferentSeedsDiffer) {
  WebCorpus a(SmallCorpus(7));
  WebCorpus b(SmallCorpus(8));
  ASSERT_EQ(a.num_pages(), b.num_pages());
  int differing = 0;
  for (PageId id = 0; id < a.num_pages(); ++id) {
    const RawWebObject& ra = a.raw(a.page(id).container);
    const RawWebObject& rb = b.raw(b.page(id).container);
    if (ra.body_terms != rb.body_terms) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(WebCorpusTest, LargeDocsExist) {
  CorpusOptions opts = SmallCorpus();
  opts.large_doc_fraction = 0.3;
  opts.large_doc_size = 4 * 1024 * 1024;
  WebCorpus corpus(opts);
  int large = 0;
  for (const PhysicalPageSpec& page : corpus.pages()) {
    if (corpus.raw(page.container).size_bytes >= opts.large_doc_size) ++large;
  }
  EXPECT_GT(large, 10);
}

TEST(WebCorpusTest, ModifyBumpsVersionAndDriftsContent) {
  WebCorpus corpus(SmallCorpus());
  Pcg32 rng(5);
  RawId container = corpus.page(0).container;
  auto before = corpus.raw(container).body_terms;
  EXPECT_EQ(corpus.raw(container).version, 1u);
  corpus.ModifyObject(container, 100 * kSecond, rng);
  EXPECT_EQ(corpus.raw(container).version, 2u);
  EXPECT_EQ(corpus.raw(container).last_modified, 100 * kSecond);
  EXPECT_NE(corpus.raw(container).body_terms, before);
  EXPECT_EQ(corpus.raw(container).body_terms.size(), before.size());
}

TEST(WebCorpusTest, SizesArePlausible) {
  WebCorpus corpus(SmallCorpus());
  for (RawId id = 0; id < corpus.num_raw_objects(); ++id) {
    EXPECT_GE(corpus.raw(id).size_bytes, 512u);
  }
}

TEST(WebCorpusTest, PagesOfSitePartition) {
  WebCorpus corpus(SmallCorpus());
  size_t total = 0;
  for (uint32_t s = 0; s < corpus.options().num_sites; ++s) {
    total += corpus.PagesOfSite(s).size();
  }
  EXPECT_EQ(total, corpus.num_pages());
}

// ---------------------------------------------------------------------------
// NewsFeed
// ---------------------------------------------------------------------------

class NewsFeedTest : public ::testing::Test {
 protected:
  NewsFeedTest() : corpus_(SmallCorpus()) {
    NewsFeed::Options opts;
    opts.num_bursts = 6;
    opts.horizon = 2 * kDay;
    opts.headline_lead = 30 * kMinute;
    feed_ = std::make_unique<NewsFeed>(opts, &corpus_.topic_model());
  }
  WebCorpus corpus_;
  std::unique_ptr<NewsFeed> feed_;
};

TEST_F(NewsFeedTest, GeneratesBurstsAndHeadlines) {
  EXPECT_EQ(feed_->bursts().size(), 6u);
  EXPECT_EQ(feed_->headlines().size(), 6u * 5u);
}

TEST_F(NewsFeedTest, ListsAreTimeSorted) {
  const auto& bursts = feed_->bursts();
  for (size_t i = 1; i < bursts.size(); ++i) {
    EXPECT_LE(bursts[i - 1].start, bursts[i].start);
  }
  const auto& hl = feed_->headlines();
  for (size_t i = 1; i < hl.size(); ++i) {
    EXPECT_LE(hl[i - 1].time, hl[i].time);
  }
}

TEST_F(NewsFeedTest, HeadlinesPrecedeTheirBurst) {
  // For every burst there are headlines strictly before burst start.
  for (const BurstSpec& burst : feed_->bursts()) {
    bool found = false;
    for (const NewsHeadline& h : feed_->headlines()) {
      if (h.topic == burst.topic && h.time <= burst.start) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(NewsFeedTest, HeadlineTermsMatchTopic) {
  const auto& model = corpus_.topic_model();
  for (const NewsHeadline& h : feed_->headlines()) {
    int on_topic = 0;
    for (text::TermId t : h.terms) {
      if (model.TopicOfTerm(t) == h.topic) ++on_topic;
    }
    EXPECT_GE(on_topic, static_cast<int>(h.terms.size()) / 2);
  }
}

TEST_F(NewsFeedTest, HeadlinesBetweenRespectsRange) {
  auto all = feed_->headlines();
  ASSERT_FALSE(all.empty());
  SimTime mid = all[all.size() / 2].time;
  auto early = feed_->HeadlinesBetween(0, mid);
  for (const auto& h : early) EXPECT_LT(h.time, mid);
  auto none = feed_->HeadlinesBetween(100 * kDay, 200 * kDay);
  EXPECT_TRUE(none.empty());
}

TEST_F(NewsFeedTest, TopicBoostActiveOnlyDuringBurst) {
  const BurstSpec& b = feed_->bursts().front();
  EXPECT_GT(feed_->TopicBoostAt(b.topic, b.start + b.duration / 2), 1.0);
  EXPECT_DOUBLE_EQ(feed_->TopicBoostAt(b.topic, b.start + b.duration + kDay * 30),
                   1.0);
}

TEST_F(NewsFeedTest, BurstActiveAt) {
  BurstSpec b;
  b.start = 100;
  b.duration = 50;
  EXPECT_TRUE(b.ActiveAt(100));
  EXPECT_TRUE(b.ActiveAt(149));
  EXPECT_FALSE(b.ActiveAt(150));
  EXPECT_FALSE(b.ActiveAt(99));
}

}  // namespace
}  // namespace cbfww::corpus
