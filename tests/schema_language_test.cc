#include <gtest/gtest.h>

#include "core/constraint_manager.h"
#include "core/storage_manager.h"

namespace cbfww::core {
namespace {

ConstraintManager MakeManager() {
  return ConstraintManager(ConstraintManager::Options{});
}

// ---------------------------------------------------------------------------
// Storage schema definition language (paper Section 4.4)
// ---------------------------------------------------------------------------

TEST(SchemaLanguageTest, PinStatement) {
  ConstraintManager cm = MakeManager();
  ASSERT_TRUE(cm.ApplySchemaStatement("PIN OBJECT 42 TO memory").ok());
  EXPECT_EQ(cm.PinnedTier(42), 0);
  ASSERT_TRUE(cm.ApplySchemaStatement("pin object 7 to tertiary;").ok());
  EXPECT_EQ(cm.PinnedTier(7), 2);
  EXPECT_EQ(cm.PinnedTier(999), storage::kNoTier);
}

TEST(SchemaLanguageTest, UnpinStatement) {
  ConstraintManager cm = MakeManager();
  ASSERT_TRUE(cm.ApplySchemaStatement("PIN OBJECT 1 TO disk").ok());
  ASSERT_TRUE(cm.ApplySchemaStatement("UNPIN OBJECT 1").ok());
  EXPECT_EQ(cm.PinnedTier(1), storage::kNoTier);
}

TEST(SchemaLanguageTest, RestrictStatement) {
  ConstraintManager cm = MakeManager();
  ASSERT_TRUE(cm.ApplySchemaStatement("RESTRICT OBJECT 5 BELOW disk").ok());
  EXPECT_EQ(cm.TierFloor(5), 1);
  EXPECT_EQ(cm.TierFloor(6), 0);  // Unrestricted.
}

TEST(SchemaLanguageTest, CopyrightStatement) {
  ConstraintManager cm = MakeManager();
  ASSERT_TRUE(cm.ApplySchemaStatement("COPYRIGHT OBJECT 9").ok());
  EXPECT_TRUE(cm.IsCopyrighted(9));
}

TEST(SchemaLanguageTest, ConsistencyStatement) {
  ConstraintManager cm = MakeManager();
  ASSERT_TRUE(cm.ApplySchemaStatement("CONSISTENCY strong").ok());
  EXPECT_EQ(cm.consistency_mode(), ConsistencyMode::kStrong);
  ASSERT_TRUE(cm.ApplySchemaStatement("CONSISTENCY weak").ok());
  EXPECT_EQ(cm.consistency_mode(), ConsistencyMode::kWeak);
}

TEST(SchemaLanguageTest, WholeSchemaWithCommentsAndSeparators) {
  ConstraintManager cm = MakeManager();
  Status s = cm.ApplySchema(R"(
      # security policy
      RESTRICT OBJECT 10 BELOW tertiary
      PIN OBJECT 11 TO memory; COPYRIGHT OBJECT 12

      CONSISTENCY strong
  )");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(cm.TierFloor(10), 2);
  EXPECT_EQ(cm.PinnedTier(11), 0);
  EXPECT_TRUE(cm.IsCopyrighted(12));
  EXPECT_EQ(cm.consistency_mode(), ConsistencyMode::kStrong);
}

TEST(SchemaLanguageTest, Errors) {
  ConstraintManager cm = MakeManager();
  EXPECT_FALSE(cm.ApplySchemaStatement("PIN OBJECT x TO memory").ok());
  EXPECT_FALSE(cm.ApplySchemaStatement("PIN OBJECT 1 TO floppy").ok());
  EXPECT_FALSE(cm.ApplySchemaStatement("FROB OBJECT 1").ok());
  EXPECT_FALSE(cm.ApplySchemaStatement("CONSISTENCY eventual").ok());
  // Empty statements and comments are fine.
  EXPECT_TRUE(cm.ApplySchemaStatement("").ok());
  EXPECT_TRUE(cm.ApplySchemaStatement("  # note ").ok());
}

// ---------------------------------------------------------------------------
// Manual definitions take effect in placement
// ---------------------------------------------------------------------------

struct PlacementFixture {
  PlacementFixture()
      : hierarchy({storage::DeviceModel::Memory(100000),
                   storage::DeviceModel::Disk(1000000),
                   storage::DeviceModel::Tertiary(0)}),
        constraints(ConstraintManager::Options{}),
        manager(&hierarchy, &constraints, StorageManager::Options{}) {}

  RawObjectRecord MakeRecord(corpus::RawId id, uint64_t bytes = 500) {
    RawObjectRecord rec;
    rec.id = id;
    rec.bytes = bytes;
    rec.has_summary = true;
    rec.summary_bytes = 64;
    return rec;
  }

  storage::StorageHierarchy hierarchy;
  ConstraintManager constraints;
  StorageManager manager;
};

TEST(ManualPlacementTest, RestrictedObjectNeverEntersMemory) {
  PlacementFixture f;
  ASSERT_TRUE(
      f.constraints.ApplySchemaStatement("RESTRICT OBJECT 1 BELOW disk").ok());
  RawObjectRecord rec = f.MakeRecord(1);
  ASSERT_TRUE(f.manager.AdmitNew(rec, /*priority=*/100.0).ok());
  auto id = EncodeStoreId(index::ObjectLevel::kRaw, 1);
  EXPECT_FALSE(f.hierarchy.IsResident(id, 0));
  EXPECT_TRUE(f.hierarchy.IsResident(id, 1));

  // Even a rebalance ranking it first keeps it out of memory.
  std::vector<StorageManager::RankedObject> ranked = {{&rec, 100.0}};
  f.manager.Rebalance(ranked);
  EXPECT_FALSE(f.hierarchy.IsResident(id, 0));
  // PromoteOnAccess also refuses.
  f.manager.PromoteOnAccess(rec, 1000.0);
  EXPECT_FALSE(f.hierarchy.IsResident(id, 0));
}

TEST(ManualPlacementTest, PinnedObjectStaysPutRegardlessOfPriority) {
  PlacementFixture f;
  ASSERT_TRUE(
      f.constraints.ApplySchemaStatement("PIN OBJECT 2 TO memory").ok());
  std::vector<RawObjectRecord> recs;
  recs.push_back(f.MakeRecord(2));
  for (corpus::RawId id = 10; id < 20; ++id) {
    recs.push_back(f.MakeRecord(id));
  }
  for (auto& rec : recs) ASSERT_TRUE(f.manager.AdmitNew(rec, 0.0).ok());

  // Rebalance with the pinned object ranked dead last.
  std::vector<StorageManager::RankedObject> ranked;
  for (auto& rec : recs) {
    ranked.push_back({&rec, rec.id == 2 ? 0.0 : 50.0});
  }
  f.manager.Rebalance(ranked);
  EXPECT_TRUE(f.hierarchy.IsResident(
      EncodeStoreId(index::ObjectLevel::kRaw, 2), 0));
}

TEST(ManualPlacementTest, PinSurvivesDisplacementPressure) {
  PlacementFixture f;
  ASSERT_TRUE(
      f.constraints.ApplySchemaStatement("PIN OBJECT 1 TO memory").ok());
  // Admit the pinned object plus far more hot data than memory holds
  // (memory = 100000 bytes, each object 500).
  std::vector<RawObjectRecord> recs;
  recs.push_back(f.MakeRecord(1));
  for (corpus::RawId id = 100; id < 400; ++id) {
    recs.push_back(f.MakeRecord(id));
  }
  std::vector<StorageManager::RankedObject> ranked;
  for (auto& rec : recs) {
    ASSERT_TRUE(f.manager.AdmitNew(rec, 0.0).ok());
    ranked.push_back({&rec, rec.id == 1 ? 0.0 : 100.0});
  }
  f.manager.Rebalance(ranked);
  auto pinned_id = EncodeStoreId(index::ObjectLevel::kRaw, 1);
  ASSERT_TRUE(f.hierarchy.IsResident(pinned_id, 0));
  // Displacement pressure: a flood of very hot promotions must never push
  // the pinned object out.
  for (corpus::RawId id = 100; id < 400; ++id) {
    f.manager.PromoteOnAccess(recs[id - 99], 1000.0);
  }
  EXPECT_TRUE(f.hierarchy.IsResident(pinned_id, 0));
}

TEST(ManualPlacementTest, CopyrightedObjectNeverRematerializedByRebalance) {
  PlacementFixture f;
  RawObjectRecord rec = f.MakeRecord(9);
  ASSERT_TRUE(f.manager.AdmitNew(rec, 1.0).ok());
  auto sid = EncodeStoreId(index::ObjectLevel::kRaw, 9);
  ASSERT_NE(f.hierarchy.FastestTierOf(sid), storage::kNoTier);
  // The license problem is discovered later; the rebalancer must purge it.
  ASSERT_TRUE(f.constraints.ApplySchemaStatement("COPYRIGHT OBJECT 9").ok());
  std::vector<StorageManager::RankedObject> ranked = {{&rec, 1.0}};
  f.manager.Rebalance(ranked);
  EXPECT_EQ(f.hierarchy.FastestTierOf(sid), storage::kNoTier);
}

TEST(ManualPlacementTest, PinToTertiaryDemotes) {
  PlacementFixture f;
  ASSERT_TRUE(
      f.constraints.ApplySchemaStatement("PIN OBJECT 3 TO tertiary").ok());
  RawObjectRecord rec = f.MakeRecord(3);
  ASSERT_TRUE(f.manager.AdmitNew(rec, 100.0).ok());
  std::vector<StorageManager::RankedObject> ranked = {{&rec, 100.0}};
  f.manager.Rebalance(ranked);
  auto id = EncodeStoreId(index::ObjectLevel::kRaw, 3);
  EXPECT_FALSE(f.hierarchy.IsResident(id, 0));
  EXPECT_FALSE(f.hierarchy.IsResident(id, 1));
  EXPECT_TRUE(f.hierarchy.IsResident(id, 2));
}

}  // namespace
}  // namespace cbfww::core
