// Gateway subsystem tests: consistent-hash ring properties, keep-alive
// client pooling, request-id propagation, and the full routing /
// replication / failover ladder against real warehouse node servers
// (in-process HttpServers for speed; one test forks a real NodeProcess
// and kills it).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "gateway/gateway_server.h"
#include "gateway/hash_ring.h"
#include "gateway/node_pool.h"
#include "gateway/node_process.h"
#include "server/client_pool.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace cbfww::gateway {
namespace {

using cluster::ClusterOptions;
using cluster::WarehouseCluster;

corpus::CorpusOptions SmallCorpus() {
  corpus::CorpusOptions opts;
  opts.num_sites = 2;
  opts.pages_per_site = 10;
  opts.topic.num_topics = 2;
  opts.seed = 11;
  return opts;
}

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_shards = 2;
  opts.warehouse.memory_bytes = 4ull * 1024 * 1024;
  opts.warehouse.disk_bytes = 64ull * 1024 * 1024;
  opts.warehouse.rebalance_interval = kHour;
  // Strong consistency: a modification invalidates fast copies, so the
  // next page request re-materializes and captures the new generation —
  // what the write-through test's version witness observes.
  opts.warehouse.constraints.default_consistency =
      core::ConsistencyMode::kStrong;
  return opts;
}

/// One in-process warehouse node (cluster + HTTP server with an id).
struct InProcNode {
  std::unique_ptr<WarehouseCluster> cluster;
  std::unique_ptr<server::HttpServer> server;

  static InProcNode Start(const std::string& id, uint16_t port = 0) {
    InProcNode node;
    node.cluster = std::make_unique<WarehouseCluster>(
        SmallCorpus(), std::nullopt, SmallCluster());
    server::ServerOptions sopts;
    sopts.node_id = id;
    sopts.port = port;
    node.server =
        std::make_unique<server::HttpServer>(node.cluster.get(), sopts);
    EXPECT_TRUE(node.server->Start().ok());
    return node;
  }
};

GatewayOptions FastGatewayOptions() {
  GatewayOptions opts;
  opts.replication = 2;
  // Deterministic tests drive probes explicitly; fast client timeouts keep
  // dead-node detection snappy.
  opts.pool.enable_prober = false;
  opts.pool.pool.client.connect_timeout_ms = 1000;
  opts.pool.pool.client.read_timeout_ms = 2000;
  opts.pool.pool.client.write_timeout_ms = 2000;
  return opts;
}

uint64_t MetricCounter(const std::string& metrics, const std::string& name) {
  size_t pos = metrics.find(name);
  if (pos == std::string::npos) return 0;
  pos += name.size();
  while (pos < metrics.size() && metrics[pos] == ' ') pos++;
  return std::stoull(metrics.substr(pos));
}

// ---------------------------------------------------------------------------
// Hash ring

TEST(HashRingTest, BalancedOwnershipAndDistinctReplicas) {
  HashRing ring(RingOptions{});
  for (const char* id : {"node-a", "node-b", "node-c", "node-d"}) {
    ring.AddNode(id);
  }
  for (const auto& [id, share] : ring.OwnershipShares()) {
    EXPECT_GT(share, 0.10) << id;
    EXPECT_LT(share, 0.45) << id;
  }
  for (int k = 0; k < 100; k++) {
    std::vector<std::string> replicas =
        ring.ReplicasFor(std::to_string(k), 2);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);
    // Primary of the set is PrimaryFor.
    EXPECT_EQ(replicas[0], ring.PrimaryFor(std::to_string(k)));
  }
  // Replica count clamps to membership.
  EXPECT_EQ(ring.ReplicasFor("x", 9).size(), 4u);
}

TEST(HashRingTest, StableAcrossMembershipChanges) {
  HashRing ring(RingOptions{});
  for (const char* id : {"node-a", "node-b", "node-c", "node-d"}) {
    ring.AddNode(id);
  }
  std::map<int, std::string> before;
  for (int k = 0; k < 300; k++) before[k] = ring.PrimaryFor(std::to_string(k));

  ring.RemoveNode("node-d");
  int moved = 0;
  for (int k = 0; k < 300; k++) {
    std::string now = ring.PrimaryFor(std::to_string(k));
    if (before[k] == "node-d") {
      // Orphaned keys must land somewhere else...
      EXPECT_NE(now, "node-d");
      moved++;
    } else {
      // ...but keys owned by survivors must not move — the consistent-hash
      // contract that makes membership churn cheap.
      EXPECT_EQ(now, before[k]) << "key " << k;
    }
  }
  EXPECT_GT(moved, 0);

  // Re-adding restores the exact original mapping (points depend only on
  // the member id, never on join order or current membership).
  ring.AddNode("node-d");
  for (int k = 0; k < 300; k++) {
    EXPECT_EQ(ring.PrimaryFor(std::to_string(k)), before[k]);
  }
}

TEST(HashRingTest, JoinOrderIrrelevant) {
  HashRing a{RingOptions{}}, b{RingOptions{}};
  for (const char* id : {"n0", "n1", "n2"}) a.AddNode(id);
  for (const char* id : {"n2", "n0", "n1"}) b.AddNode(id);
  for (int k = 0; k < 100; k++) {
    EXPECT_EQ(a.ReplicasFor(std::to_string(k), 2),
              b.ReplicasFor(std::to_string(k), 2));
  }
}

// ---------------------------------------------------------------------------
// Client pool (satellite: independently tested unit)

TEST(ClientPoolTest, ReusesIdleConnectionsAndCounts) {
  InProcNode node = InProcNode::Start("pool-node");
  server::ClientPoolOptions opts;
  opts.max_idle = 2;
  server::ClientPool pool("127.0.0.1", node.server->port(), opts);

  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok());
    auto r = (*lease)->RoundTrip("GET", "/healthz");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200);
    // First request on a fresh connection: no reuse yet.
    EXPECT_EQ((*lease)->client_stats().requests, 1u);
    EXPECT_EQ((*lease)->client_stats().reuses, 0u);
  }  // Lease returns the connection to the pool.
  EXPECT_EQ(pool.idle_size(), 1u);

  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok());
    auto r = (*lease)->RoundTrip("GET", "/healthz");
    ASSERT_TRUE(r.ok());
    // Same connection came back: its second request counts as a reuse.
    EXPECT_EQ((*lease)->client_stats().requests, 2u);
    EXPECT_EQ((*lease)->client_stats().reuses, 1u);
  }
  auto stats = pool.pool_stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.dials, 1u);
  EXPECT_EQ(stats.pool_hits, 1u);

  node.server->Stop();
}

TEST(ClientPoolTest, EvictsOverCapAndStaleConnections) {
  InProcNode node = InProcNode::Start("pool-node2");
  const uint16_t port = node.server->port();
  server::ClientPoolOptions opts;
  opts.max_idle = 1;
  server::ClientPool pool("127.0.0.1", port, opts);

  {
    // Two concurrent leases force a second dial; releasing both overflows
    // max_idle = 1.
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE((*a)->RoundTrip("GET", "/healthz").ok());
    ASSERT_TRUE((*b)->RoundTrip("GET", "/healthz").ok());
  }
  EXPECT_EQ(pool.idle_size(), 1u);
  EXPECT_EQ(pool.pool_stats().dials, 2u);
  EXPECT_EQ(pool.pool_stats().evicted_full, 1u);

  // Kill the server: the pooled idle connection is now dead on the other
  // end. Acquire must detect it (IdleConnectionAlive), evict, and fail the
  // redial instead of handing out a corpse.
  node.server->Stop();
  auto lease = pool.Acquire();
  EXPECT_FALSE(lease.ok());
  EXPECT_GE(pool.pool_stats().evicted_stale, 1u);
  EXPECT_EQ(pool.idle_size(), 0u);
}

// ---------------------------------------------------------------------------
// /healthz enrichment (satellite)

TEST(HealthzTest, ReportsNodeIdShardsAndSuspension) {
  InProcNode node = InProcNode::Start("healthz-node");
  server::SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", node.server->port()).ok());

  auto r = client.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r->body.find("\"node\":\"healthz-node\""), std::string::npos);
  EXPECT_NE(r->body.find("\"suspended\":false"), std::string::npos);
  EXPECT_NE(r->body.find("\"queue_depth_high_water\""), std::string::npos);

  node.cluster->SuspendShard(0);
  r = client.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->body.find("\"suspended\":true"), std::string::npos);
  node.cluster->ResumeShard(0);

  node.server->Stop();
}

// ---------------------------------------------------------------------------
// Gateway end-to-end over in-process nodes

class GatewayE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; i++) {
      ids_.push_back("n" + std::to_string(i));
      nodes_.push_back(InProcNode::Start(ids_.back()));
    }
    std::vector<NodeEndpoint> endpoints;
    for (size_t i = 0; i < nodes_.size(); i++) {
      endpoints.push_back(
          NodeEndpoint{ids_[i], "127.0.0.1", nodes_[i].server->port()});
    }
    gateway_ =
        std::make_unique<GatewayServer>(endpoints, FastGatewayOptions());
    ASSERT_TRUE(gateway_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", gateway_->port()).ok());
  }

  void TearDown() override {
    gateway_->Stop();
    for (auto& node : nodes_) {
      if (node.server) node.server->Stop();
    }
  }

  InProcNode& NodeById(const std::string& id) {
    for (size_t i = 0; i < ids_.size(); i++) {
      if (ids_[i] == id) return nodes_[i];
    }
    ADD_FAILURE() << "no node " << id;
    return nodes_[0];
  }

  uint64_t NodeModifyCount(const std::string& id) {
    server::SimpleHttpClient c;
    if (!c.Connect("127.0.0.1", NodeById(id).server->port()).ok()) return 0;
    auto r = c.RoundTrip("GET", "/metrics");
    if (!r.ok()) return 0;
    return MetricCounter(r->body,
                         "cbfww_route_requests_total{route=\"modify\"}");
  }

  std::vector<std::string> ids_;
  std::vector<InProcNode> nodes_;
  std::unique_ptr<GatewayServer> gateway_;
  server::SimpleHttpClient client_;
};

TEST_F(GatewayE2eTest, RoutesReadsToPrimaryAndPropagatesIds) {
  std::vector<std::string> replicas = gateway_->ReplicasForKey("5");
  ASSERT_EQ(replicas.size(), 2u);

  auto r = client_.RoundTrip("GET", "/page/5?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  // The ring's primary answered, and said so.
  EXPECT_EQ(r->Header("x-cbfww-served-by"), replicas[0]);
  EXPECT_EQ(r->Header("x-cbfww-gateway-rung"), "primary");
  // The node identified itself and the gateway stamped a request id.
  EXPECT_EQ(r->Header("x-cbfww-node"), replicas[0]);
  EXPECT_FALSE(r->Header("x-cbfww-request-id").empty());
  EXPECT_EQ(gateway_->stats().request_ids_stamped.load(), 1u);

  // A client-supplied id is propagated verbatim, not replaced.
  r = client_.RoundTrip("GET", "/page/5?user=1&session=1", {},
                        "X-Cbfww-Request-Id: trace-42\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Header("x-cbfww-request-id"), "trace-42");
  EXPECT_EQ(gateway_->stats().request_ids_stamped.load(), 1u);
  EXPECT_EQ(gateway_->stats().served_primary.load(), 2u);
}

TEST_F(GatewayE2eTest, ReadFailsOverToPeerThenRecovers) {
  std::vector<std::string> replicas = gateway_->ReplicasForKey("7");
  ASSERT_EQ(replicas.size(), 2u);
  const std::string primary = replicas[0];
  const std::string peer = replicas[1];

  // Kill the primary (in-process stop = connection refused from now on).
  NodeById(primary).server->Stop();

  auto r = client_.RoundTrip("GET", "/page/7?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->Header("x-cbfww-served-by"), peer);
  EXPECT_EQ(r->Header("x-cbfww-gateway-rung"), "peer");
  EXPECT_GE(gateway_->stats().peer_failovers.load(), 1u);
  // Passive detection marked the primary down.
  EXPECT_EQ(gateway_->pool().Health(primary), NodeHealth::kDown);

  // Subsequent reads skip the corpse without paying a connect timeout.
  r = client_.RoundTrip("GET", "/page/7?user=1&session=2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->Header("x-cbfww-served-by"), peer);
}

TEST_F(GatewayE2eTest, DegradedReplicaStillServesOnPeerRung) {
  std::vector<std::string> replicas = gateway_->ReplicasForKey("9");
  const std::string primary = replicas[0];
  // A draining/overloaded (not dead) primary is kDegraded: still live,
  // still serving — the ladder only reorders when a replica is down.
  gateway_->pool().SetHealth(primary, NodeHealth::kDegraded);
  auto r = client_.RoundTrip("GET", "/page/9?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->Header("x-cbfww-served-by"), primary);
}

TEST_F(GatewayE2eTest, WriteThroughReplicatesToAllLiveNodes) {
  // Warm page 0 on every node directly (not via the gateway, which would
  // route it to one primary) so each holds a copy of its container raw.
  const corpus::RawId raw =
      nodes_[0].cluster->shard(0).corpus().page(0).container;
  for (auto& node : nodes_) {
    server::SimpleHttpClient direct;
    ASSERT_TRUE(
        direct.Connect("127.0.0.1", node.server->port()).ok());
    auto warm = direct.RoundTrip("GET", "/page/0?user=1&session=1");
    ASSERT_TRUE(warm.ok());
    ASSERT_EQ(warm->status, 200);
  }

  std::map<std::string, uint64_t> before;
  for (const std::string& id : ids_) before[id] = NodeModifyCount(id);
  std::map<std::string, uint64_t> epoch_before;
  auto shard_epochs = [](InProcNode& node) {
    uint64_t total = 0;
    for (uint32_t s = 0; s < node.cluster->num_shards(); s++) {
      total += node.cluster->shard(s).data_epoch();
    }
    return total;
  };
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i].cluster->Drain();
    epoch_before[ids_[i]] = shard_epochs(nodes_[i]);
  }

  auto r = client_.RoundTrip(
      "POST", "/modify/" + std::to_string(raw) + "?t=9000000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 202);
  EXPECT_NE(r->body.find("\"acked\":true"), std::string::npos);
  EXPECT_NE(r->body.find("\"delivered\":3"), std::string::npos);
  EXPECT_EQ(gateway_->stats().writes_acked.load(), 1u);

  // Every node really received the modification (wire-level witness)...
  for (const std::string& id : ids_) {
    EXPECT_EQ(NodeModifyCount(id), before[id] + 1) << id;
  }
  // ...and applied it: the modification event reached every shard of
  // every node (data_epoch advances once per applied event per shard —
  // the in-process acknowledged-object witness).
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i].cluster->Drain();
    EXPECT_GE(shard_epochs(nodes_[i]),
              epoch_before[ids_[i]] + nodes_[i].cluster->num_shards())
        << ids_[i];
    // Re-materializing the page records the post-modification version:
    // two generations of the container raw now exist on this node.
    server::SimpleHttpClient direct;
    ASSERT_TRUE(
        direct.Connect("127.0.0.1", nodes_[i].server->port()).ok());
    auto reread = direct.RoundTrip("GET", "/page/0?user=1&session=2");
    ASSERT_TRUE(reread.ok());
    ASSERT_EQ(reread->status, 200);
    nodes_[i].cluster->Drain();
    uint64_t generations = 0;
    for (uint32_t s = 0; s < nodes_[i].cluster->num_shards(); s++) {
      generations +=
          nodes_[i].cluster->shard(s).versions().VersionsOf(raw).size();
    }
    EXPECT_GE(generations, 2u) << ids_[i];
  }
}

TEST_F(GatewayE2eTest, UnreachableRequiredReplicaMeansNoAckPlusHint) {
  // Find a raw id whose replica set contains a chosen victim.
  const std::string victim = ids_[2];
  int raw = -1;
  for (int candidate = 0; candidate < 64; candidate++) {
    std::vector<std::string> replicas =
        gateway_->ReplicasForRaw(std::to_string(candidate));
    if (std::find(replicas.begin(), replicas.end(), victim) !=
        replicas.end()) {
      raw = candidate;
      break;
    }
  }
  ASSERT_GE(raw, 0);
  const uint16_t victim_port = NodeById(victim).server->port();
  NodeById(victim).server->Stop();

  std::string target = "/modify/" + std::to_string(raw) + "?t=1000000";
  auto r = client_.RoundTrip("POST", target);
  ASSERT_TRUE(r.ok());
  // A required replica missed the write: the gateway must NOT acknowledge.
  EXPECT_EQ(r->status, 503);
  EXPECT_NE(r->body.find("\"acked\":false"), std::string::npos);
  EXPECT_NE(r->body.find(victim), std::string::npos);
  EXPECT_GE(gateway_->pool().PendingHints(victim), 1u);
  EXPECT_EQ(gateway_->stats().writes_unacked.load(), 1u);

  // Node recovery: restart on the same port, probe, hints replay.
  uint64_t before = NodeModifyCount(victim);
  (void)before;
  NodeById(victim) = InProcNode::Start(victim, victim_port);
  ASSERT_TRUE(gateway_->pool().ProbeOnce(victim).ok());
  EXPECT_EQ(gateway_->pool().Health(victim), NodeHealth::kUp);
  EXPECT_EQ(gateway_->pool().PendingHints(victim), 0u);
  // The replayed hint landed as a real modification on the reborn node.
  EXPECT_GE(NodeModifyCount(victim), 1u);
}

TEST_F(GatewayE2eTest, ReadRepairFlushesPrimaryHintsOnPeerHit) {
  std::vector<std::string> replicas = gateway_->ReplicasForKey("3");
  const std::string primary = replicas[0];
  const uint16_t primary_port = NodeById(primary).server->port();
  NodeById(primary).server->Stop();

  // A write while the primary is down leaves a hint behind (the write
  // itself may or may not ack depending on the raw key's replica set).
  (void)client_.RoundTrip("POST", "/modify/2?t=1000000");
  // Ensure the down node has at least one queued hint either way.
  gateway_->pool().QueueHint(
      primary, NodePool::Hint{"POST", "/modify/2?t=1000001", "", ""});
  ASSERT_GE(gateway_->pool().PendingHints(primary), 1u);

  // Primary comes back, but no probe has noticed yet (it is still marked
  // down). A peer-rung read triggers read-repair: the hints flush now.
  NodeById(primary) = InProcNode::Start(primary, primary_port);
  auto r = client_.RoundTrip("GET", "/page/3?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->Header("x-cbfww-served-by"), primary);
  EXPECT_GE(gateway_->stats().read_repairs.load(), 1u);
  EXPECT_EQ(gateway_->pool().PendingHints(primary), 0u);
}

TEST_F(GatewayE2eTest, ScatterQueryMergesAllNodesWithErrorSlots) {
  auto r = client_.RoundTrip("POST", "/query",
                             "SELECT p.url FROM Physical_Page p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("\"nodes_ok\":3"), std::string::npos);
  for (const std::string& id : ids_) {
    EXPECT_NE(r->body.find("\"node\":\"" + id + "\""), std::string::npos);
  }

  // One node down: the scatter degrades to a partial answer with an
  // explicit per-node error slot, not a total failure.
  NodeById(ids_[1]).server->Stop();
  r = client_.RoundTrip("POST", "/query", "SELECT p.url FROM Physical_Page p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("\"nodes_ok\":2"), std::string::npos);
  EXPECT_NE(r->body.find("\"ok\":false"), std::string::npos);
  EXPECT_GE(gateway_->stats().scatter_node_errors.load(), 1u);

  // Malformed OQL is the client's fault on every node: 400, not 503.
  r = client_.RoundTrip("POST", "/query", "NOT A QUERY");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 400);
}

TEST_F(GatewayE2eTest, NodeLeaveHandsOffOwnershipAndJoinRestoresIt) {
  // Membership before: every node owns some keys.
  std::map<int, std::string> before;
  for (int k = 0; k < 100; k++) {
    before[k] = gateway_->ReplicasForKey(std::to_string(k))[0];
  }
  const std::string leaver = ids_[0];

  // Maintenance window on the leaver: suspend its shards (the handoff
  // protocol), then leave.
  for (uint32_t s = 0; s < SmallCluster().num_shards; s++) {
    NodeById(leaver).cluster->SuspendShard(s);
  }
  ASSERT_TRUE(gateway_->NodeLeave(leaver).ok());
  EXPECT_EQ(gateway_->pool().Health(leaver), NodeHealth::kLeft);

  // Its keyspace handed off to ring successors; reads keep working.
  for (int k = 0; k < 100; k++) {
    std::string owner = gateway_->ReplicasForKey(std::to_string(k))[0];
    EXPECT_NE(owner, leaver);
    if (before[k] != leaver) {
      EXPECT_EQ(owner, before[k]) << "survivor ownership moved for key " << k;
    }
  }
  auto r = client_.RoundTrip("GET", "/page/4?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->Header("x-cbfww-served-by"), leaver);

  // Rejoin (resume shards first — recovery of a real node would replay
  // durable state here), probe brings it up, ownership restored exactly.
  for (uint32_t s = 0; s < SmallCluster().num_shards; s++) {
    NodeById(leaver).cluster->ResumeShard(s);
  }
  ASSERT_TRUE(gateway_->NodeJoin(leaver).ok());
  EXPECT_EQ(gateway_->pool().Health(leaver), NodeHealth::kUp);
  for (int k = 0; k < 100; k++) {
    EXPECT_EQ(gateway_->ReplicasForKey(std::to_string(k))[0], before[k]);
  }
}

TEST_F(GatewayE2eTest, AdminRoutesExposeFleetState) {
  auto r = client_.RoundTrip("GET", "/admin/nodes");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  for (const std::string& id : ids_) {
    EXPECT_NE(r->body.find("\"node\":\"" + id + "\""), std::string::npos);
  }
  EXPECT_NE(r->body.find("\"replication\":2"), std::string::npos);
  EXPECT_NE(r->body.find("\"health\":\"up\""), std::string::npos);

  r = client_.RoundTrip("GET", "/healthz");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("\"role\":\"gateway\""), std::string::npos);
  EXPECT_NE(r->body.find("\"live_nodes\":3"), std::string::npos);

  r = client_.RoundTrip("GET", "/metrics");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("cbfww_gateway_up 1"), std::string::npos);
  EXPECT_NE(r->body.find("cbfww_gateway_node_health"), std::string::npos);

  r = client_.RoundTrip("GET", "/nope");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
}

TEST_F(GatewayE2eTest, AllNodesDownYields503WithRequestId) {
  for (auto& node : nodes_) node.server->Stop();
  // First read pays the transport failures and marks everything down.
  auto r = client_.RoundTrip("GET", "/page/1?user=1&session=1", {},
                             "X-Cbfww-Request-Id: doomed-1\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 503);
  EXPECT_NE(r->body.find("doomed-1"), std::string::npos);
  EXPECT_FALSE(r->Header("retry-after").empty());
  // Second read short-circuits: no live candidates at all.
  r = client_.RoundTrip("GET", "/page/1?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 503);
  EXPECT_GE(gateway_->stats().unavailable.load(), 1u);
}

// ---------------------------------------------------------------------------
// Forked node process (the real-failure harness)

TEST(NodeProcessTest, ForkedNodeServesThenDiesForReal) {
  NodeProcessOptions nopts;
  nopts.node_id = "forked-0";
  nopts.corpus = SmallCorpus();
  nopts.cluster = SmallCluster();
  auto spawned = NodeProcess::Spawn(nopts);
  ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
  NodeProcess node = std::move(*spawned);
  ASSERT_GT(node.port(), 0);

  GatewayOptions gopts = FastGatewayOptions();
  gopts.replication = 1;
  GatewayServer gateway(
      {NodeEndpoint{"forked-0", "127.0.0.1", node.port()}}, gopts);
  ASSERT_TRUE(gateway.Start().ok());
  server::SimpleHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", gateway.port()).ok());

  auto r = client.RoundTrip("GET", "/page/2?user=1&session=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->Header("x-cbfww-node"), "forked-0");

  // SIGKILL: the whole process vanishes, mid-connection. No in-process
  // Stop() can fake this.
  node.Kill();
  r = client.RoundTrip("GET", "/page/2?user=1&session=2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 503);
  EXPECT_EQ(gateway.pool().Health("forked-0"), NodeHealth::kDown);

  gateway.Stop();
}

}  // namespace
}  // namespace cbfww::gateway
