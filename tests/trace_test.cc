#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "corpus/web_corpus.h"
#include "trace/trace_event.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace cbfww::trace {
namespace {

corpus::CorpusOptions TestCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 5;
  opts.pages_per_site = 60;
  opts.seed = 11;
  return opts;
}

WorkloadOptions TestWorkloadOptions() {
  WorkloadOptions opts;
  opts.horizon = 12 * kHour;
  opts.sessions_per_hour = 120;
  opts.seed = 21;
  return opts;
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : corpus_(TestCorpusOptions()) {}
  corpus::WebCorpus corpus_;
};

TEST_F(WorkloadTest, EventsAreTimeOrderedAndInHorizon) {
  WorkloadGenerator gen(&corpus_, nullptr, TestWorkloadOptions());
  auto events = gen.Generate();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.time, 0);
    if (e.type == TraceEventType::kRequest) {
      EXPECT_LT(e.page, corpus_.num_pages());
    } else {
      EXPECT_LT(e.modified, corpus_.num_raw_objects());
    }
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator a(&corpus_, nullptr, TestWorkloadOptions());
  WorkloadGenerator b(&corpus_, nullptr, TestWorkloadOptions());
  auto ea = a.Generate();
  auto eb = b.Generate();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].time, eb[i].time);
    EXPECT_EQ(ea[i].page, eb[i].page);
    EXPECT_EQ(ea[i].session, eb[i].session);
  }
}

TEST_F(WorkloadTest, SessionsAreContiguousAndStartFlagged) {
  WorkloadGenerator gen(&corpus_, nullptr, TestWorkloadOptions());
  auto events = gen.Generate();
  std::unordered_map<int64_t, int> counts;
  std::unordered_set<int64_t> started;
  for (const TraceEvent& e : events) {
    if (e.type != TraceEventType::kRequest) continue;
    ++counts[e.session];
    if (e.session_start) {
      EXPECT_FALSE(started.contains(e.session));
      started.insert(e.session);
    }
  }
  // Every session has exactly one start.
  EXPECT_EQ(counts.size(), started.size());
}

TEST_F(WorkloadTest, ViaLinkFollowsRealAnchors) {
  WorkloadGenerator gen(&corpus_, nullptr, TestWorkloadOptions());
  auto events = gen.Generate();
  // Track previous page per session; via_link implies a real anchor.
  std::unordered_map<int64_t, corpus::PageId> prev;
  int checked = 0;
  for (const TraceEvent& e : events) {
    if (e.type != TraceEventType::kRequest) continue;
    if (e.via_link) {
      auto it = prev.find(e.session);
      ASSERT_NE(it, prev.end());
      bool linked = false;
      for (const corpus::Anchor& a : corpus_.page(it->second).anchors) {
        if (a.target == e.page) {
          linked = true;
          break;
        }
      }
      EXPECT_TRUE(linked) << "via_link request without matching anchor";
      ++checked;
    }
    prev[e.session] = e.page;
  }
  EXPECT_GT(checked, 100);
}

TEST_F(WorkloadTest, ColdStartFractionControlsOneTimers) {
  // One-timer behaviour needs a corpus comfortably larger than the request
  // volume (the paper's setting: the web vs one provider's users).
  corpus::CorpusOptions big = TestCorpusOptions();
  big.pages_per_site = 800;
  corpus::WebCorpus big_corpus(big);

  WorkloadOptions cold = TestWorkloadOptions();
  cold.horizon = 6 * kHour;
  cold.cold_start_fraction = 0.8;
  cold.trail_session_prob = 0.0;
  WorkloadOptions hot = cold;
  hot.cold_start_fraction = 0.05;

  WorkloadGenerator cold_gen(&big_corpus, nullptr, cold);
  WorkloadGenerator hot_gen(&big_corpus, nullptr, hot);
  auto cold_stats =
      ComputeTraceStats(cold_gen.Generate(), cold_gen.ContainerOfPages());
  auto hot_stats =
      ComputeTraceStats(hot_gen.Generate(), hot_gen.ContainerOfPages());
  EXPECT_GT(cold_stats.OneTimerFraction(), hot_stats.OneTimerFraction());
  // At the paper's operating point the one-timer majority emerges.
  EXPECT_GT(cold_stats.OneTimerFraction(), 0.4);
}

TEST_F(WorkloadTest, TrailsAreValidPaths) {
  WorkloadGenerator gen(&corpus_, nullptr, TestWorkloadOptions());
  ASSERT_FALSE(gen.trails().empty());
  for (const Trail& trail : gen.trails()) {
    ASSERT_GE(trail.pages.size(), 2u);
    ASSERT_EQ(trail.anchor_index.size(), trail.pages.size() - 1);
    for (size_t i = 0; i + 1 < trail.pages.size(); ++i) {
      const auto& anchors = corpus_.page(trail.pages[i]).anchors;
      ASSERT_LT(trail.anchor_index[i], anchors.size());
      EXPECT_EQ(anchors[trail.anchor_index[i]].target, trail.pages[i + 1]);
    }
  }
}

TEST_F(WorkloadTest, TrailsAreReplayedOften) {
  WorkloadOptions opts = TestWorkloadOptions();
  opts.trail_session_prob = 0.5;
  WorkloadGenerator gen(&corpus_, nullptr, opts);
  auto events = gen.Generate();
  // Count completed replays of the most popular trail.
  const Trail& top = gen.trails().front();
  std::unordered_map<int64_t, size_t> progress;
  int completions = 0;
  for (const TraceEvent& e : events) {
    if (e.type != TraceEventType::kRequest) continue;
    size_t& p = progress[e.session];
    if (p < top.pages.size() && e.page == top.pages[p]) {
      ++p;
      if (p == top.pages.size()) ++completions;
    }
  }
  EXPECT_GT(completions, 10);
}

TEST_F(WorkloadTest, BurstSkewsTowardHotTopic) {
  corpus::NewsFeed::Options feed_opts;
  feed_opts.num_bursts = 1;
  feed_opts.horizon = 12 * kHour;
  feed_opts.intensity = 50.0;
  feed_opts.burst_duration_mean = 6 * kHour;
  corpus::NewsFeed feed(feed_opts, &corpus_.topic_model());
  ASSERT_EQ(feed.bursts().size(), 1u);
  const corpus::BurstSpec& burst = feed.bursts().front();

  WorkloadOptions opts = TestWorkloadOptions();
  opts.trail_session_prob = 0.0;
  WorkloadGenerator gen(&corpus_, &feed, opts);
  auto events = gen.Generate();

  uint64_t in_burst_topic = 0, in_burst_total = 0;
  uint64_t out_topic = 0, out_total = 0;
  for (const TraceEvent& e : events) {
    if (e.type != TraceEventType::kRequest || !e.session_start) continue;
    bool hot = corpus_.page(e.page).topic == burst.topic;
    if (burst.ActiveAt(e.time)) {
      ++in_burst_total;
      if (hot) ++in_burst_topic;
    } else {
      ++out_total;
      if (hot) ++out_topic;
    }
  }
  ASSERT_GT(in_burst_total, 50u);
  ASSERT_GT(out_total, 50u);
  double in_frac = static_cast<double>(in_burst_topic) / in_burst_total;
  double out_frac = static_cast<double>(out_topic) / out_total;
  EXPECT_GT(in_frac, 2.0 * out_frac);
}

TEST_F(WorkloadTest, ModificationRateScales) {
  WorkloadOptions none = TestWorkloadOptions();
  none.modifications_per_hour = 0;
  WorkloadOptions lots = TestWorkloadOptions();
  lots.modifications_per_hour = 100;
  auto count_mods = [&](const WorkloadOptions& o) {
    WorkloadGenerator gen(&corpus_, nullptr, o);
    uint64_t mods = 0;
    for (const TraceEvent& e : gen.Generate()) {
      if (e.type == TraceEventType::kModify) ++mods;
    }
    return mods;
  };
  EXPECT_EQ(count_mods(none), 0u);
  uint64_t m = count_mods(lots);
  EXPECT_NEAR(static_cast<double>(m), 1200.0, 250.0);  // 100/h * 12h.
}

TEST_F(WorkloadTest, DiurnalAmplitudeShapesArrivals) {
  WorkloadOptions flat = TestWorkloadOptions();
  flat.horizon = 2 * kDay;
  WorkloadOptions diurnal = flat;
  diurnal.diurnal_amplitude = 0.9;

  auto peak_vs_trough = [&](const WorkloadOptions& o) {
    WorkloadGenerator gen(&corpus_, nullptr, o);
    uint64_t peak = 0, trough = 0;
    for (const TraceEvent& e : gen.Generate()) {
      if (e.type != TraceEventType::kRequest || !e.session_start) continue;
      SimTime tod = e.time % kDay;
      // sin peaks at day/4, troughs at 3*day/4.
      if (tod > kDay / 8 && tod < 3 * kDay / 8) ++peak;
      if (tod > 5 * kDay / 8 && tod < 7 * kDay / 8) ++trough;
    }
    return std::pair<uint64_t, uint64_t>{peak, trough};
  };
  auto [flat_peak, flat_trough] = peak_vs_trough(flat);
  auto [di_peak, di_trough] = peak_vs_trough(diurnal);
  // Flat traffic: roughly equal; diurnal: strongly peaked.
  EXPECT_LT(static_cast<double>(flat_peak),
            1.3 * static_cast<double>(flat_trough));
  EXPECT_GT(static_cast<double>(di_peak),
            2.0 * static_cast<double>(di_trough));
}

// ---------------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, TraceRoundTripsThroughCsv) {
  WorkloadOptions opts = TestWorkloadOptions();
  opts.horizon = 2 * kHour;
  WorkloadGenerator gen(&corpus_, nullptr, opts);
  auto events = gen.Generate();
  ASSERT_FALSE(events.empty());

  std::stringstream buffer;
  WriteTrace(events, buffer);
  auto restored = ReadTrace(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*restored)[i].time, events[i].time);
    EXPECT_EQ((*restored)[i].type, events[i].type);
    EXPECT_EQ((*restored)[i].page, events[i].page);
    EXPECT_EQ((*restored)[i].user, events[i].user);
    EXPECT_EQ((*restored)[i].session, events[i].session);
    EXPECT_EQ((*restored)[i].session_start, events[i].session_start);
    EXPECT_EQ((*restored)[i].via_link, events[i].via_link);
    EXPECT_EQ((*restored)[i].modified, events[i].modified);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  auto read = [](const std::string& text) {
    std::stringstream ss(text);
    return ReadTrace(ss);
  };
  EXPECT_FALSE(read("").ok());
  EXPECT_FALSE(read("not a header\n").ok());
  EXPECT_FALSE(read("# cbfww-trace v1\nX,1,2\n").ok());
  EXPECT_FALSE(read("# cbfww-trace v1\nR,1,2\n").ok());          // Too few.
  EXPECT_FALSE(read("# cbfww-trace v1\nR,a,2,3,4,0,0\n").ok());  // Bad num.
  EXPECT_FALSE(read("# cbfww-trace v1\nR,1,2,3,4,7,0\n").ok());  // Bad flag.
  EXPECT_FALSE(read("# cbfww-trace v1\nM,1\n").ok());
  // Comments and blank lines are fine.
  auto ok = read("# cbfww-trace v1\n\n# note\nM,5,9\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].modified, 9u);
}

// ---------------------------------------------------------------------------
// TraceStats
// ---------------------------------------------------------------------------

TEST(TraceStatsTest, CountsOneTimers) {
  std::vector<TraceEvent> events;
  auto req = [&](SimTime t, corpus::PageId p) {
    TraceEvent e;
    e.time = t;
    e.type = TraceEventType::kRequest;
    e.page = p;
    e.session = 0;
    events.push_back(e);
  };
  req(1, 0);
  req(2, 1);
  req(3, 1);  // Page 1 reused; page 0 one-timer.
  std::vector<corpus::RawId> container_of = {100, 101};
  TraceStats stats = ComputeTraceStats(events, container_of);
  EXPECT_EQ(stats.num_requests, 3u);
  EXPECT_EQ(stats.distinct_pages, 2u);
  EXPECT_EQ(stats.one_timer_pages, 1u);
  EXPECT_DOUBLE_EQ(stats.OneTimerFraction(), 0.5);
}

TEST(TraceStatsTest, ModificationBlocksReuseCredit) {
  std::vector<TraceEvent> events;
  TraceEvent r1;
  r1.time = 1;
  r1.type = TraceEventType::kRequest;
  r1.page = 0;
  events.push_back(r1);
  TraceEvent m;
  m.time = 2;
  m.type = TraceEventType::kModify;
  m.modified = 100;
  events.push_back(m);
  TraceEvent r2 = r1;
  r2.time = 3;
  events.push_back(r2);

  std::vector<corpus::RawId> container_of = {100};
  TraceStats stats = ComputeTraceStats(events, container_of);
  // Page 0 was re-requested, but only AFTER its container changed: per the
  // paper's phrasing it was "never retrieved again before modified".
  EXPECT_EQ(stats.one_timer_pages, 0u);
  EXPECT_EQ(stats.no_reuse_before_modify_pages, 1u);
}

TEST(TraceStatsTest, EmptyTrace) {
  TraceStats stats = ComputeTraceStats({}, {});
  EXPECT_EQ(stats.num_requests, 0u);
  EXPECT_EQ(stats.OneTimerFraction(), 0.0);
}

}  // namespace
}  // namespace cbfww::trace
