#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "cache/cache_simulator.h"
#include "cache/replacement_policy.h"
#include "util/rng.h"

namespace cbfww::cache {
namespace {

// ---------------------------------------------------------------------------
// Policy-specific behaviour
// ---------------------------------------------------------------------------

TEST(LruTest, EvictsLeastRecentlyUsed) {
  CacheSimulator cache(30, MakeLruPolicy());
  cache.Access(1, 10, 1);
  cache.Access(2, 10, 2);
  cache.Access(3, 10, 3);
  cache.Access(1, 10, 4);   // Touch 1: now 2 is LRU.
  cache.Access(4, 10, 5);   // Evicts 2.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(LfuTest, EvictsLeastFrequentlyUsed) {
  CacheSimulator cache(30, MakeLfuPolicy());
  cache.Access(1, 10, 1);
  cache.Access(1, 10, 2);
  cache.Access(1, 10, 3);
  cache.Access(2, 10, 4);
  cache.Access(2, 10, 5);
  cache.Access(3, 10, 6);  // Frequency: 1->3, 2->2, 3->1.
  cache.Access(4, 10, 7);  // Evicts 3 (LFU).
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
}

TEST(LruKTest, PrefersEvictingShortHistoryEntries) {
  CacheSimulator cache(30, MakeLruKPolicy(2));
  cache.Access(1, 10, 1);
  cache.Access(1, 10, 2);   // 1 has full 2-history.
  cache.Access(2, 10, 3);
  cache.Access(2, 10, 4);   // 2 has full 2-history.
  cache.Access(3, 10, 5);   // 3 has only one reference.
  cache.Access(4, 10, 6);   // Evicts 3 (fewer than K refs).
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(LruKTest, AmongFullHistoriesEvictsOldestKth) {
  CacheSimulator cache(20, MakeLruKPolicy(2));
  cache.Access(1, 10, 1);
  cache.Access(1, 10, 10);  // 1: 2nd-last ref at t=1.
  cache.Access(2, 10, 2);
  cache.Access(2, 10, 20);  // 2: 2nd-last ref at t=2.
  cache.Access(1, 10, 30);  // 1: 2nd-last ref now t=10 > 2.
  cache.Access(3, 10, 40);  // Evict 2 (oldest K-distance).
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(GdsfTest, PrefersEvictingLargeColdObjects) {
  CacheSimulator cache(1000, MakeGdsfPolicy());
  cache.Access(1, 500, 1);  // Large.
  cache.Access(2, 50, 2);   // Small.
  cache.Access(3, 50, 3);
  cache.Access(4, 500, 4);  // Needs space: evicts the large cold 1.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(GdsfTest, FrequencyProtectsLargeObjects) {
  CacheSimulator cache(1000, MakeGdsfPolicy());
  cache.Access(1, 400, 1);
  for (SimTime t = 2; t < 12; ++t) cache.Access(1, 400, t);  // Hot large.
  cache.Access(2, 400, 20);  // Cold large.
  cache.Access(3, 400, 21);  // Evict: should prefer 2 over hot 1.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LfuDaTest, AgingPreventsPermanentPollution) {
  // Classic LFU pathology: a formerly hot object blocks the cache forever.
  // Dynamic aging lets newer traffic age it out.
  CacheSimulator cache(30, MakeLfuDaPolicy());
  for (SimTime t = 0; t < 50; ++t) cache.Access(1, 10, t);  // Very hot once.
  // New regime: 2 and 3 get steady traffic, 4 arrives repeatedly.
  SimTime t = 100;
  for (int round = 0; round < 60; ++round) {
    cache.Access(2, 10, t++);
    cache.Access(3, 10, t++);
    cache.Access(4, 10, t++);  // Keeps displacing/being displaced.
  }
  // Under plain LFU object 1 (freq 50) would still be resident; LFU-DA's
  // inflation lets the active set win.
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(SizeTest, EvictsLargest) {
  CacheSimulator cache(100, MakeSizePolicy());
  cache.Access(1, 60, 1);
  cache.Access(2, 30, 2);
  cache.Access(3, 30, 3);  // Evicts 1 (largest).
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

// ---------------------------------------------------------------------------
// Generic invariants across all policies (property-style TEST_P)
// ---------------------------------------------------------------------------

using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>()>;

struct PolicyParam {
  std::string name;
  PolicyFactory make;
};

class PolicyInvariantTest : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(PolicyInvariantTest, CapacityNeverExceeded) {
  CacheSimulator cache(1000, GetParam().make());
  Pcg32 rng(42);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.NextBounded(300);
    uint64_t bytes = 1 + rng.NextBounded(200);
    cache.Access(key, bytes, i);
    EXPECT_LE(cache.used_bytes(), 1000u);
  }
}

TEST_P(PolicyInvariantTest, HitAfterInsert) {
  CacheSimulator cache(1000, GetParam().make());
  EXPECT_FALSE(cache.Access(7, 10, 1));  // Miss inserts.
  EXPECT_TRUE(cache.Access(7, 10, 2));   // Hit.
}

TEST_P(PolicyInvariantTest, OversizedObjectBypassed) {
  CacheSimulator cache(100, GetParam().make());
  EXPECT_FALSE(cache.Access(1, 500, 1));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  // And it stays a miss.
  EXPECT_FALSE(cache.Access(1, 500, 2));
}

TEST_P(PolicyInvariantTest, InvalidateRemoves) {
  CacheSimulator cache(1000, GetParam().make());
  cache.Access(1, 10, 1);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Access(1, 10, 2));  // Miss again.
  cache.Invalidate(999);                 // No-op.
}

TEST_P(PolicyInvariantTest, StatsConsistent) {
  CacheSimulator cache(500, GetParam().make());
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    cache.Access(rng.NextBounded(100), 1 + rng.NextBounded(50), i);
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.requests, 1000u);
  EXPECT_EQ(s.hits + s.insertions,
            s.requests - 0u /* oversized bypasses impossible here */);
  EXPECT_LE(s.byte_hits, s.byte_requests);
  EXPECT_GT(s.HitRatio(), 0.0);
  EXPECT_LE(s.HitRatio(), 1.0);
  EXPECT_LE(s.ByteHitRatio(), 1.0);
}

TEST_P(PolicyInvariantTest, UnboundedCacheNeverEvicts) {
  CacheSimulator cache(0, GetParam().make());
  Pcg32 rng(9);
  for (int i = 0; i < 500; ++i) {
    cache.Access(rng.NextBounded(200), 1 + rng.NextBounded(1000), i);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  // All touched keys stay resident (at most 200 distinct keys exist).
  EXPECT_LE(cache.num_objects(), 200u);
  EXPECT_GT(cache.num_objects(), 150u);
  EXPECT_EQ(cache.num_objects(),
            cache.stats().insertions);  // Nothing ever left.
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariantTest,
    ::testing::Values(PolicyParam{"LRU", &MakeLruPolicy},
                      PolicyParam{"LFU", &MakeLfuPolicy},
                      PolicyParam{"LRU2", [] { return MakeLruKPolicy(2); }},
                      PolicyParam{"GDSF", &MakeGdsfPolicy},
                      PolicyParam{"LFUDA", &MakeLfuDaPolicy},
                      PolicyParam{"SIZE", &MakeSizePolicy}),
    [](const ::testing::TestParamInfo<PolicyParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Accounting details
// ---------------------------------------------------------------------------

TEST(CacheSimulatorTest, ByteHitRatioWeightsBySize) {
  CacheSimulator cache(0, MakeLruPolicy());
  cache.Access(1, 100, 1);  // Miss.
  cache.Access(2, 900, 2);  // Miss.
  cache.Access(1, 100, 3);  // Hit (100 bytes).
  EXPECT_DOUBLE_EQ(cache.stats().HitRatio(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cache.stats().ByteHitRatio(), 100.0 / 1100.0);
}

TEST(CacheSimulatorTest, PolicyNameExposed) {
  CacheSimulator cache(10, MakeGdsfPolicy());
  EXPECT_EQ(cache.policy().name(), "GDSF");
}

}  // namespace
}  // namespace cbfww::cache
