#include <gtest/gtest.h>

#include <map>

#include "core/query/query_executor.h"
#include "core/query/query_lexer.h"
#include "core/query/query_parser.h"

namespace cbfww::core::query {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT p.oid FROM Physical_Page p");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 8u);  // 6 identifiers + dot + end... recount:
  // SELECT, p, ., oid, FROM, Physical_Page, p, END
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kEnd);
}

TEST(LexerTest, ThousandsSeparatorNumber) {
  // The paper writes "p.size > 200,000".
  auto tokens = Tokenize("p.size > 200,000");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kNumber) {
      EXPECT_DOUBLE_EQ(t.number, 200000.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, CommaAfterNumberNotSwallowed) {
  auto tokens = Tokenize("MFU 10, l.path");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 10.0);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kComma);
}

TEST(LexerTest, StringsInBothQuoteStyles) {
  auto t1 = Tokenize("'data warehouse'");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)[0].kind, TokenKind::kString);
  EXPECT_EQ((*t1)[0].text, "data warehouse");
  auto t2 = Tokenize("\"data stream\"");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t2)[0].text, "data stream");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("= != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGe);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, UnexpectedCharFails) {
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, UrlInsideString) {
  auto tokens = Tokenize("p.url=\"http://www-db.cs.wisc.edu/cidr/\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[4].text, "http://www-db.cs.wisc.edu/cidr/");
}

// ---------------------------------------------------------------------------
// Parser — including the paper's three example queries verbatim
// ---------------------------------------------------------------------------

TEST(ParserTest, PaperExampleOne) {
  auto stmt = ParseQuery(
      "SELECT MRU p.oid, p.title "
      "FROM Physical_Page p "
      "WHERE p.title MENTION 'data warehouse'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->modifier, UsageModifier::kMru);
  EXPECT_EQ((*stmt)->limit, 0u);
  EXPECT_EQ((*stmt)->from, EntityKind::kPhysicalPage);
  EXPECT_EQ((*stmt)->from_alias, "p");
  ASSERT_EQ((*stmt)->projections.size(), 2u);
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind, ExprKind::kMention);
  EXPECT_EQ((*stmt)->where->phrase, "data warehouse");
}

TEST(ParserTest, PaperExampleTwoWithExists) {
  auto stmt = ParseQuery(
      "SELECT MFU 10 l.oid, l.path, "
      "FROM Logical_Page l "
      "WHERE EXISTS "
      "( SELECT * FROM Physical_Page p "
      "  WHERE p.oid IN l.physicals AND p.size > 200,000);");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->modifier, UsageModifier::kMfu);
  EXPECT_EQ((*stmt)->limit, 10u);
  EXPECT_EQ((*stmt)->from, EntityKind::kLogicalPage);
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind, ExprKind::kExists);
  const SelectStatement& sub = *(*stmt)->where->subquery;
  EXPECT_EQ(sub.from, EntityKind::kPhysicalPage);
  ASSERT_NE(sub.where, nullptr);
  EXPECT_EQ(sub.where->kind, ExprKind::kAnd);
}

TEST(ParserTest, PaperExampleThreeWithEndAt) {
  auto stmt = ParseQuery(
      "SELECT MFU, l.path "
      "FROM Logical_Page l "
      "WHERE end_at(l.oid) IN "
      "( SELECT p.oid FROM Physical_Page p "
      "  WHERE p.url=\"http://www-db.cs.wisc.edu/cidr/\");");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->modifier, UsageModifier::kMfu);
  ASSERT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->where->kind, ExprKind::kIn);
  EXPECT_EQ((*stmt)->where->children[0]->kind, ExprKind::kFunction);
  EXPECT_EQ((*stmt)->where->children[0]->function_name, "end_at");
  ASSERT_NE((*stmt)->where->subquery, nullptr);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto stmt = ParseQuery("select lfu 5 oid from raw_object r where size > 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->modifier, UsageModifier::kLfu);
  EXPECT_EQ((*stmt)->limit, 5u);
  EXPECT_EQ((*stmt)->from, EntityKind::kRawObject);
}

TEST(ParserTest, NoModifier) {
  auto stmt = ParseQuery("SELECT oid FROM Semantic_Region");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->modifier, UsageModifier::kNone);
  EXPECT_TRUE((*stmt)->from_alias.empty());
  EXPECT_EQ((*stmt)->where, nullptr);
}

TEST(ParserTest, BooleanPrecedenceAndOrNot) {
  auto stmt = ParseQuery(
      "SELECT oid FROM Physical_Page p "
      "WHERE p.size > 1 AND p.size < 5 OR NOT p.frequency = 0");
  ASSERT_TRUE(stmt.ok());
  // OR at the root (AND binds tighter).
  EXPECT_EQ((*stmt)->where->kind, ExprKind::kOr);
  EXPECT_EQ((*stmt)->where->children[0]->kind, ExprKind::kAnd);
  EXPECT_EQ((*stmt)->where->children[1]->kind, ExprKind::kNot);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("FROM Physical_Page").ok());
  EXPECT_FALSE(ParseQuery("SELECT oid").ok());
  EXPECT_FALSE(ParseQuery("SELECT oid FROM Unknown_Entity").ok());
  EXPECT_FALSE(ParseQuery("SELECT oid FROM Physical_Page WHERE").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT oid FROM Physical_Page WHERE title MENTION 5").ok());
}

// ---------------------------------------------------------------------------
// Executor over a fixture catalog
// ---------------------------------------------------------------------------

/// Tiny in-memory catalog: physical pages with title/size/usage; logical
/// pages with paths.
class FixtureCatalog : public QueryCatalog {
 public:
  struct Page {
    std::string title;
    int64_t size = 0;
    uint64_t frequency = 0;
    SimTime lastref = kNeverTime;
  };
  struct Logical {
    std::vector<uint64_t> path;
    uint64_t frequency = 0;
    SimTime lastref = kNeverTime;
  };

  std::map<uint64_t, Page> pages;
  std::map<uint64_t, Logical> logicals;

  std::vector<uint64_t> AllObjects(EntityKind kind) const override {
    std::vector<uint64_t> out;
    if (kind == EntityKind::kPhysicalPage) {
      for (const auto& [id, p] : pages) out.push_back(id);
    } else if (kind == EntityKind::kLogicalPage) {
      for (const auto& [id, l] : logicals) out.push_back(id);
    }
    return out;
  }

  Value GetAttribute(EntityKind kind, uint64_t oid,
                     const std::string& attr) const override {
    if (kind == EntityKind::kPhysicalPage) {
      auto it = pages.find(oid);
      if (it == pages.end()) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(oid));
      if (attr == "title") return Value(it->second.title);
      if (attr == "size") return Value(it->second.size);
      if (attr == "frequency") {
        return Value(static_cast<int64_t>(it->second.frequency));
      }
    }
    if (kind == EntityKind::kLogicalPage) {
      auto it = logicals.find(oid);
      if (it == logicals.end()) return Value();
      if (attr == "oid") return Value(static_cast<int64_t>(oid));
      if (attr == "physicals") return Value(it->second.path);
      if (attr == "end_at") {
        return Value(static_cast<int64_t>(it->second.path.back()));
      }
      if (attr == "start_at") {
        return Value(static_cast<int64_t>(it->second.path.front()));
      }
      if (attr == "size") {
        return Value(static_cast<int64_t>(it->second.path.size()));
      }
    }
    return Value();
  }

  SimTime LastReference(EntityKind kind, uint64_t oid) const override {
    if (kind == EntityKind::kPhysicalPage && pages.contains(oid)) {
      return pages.at(oid).lastref;
    }
    if (kind == EntityKind::kLogicalPage && logicals.contains(oid)) {
      return logicals.at(oid).lastref;
    }
    return kNeverTime;
  }

  uint64_t Frequency(EntityKind kind, uint64_t oid) const override {
    if (kind == EntityKind::kPhysicalPage && pages.contains(oid)) {
      return pages.at(oid).frequency;
    }
    if (kind == EntityKind::kLogicalPage && logicals.contains(oid)) {
      return logicals.at(oid).frequency;
    }
    return 0;
  }

  bool RowMentions(EntityKind kind, uint64_t oid, const std::string& attr,
                   const std::vector<std::string>& terms) const override {
    if (kind != EntityKind::kPhysicalPage || attr != "title") return false;
    auto it = pages.find(oid);
    if (it == pages.end()) return false;
    for (const std::string& t : terms) {
      if (it->second.title.find(t) == std::string::npos) return false;
    }
    return true;
  }

  std::optional<std::vector<uint64_t>> MentionCandidates(
      EntityKind kind, const std::string& attr,
      const std::vector<std::string>& terms) const override {
    if (!index_enabled) return std::nullopt;
    std::vector<uint64_t> out;
    for (uint64_t oid : AllObjects(kind)) {
      if (RowMentions(kind, oid, attr, terms)) out.push_back(oid);
    }
    ++index_uses;
    return out;
  }

  bool index_enabled = false;
  mutable int index_uses = 0;
};

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    catalog_.pages[1] = {"data warehouse overview", 100, 5, 50};
    catalog_.pages[2] = {"stream processing", 300000, 9, 90};
    catalog_.pages[3] = {"data warehouse design", 250000, 2, 20};
    catalog_.pages[4] = {"kyoto travel", 50, 7, 70};
    catalog_.logicals[10] = {{1, 2}, 4, 40};
    catalog_.logicals[11] = {{4, 3}, 8, 80};
    catalog_.logicals[12] = {{2, 3}, 1, 10};
  }

  QueryExecutionResult Run(std::string_view q) {
    QueryExecutor ex(&catalog_);
    auto r = ex.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : QueryExecutionResult{};
  }

  FixtureCatalog catalog_;
};

TEST_F(ExecutorTest, SimpleFilterAndProjection) {
  auto r = Run("SELECT p.oid, p.size FROM Physical_Page p WHERE p.size > 200");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"p.oid", "p.size"}));
  ASSERT_EQ(r.rows.size(), 2u);  // Pages 2 and 3.
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(ExecutorTest, MentionFilter) {
  auto r = Run(
      "SELECT p.oid FROM Physical_Page p "
      "WHERE p.title MENTION 'data warehouse'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(ExecutorTest, MfuOrdersByFrequencyDescending) {
  auto r = Run("SELECT MFU p.oid FROM Physical_Page p");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);  // freq 9.
  EXPECT_EQ(r.rows[1][0].AsInt(), 4);  // freq 7.
  EXPECT_EQ(r.rows[3][0].AsInt(), 3);  // freq 2.
}

TEST_F(ExecutorTest, LfuWithLimit) {
  auto r = Run("SELECT LFU 2 p.oid FROM Physical_Page p");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);  // freq 2.
  EXPECT_EQ(r.rows[1][0].AsInt(), 1);  // freq 5.
}

TEST_F(ExecutorTest, LruAndMruUseLastReference) {
  auto lru = Run("SELECT LRU 1 p.oid FROM Physical_Page p");
  ASSERT_EQ(lru.rows.size(), 1u);
  EXPECT_EQ(lru.rows[0][0].AsInt(), 3);  // lastref 20 (oldest).
  auto mru = Run("SELECT MRU 1 p.oid FROM Physical_Page p");
  EXPECT_EQ(mru.rows[0][0].AsInt(), 2);  // lastref 90 (newest).
}

TEST_F(ExecutorTest, PaperExampleTwoSemantics) {
  // Logical pages containing a physical page larger than 200,000 bytes.
  auto r = Run(
      "SELECT MFU 10 l.oid FROM Logical_Page l "
      "WHERE EXISTS (SELECT * FROM Physical_Page p "
      "WHERE p.oid IN l.physicals AND p.size > 200,000)");
  // Logical 10 = {1,2}: page 2 is 300000 -> yes. 11 = {4,3}: page 3 is
  // 250000 -> yes. 12 = {2,3}: yes. Ordered by frequency: 11(8), 10(4),
  // 12(1).
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);
  EXPECT_EQ(r.rows[1][0].AsInt(), 10);
  EXPECT_EQ(r.rows[2][0].AsInt(), 12);
}

TEST_F(ExecutorTest, PaperExampleThreeSemantics) {
  // Most frequently used logical pages ending at page 3.
  auto r = Run(
      "SELECT MFU l.oid FROM Logical_Page l "
      "WHERE end_at(l.oid) IN (SELECT p.oid FROM Physical_Page p "
      "WHERE p.title MENTION 'design')");
  ASSERT_EQ(r.rows.size(), 2u);  // Logicals 11 and 12 end at page 3.
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);  // freq 8 > 1.
  EXPECT_EQ(r.rows[1][0].AsInt(), 12);
}

TEST_F(ExecutorTest, InListAttribute) {
  auto r = Run(
      "SELECT l.oid FROM Logical_Page l WHERE 4 IN l.physicals");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);
}

TEST_F(ExecutorTest, NotAndOr) {
  auto r = Run(
      "SELECT p.oid FROM Physical_Page p "
      "WHERE NOT p.size > 200 AND (p.frequency = 5 OR p.frequency = 7)");
  ASSERT_EQ(r.rows.size(), 2u);  // Pages 1 and 4.
}

TEST_F(ExecutorTest, StarProjection) {
  auto r = Run("SELECT * FROM Physical_Page p WHERE p.size > 200,000");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"oid"}));
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, IndexAccelerationUsedWhenAvailable) {
  catalog_.index_enabled = true;
  QueryExecutor ex(&catalog_);
  auto r = ex.Execute(
      "SELECT p.oid FROM Physical_Page p WHERE p.title MENTION 'kyoto'");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_index);
  EXPECT_EQ(r->candidates_evaluated, 1u);  // Only the index candidate.
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
}

TEST_F(ExecutorTest, IndexDisabledScansEverything) {
  catalog_.index_enabled = true;
  QueryExecutor::Options opts;
  opts.use_index = false;
  QueryExecutor ex(&catalog_, opts);
  auto r = ex.Execute(
      "SELECT p.oid FROM Physical_Page p WHERE p.title MENTION 'kyoto'");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_index);
  EXPECT_EQ(r->candidates_evaluated, 4u);
  EXPECT_EQ(catalog_.index_uses, 0);
}

TEST_F(ExecutorTest, MaxRowsCap) {
  QueryExecutor::Options opts;
  opts.max_rows = 2;
  QueryExecutor ex(&catalog_, opts);
  auto r = ex.Execute("SELECT p.oid FROM Physical_Page p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  auto r = Run("SELECT p.oid FROM Physical_Page p WHERE p.nosuch = 1");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, AggregateCountStar) {
  auto r = Run("SELECT COUNT(*) FROM Physical_Page p WHERE p.size > 200");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns[0], "count(*)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, AggregateNumericFunctions) {
  auto r = Run(
      "SELECT COUNT(p.oid), SUM(p.size), AVG(p.frequency), MIN(p.size), "
      "MAX(p.size) FROM Physical_Page p");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 100.0 + 300000 + 250000 + 50);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), (5.0 + 9 + 2 + 7) / 4.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 50.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 300000.0);
}

TEST_F(ExecutorTest, AggregateOverEmptySetIsNullButCountZero) {
  auto r = Run("SELECT COUNT(*), AVG(p.size) FROM Physical_Page p "
               "WHERE p.size > 999,999,999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, MixedAggregateAndRowProjectionRejected) {
  QueryExecutor ex(&catalog_);
  auto r = ex.Execute("SELECT COUNT(*), p.oid FROM Physical_Page p");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, CompareAndToString) {
  EXPECT_EQ(Value(static_cast<int64_t>(3)).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(static_cast<int64_t>(2)).Compare(Value(3.0)), 0);
  EXPECT_EQ(Value(std::string("a")).Compare(Value(std::string("a"))), 0);
  EXPECT_EQ(Value(static_cast<int64_t>(42)).ToString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToString(), "x");
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(std::vector<uint64_t>{1, 2}).ToString(), "[1,2]");
  EXPECT_EQ(Value(true).ToString(), "true");
}

}  // namespace
}  // namespace cbfww::core::query
