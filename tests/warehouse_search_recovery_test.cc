#include <gtest/gtest.h>

#include <memory>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "util/strings.h"

namespace cbfww::core {
namespace {

corpus::CorpusOptions SearchCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 60;
  opts.topic.num_topics = 4;
  opts.seed = 321;
  return opts;
}

class WarehouseSearchRecoveryTest : public ::testing::Test {
 protected:
  WarehouseSearchRecoveryTest()
      : corpus_(SearchCorpusOptions()),
        origin_(&corpus_, net::NetworkModel()) {}

  std::unique_ptr<Warehouse> MakeWarehouse(
      WarehouseOptions opts = WarehouseOptions{}) {
    return std::make_unique<Warehouse>(&corpus_, &origin_, nullptr, opts);
  }

  corpus::WebCorpus corpus_;
  net::OriginServer origin_;
};

// ---------------------------------------------------------------------------
// Popularity-aware search (Section 3, function 3)
// ---------------------------------------------------------------------------

TEST_F(WarehouseSearchRecoveryTest, SearchRanksByRelevance) {
  auto wh = MakeWarehouse();
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 40; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  // Query with a page's own title terms: that page must rank at the top
  // region of the results.
  const PhysicalPageRecord* rec = wh->FindPage(5);
  ASSERT_NE(rec, nullptr);
  std::string query;
  for (text::TermId term : rec->title_terms) {
    query += corpus_.vocabulary().TermOf(term);
    query += " ";
  }
  auto hits = wh->SearchPages(query, 5, /*popularity_weight=*/0.0);
  ASSERT_FALSE(hits.empty());
  bool found = false;
  for (const auto& h : hits) {
    if (h.doc == 5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(WarehouseSearchRecoveryTest, PopularityBoostsHotPages) {
  auto wh = MakeWarehouse();
  // Two same-topic pages: one hot (30 accesses), one touched once.
  corpus::PageId hot = corpus::kInvalidPageId;
  corpus::PageId cold = corpus::kInvalidPageId;
  for (corpus::PageId p = 0; p + 1 < corpus_.num_pages(); ++p) {
    if (corpus_.page(p).topic == corpus_.page(p + 1).topic &&
        corpus_.page(p).topic == 0) {
      hot = p;
      cold = p + 1;
      break;
    }
  }
  ASSERT_NE(hot, corpus::kInvalidPageId);
  SimTime t = kSecond;
  for (int i = 0; i < 30; ++i) {
    wh->RequestPage(
        {.page = hot, .user = 1, .session = static_cast<int64_t>(i), .now = t});
    t += kSecond;
  }
  wh->RequestPage({.page = cold, .user = 1, .session = 999, .now = t});

  // Query with the shared topic's signature terms.
  std::string query;
  for (text::TermId term : corpus_.topic_model().TopicSignature(0, 6)) {
    query += corpus_.vocabulary().TermOf(term);
    query += " ";
  }
  auto boosted = wh->SearchPages(query, 10, /*popularity_weight=*/2.0);
  ASSERT_FALSE(boosted.empty());
  // The hot page outranks the cold one when popularity matters.
  int hot_pos = -1, cold_pos = -1;
  for (size_t i = 0; i < boosted.size(); ++i) {
    if (boosted[i].doc == hot) hot_pos = static_cast<int>(i);
    if (boosted[i].doc == cold) cold_pos = static_cast<int>(i);
  }
  ASSERT_NE(hot_pos, -1);
  if (cold_pos != -1) {
    EXPECT_LT(hot_pos, cold_pos);
  }
}

TEST_F(WarehouseSearchRecoveryTest, CacheConsciousPrefersResidentPages) {
  WarehouseOptions opts;
  opts.memory_bytes = 64ull * 1024 * 1024;  // Roomy: requested pages stick.
  auto wh = MakeWarehouse(opts);
  SimTime t = kSecond;
  // User 1 reads topic-0 pages; index some un-requested ones implicitly
  // stay absent from storage.
  std::vector<corpus::PageId> topic0;
  for (corpus::PageId p = 0; p < corpus_.num_pages(); ++p) {
    if (corpus_.page(p).topic == 0) topic0.push_back(p);
  }
  ASSERT_GE(topic0.size(), 12u);
  for (size_t i = 0; i < 8; ++i) {
    wh->RequestPage(
        {.page = topic0[i], .user = 1, .session = static_cast<int64_t>(i), .now = t});
    t += kSecond;
  }
  auto recs = wh->RecommendPagesCacheConscious(1, 5, /*tier_weight=*/1.0);
  ASSERT_FALSE(recs.empty());
  // Every recommended page is at least warehoused (cache-conscious ranking
  // favors fast-tier residents; only requested pages are stored at all).
  int resident = 0;
  for (const auto& r : recs) {
    const PhysicalPageRecord* rec = wh->FindPage(r.doc);
    if (rec != nullptr &&
        wh->hierarchy().FastestTierOf(
            EncodeStoreId(index::ObjectLevel::kRaw, rec->container)) == 0) {
      ++resident;
    }
  }
  EXPECT_GT(resident, static_cast<int>(recs.size()) / 2);
}

// ---------------------------------------------------------------------------
// Tier-failure recovery (copy control, Section 4.4)
// ---------------------------------------------------------------------------

TEST_F(WarehouseSearchRecoveryTest, MemoryCrashServedFromDiskCopies) {
  auto wh = MakeWarehouse();
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 20; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  uint64_t lost = wh->SimulateTierFailure(0);
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(wh->hierarchy().resident_count(0), 0u);

  // Every page is still serveable WITHOUT touching the origin: memory
  // residents kept disk copies (copy control).
  uint64_t fetches_before = wh->counters().origin_fetches;
  for (corpus::PageId p = 0; p < 20; ++p) {
    PageVisit v = wh->RequestPage(
        {.page = p, .user = 2, .session = static_cast<int64_t>(100 + p), .now = t});
    EXPECT_EQ(v.from_origin, 0u) << "page " << p;
    t += kSecond;
  }
  EXPECT_EQ(wh->counters().origin_fetches, fetches_before);
}

TEST_F(WarehouseSearchRecoveryTest, DiskCrashServedFromTertiary) {
  auto wh = MakeWarehouse();
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 10; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  wh->SimulateTierFailure(0);
  wh->SimulateTierFailure(1);
  uint64_t fetches_before = wh->counters().origin_fetches;
  for (corpus::PageId p = 0; p < 10; ++p) {
    PageVisit v = wh->RequestPage(
        {.page = p, .user = 2, .session = static_cast<int64_t>(100 + p), .now = t});
    EXPECT_EQ(v.from_origin, 0u);
    EXPECT_GT(v.from_tertiary, 0u);
    t += kSecond;
  }
  EXPECT_EQ(wh->counters().origin_fetches, fetches_before);
}

}  // namespace
}  // namespace cbfww::core
