// Chaos harness (copy control + fault injection, paper Section 4.4):
// replays Zipf workloads through a warehouse while a seeded FaultInjector
// fails tiers and the origin on a deterministic schedule, then asserts the
// recovery contract:
//  - same-seed runs are byte-identical (schedule, decisions, and report),
//  - no acknowledged object is lost while copy control is on,
//  - fallback serves are flagged (degraded / stale / summary / failed),
//  - after recovery + reconciliation the warehouse converges to the state
//    of a never-faulted oracle run over the same workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "fault/fault_injector.h"
#include "net/origin_server.h"
#include "storage/hierarchy.h"
#include "trace/workload.h"
#include "util/clock.h"

namespace cbfww {
namespace {

// ---------------------------------------------------------------------------
// Shared rig
// ---------------------------------------------------------------------------

struct ChaosKnobs {
  uint64_t corpus_seed = 77;
  uint64_t workload_seed = 5;
  uint64_t fault_seed = 11;
  bool with_faults = true;
  double modifications_per_hour = 20.0;
  SimTime horizon = 8 * kHour;
  // Schedule aggressiveness.
  uint32_t tier_losses = 1;
  uint32_t tier_outages = 1;
  uint32_t read_error_bursts = 2;
  uint32_t origin_outages = 2;
  double error_probability = 0.5;
};

fault::FaultScheduleOptions ScheduleOf(const ChaosKnobs& k) {
  fault::FaultScheduleOptions fopts;
  fopts.horizon = k.horizon;
  fopts.tier_losses = k.tier_losses;
  fopts.tier_outages = k.tier_outages;
  fopts.read_error_bursts = k.read_error_bursts;
  fopts.origin_outages = k.origin_outages;
  fopts.error_probability = k.error_probability;
  return fopts;
}

/// One full chaos run: its own corpus/origin replica (WebCorpus is
/// deterministic given a seed, so replicas across runs are identical), an
/// optional fault injector, and the replayed workload's aggregate flags.
struct ChaosRun {
  std::unique_ptr<corpus::WebCorpus> corpus;
  std::unique_ptr<net::OriginServer> origin;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<core::Warehouse> wh;
  /// Sum of the per-visit degradation flags over all request events.
  uint64_t degraded = 0, stale = 0, summary = 0, failed = 0;
  /// PrintReport + injector ReportLine — the byte-identity witness.
  std::string report;
};

ChaosRun RunChaos(const ChaosKnobs& k) {
  ChaosRun run;
  corpus::CorpusOptions copts;
  copts.num_sites = 3;
  copts.pages_per_site = 50;
  copts.seed = k.corpus_seed;
  run.corpus = std::make_unique<corpus::WebCorpus>(copts);
  run.origin =
      std::make_unique<net::OriginServer>(run.corpus.get(), net::NetworkModel());

  core::WarehouseOptions wopts;
  wopts.memory_bytes = 2ull * 1024 * 1024;  // Tight: placement contended.
  wopts.disk_bytes = 64ull * 1024 * 1024;
  run.wh = std::make_unique<core::Warehouse>(run.corpus.get(), run.origin.get(),
                                             nullptr, wopts);
  if (k.with_faults) {
    run.injector = std::make_unique<fault::FaultInjector>(
        fault::FaultSchedule::Generate(k.fault_seed, ScheduleOf(k)),
        k.fault_seed);
    run.wh->AttachFaultInjector(run.injector.get());
  }

  trace::WorkloadOptions w;
  w.horizon = k.horizon;
  w.sessions_per_hour = 60;
  w.modifications_per_hour = k.modifications_per_hour;
  w.seed = k.workload_seed;
  trace::WorkloadGenerator gen(run.corpus.get(), nullptr, w);
  for (const trace::TraceEvent& e : gen.Generate()) {
    core::PageVisit v = run.wh->ProcessEvent(e);
    if (e.type == trace::TraceEventType::kRequest) {
      run.degraded += v.degraded_serves;
      run.stale += v.stale_serves;
      run.summary += v.summary_serves;
      run.failed += v.failed_serves;
    }
  }

  std::ostringstream os;
  run.wh->PrintReport(os);
  if (run.injector != nullptr) os << run.injector->ReportLine() << "\n";
  run.report = os.str();
  return run;
}

/// Raw full objects resident at tier t (summaries and indexes excluded:
/// they are derived data the rebalancer may legitimately regenerate).
std::vector<uint64_t> RawSetAtTier(const core::Warehouse& wh,
                                   storage::TierIndex t) {
  std::vector<uint64_t> out;
  for (storage::StoreObjectId id : wh.hierarchy().ObjectsAtTier(t)) {
    if ((id & (1ULL << 60)) != 0 || (id & (1ULL << 59)) != 0) continue;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Schedule + injector determinism
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, GenerateIsDeterministic) {
  fault::FaultScheduleOptions fopts;
  fault::FaultSchedule a = fault::FaultSchedule::Generate(42, fopts);
  fault::FaultSchedule b = fault::FaultSchedule::Generate(42, fopts);
  EXPECT_EQ(a.ToString(), b.ToString());
  fault::FaultSchedule c = fault::FaultSchedule::Generate(43, fopts);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(FaultScheduleTest, WindowsSortedAndBounded) {
  fault::FaultScheduleOptions fopts;
  fopts.tier_losses = 3;
  fopts.read_error_bursts = 4;
  fault::FaultSchedule s = fault::FaultSchedule::Generate(7, fopts);
  ASSERT_FALSE(s.windows.empty());
  for (size_t i = 1; i < s.windows.size(); ++i) {
    EXPECT_LE(s.windows[i - 1].start, s.windows[i].start);
  }
  for (const fault::FaultWindow& w : s.windows) {
    EXPECT_GE(w.start, 0);
    EXPECT_LE(w.end, fopts.horizon);
    switch (w.kind) {
      case fault::FaultKind::kTierLoss:
        EXPECT_EQ(w.end, w.start);  // Instantaneous event.
        [[fallthrough]];
      case fault::FaultKind::kTierDown:
      case fault::FaultKind::kTierReadError:
      case fault::FaultKind::kTierStoreError:
      case fault::FaultKind::kTierLatency:
        EXPECT_GE(w.tier, 0);
        EXPECT_LE(w.tier, fopts.max_faulted_tier);
        break;
      default:
        break;  // Origin kinds carry no tier.
    }
  }
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  fault::FaultScheduleOptions fopts;
  fopts.error_probability = 0.6;
  fault::FaultSchedule s = fault::FaultSchedule::Generate(99, fopts);
  fault::FaultInjector a(s, 99);
  fault::FaultInjector b(s, 99);
  // Drive an identical access sequence through both injectors, sweeping
  // across the schedule horizon so windows activate and deactivate.
  for (int i = 0; i < 5000; ++i) {
    SimTime t = fopts.horizon * static_cast<SimTime>(i) / 5000;
    a.AdvanceTo(t);
    b.AdvanceTo(t);
    storage::DeviceOp op =
        (i % 3 == 0) ? storage::DeviceOp::kStore : storage::DeviceOp::kRead;
    storage::TierIndex tier = i % 2;
    storage::DeviceFaultDecision da = a.OnDeviceAccess(op, tier);
    storage::DeviceFaultDecision db = b.OnDeviceAccess(op, tier);
    EXPECT_EQ(da.fail, db.fail) << "step " << i;
    EXPECT_EQ(da.extra_latency, db.extra_latency) << "step " << i;
    net::OriginFaultDecision oa = a.OnOriginRequest(i % 4 == 0);
    net::OriginFaultDecision ob = b.OnOriginRequest(i % 4 == 0);
    EXPECT_EQ(static_cast<int>(oa.outcome), static_cast<int>(ob.outcome));
    EXPECT_EQ(oa.extra_latency, ob.extra_latency);
    EXPECT_EQ(a.TakeDueTierLosses(t), b.TakeDueTierLosses(t));
  }
  EXPECT_EQ(a.ReportLine(), b.ReportLine());
}

// ---------------------------------------------------------------------------
// End-to-end chaos replay
// ---------------------------------------------------------------------------

TEST(ChaosTest, SameSeedRunsAreByteIdentical) {
  ChaosKnobs k;
  ChaosRun first = RunChaos(k);
  ChaosRun second = RunChaos(k);
  // The entire run — serve mix, latency distribution, fault decisions,
  // recovery actions — reproduces byte for byte from the seeds.
  EXPECT_EQ(first.report, second.report);
  EXPECT_GT(first.wh->counters().requests, 0u);
}

TEST(ChaosTest, DifferentFaultSeedsProduceDifferentSchedules) {
  ChaosKnobs k;
  fault::FaultSchedule a = fault::FaultSchedule::Generate(1, ScheduleOf(k));
  fault::FaultSchedule b = fault::FaultSchedule::Generate(2, ScheduleOf(k));
  EXPECT_NE(a.ToString(), b.ToString());
}

TEST(ChaosTest, AcknowledgedObjectsSurviveTierLosses) {
  ChaosKnobs k;
  k.tier_losses = 2;  // Lose a tier twice over the run.
  ChaosRun run = RunChaos(k);
  ASSERT_GE(run.wh->counters().tier_losses, 1u)
      << "schedule delivered no tier loss; pick a different fault seed";

  // Copy control (on by default): every object the warehouse acknowledged
  // keeps at least one surviving copy through any number of tier losses —
  // the durable bottom tier is never faulted.
  uint64_t acknowledged = 0;
  for (const auto& [rid, rec] : run.wh->raw_records()) {
    if (!rec.acknowledged) continue;
    ++acknowledged;
    storage::StoreObjectId full_id =
        core::EncodeStoreId(index::ObjectLevel::kRaw, rid);
    EXPECT_NE(run.wh->hierarchy().FastestTierOf(full_id), storage::kNoTier)
        << "acknowledged object " << rid << " lost";
  }
  EXPECT_GT(acknowledged, 0u);

  // After a fault-free recovery pass the hierarchy is structurally sound,
  // including the copy-control rule (transient violations are only allowed
  // inside active fault windows).
  run.wh->AttachFaultInjector(nullptr);
  run.wh->Reconcile(k.horizon);
  run.wh->Tick(k.horizon + 2 * kHour);
  Status inv = run.wh->CheckStorageInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST(ChaosTest, DegradedServesAreFlagged) {
  ChaosKnobs k;
  k.fault_seed = 23;
  k.read_error_bursts = 4;
  k.origin_outages = 3;
  k.error_probability = 0.8;
  ChaosRun run = RunChaos(k);

  // The aggressive schedule must actually degrade some serves, and every
  // degraded serve must surface in the per-visit flags exactly as counted
  // by the warehouse (nothing silent, nothing double-counted).
  const core::Warehouse::Counters& c = run.wh->counters();
  EXPECT_GT(c.degraded_serves, 0u);
  EXPECT_EQ(run.degraded, c.degraded_serves);
  EXPECT_EQ(run.stale, c.stale_serves);
  EXPECT_EQ(run.summary, c.summary_serves);
  EXPECT_EQ(run.failed, c.failed_serves);
  // Stale and summary serves are kinds of degraded serves.
  EXPECT_LE(c.stale_serves + c.summary_serves, c.degraded_serves);

  // A clean run over the same workload has no degradation at all.
  ChaosKnobs clean = k;
  clean.with_faults = false;
  ChaosRun oracle = RunChaos(clean);
  EXPECT_EQ(oracle.wh->counters().degraded_serves, 0u);
  EXPECT_EQ(oracle.wh->counters().fetch_failures, 0u);
}

TEST(ChaosTest, RecoveryConvergesToNeverFaultedOracle) {
  ChaosKnobs k;
  k.modifications_per_hour = 0;  // Request-only: versions never move, so
                                 // the faulted run can converge exactly.
  k.tier_losses = 1;
  k.origin_outages = 2;

  ChaosKnobs clean = k;
  clean.with_faults = false;
  ChaosRun oracle = RunChaos(clean);
  ChaosRun faulted = RunChaos(k);

  // Usage histories are identical by construction (references are recorded
  // whether or not storage/origin cooperated), so the analyzer agrees.
  EXPECT_EQ(faulted.wh->analyzer().total_requests(),
            oracle.wh->analyzer().total_requests());
  EXPECT_EQ(faulted.wh->analyzer().distinct_pages(),
            oracle.wh->analyzer().distinct_pages());

  // Recovery protocol: drop the injector, re-fetch what the faults cost us
  // (lost-and-unrecoverable copies, fetches that never succeeded), then
  // run one fault-free housekeeping pass so the rebalancer normalizes
  // placement. The oracle gets the identical treatment (both its passes
  // are no-ops) so the two runs see the same simulated times.
  faulted.wh->AttachFaultInjector(nullptr);
  uint64_t restored = faulted.wh->Reconcile(k.horizon);
  uint64_t oracle_restored = oracle.wh->Reconcile(k.horizon);
  EXPECT_EQ(oracle_restored, 0u);  // Nothing to restore on a clean run.
  (void)restored;
  SimTime final_tick = k.horizon + 2 * kHour;
  faulted.wh->Tick(final_tick);
  oracle.wh->Tick(final_tick);

  // Converged: identical raw-object placement on every tier.
  for (storage::TierIndex t = 0; t < 3; ++t) {
    EXPECT_EQ(RawSetAtTier(*faulted.wh, t), RawSetAtTier(*oracle.wh, t))
        << "tier " << t << " diverged";
  }

  // And identical query results.
  const char* kQueries[] = {
      "SELECT MFU 10 p.oid FROM Physical_Page p",
      "SELECT LFU 10 p.oid FROM Physical_Page p",
      "SELECT COUNT(*) FROM Raw_Object r WHERE r.size > 1000",
  };
  for (const char* q : kQueries) {
    auto a = faulted.wh->ExecuteQuery(q);
    auto b = oracle.wh->ExecuteQuery(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    ASSERT_EQ(a->result.rows.size(), b->result.rows.size()) << q;
    for (size_t i = 0; i < a->result.rows.size(); ++i) {
      ASSERT_EQ(a->result.rows[i].size(), b->result.rows[i].size());
      for (size_t j = 0; j < a->result.rows[i].size(); ++j) {
        EXPECT_EQ(a->result.rows[i][j].ToString(),
                  b->result.rows[i][j].ToString())
            << q << " row " << i;
      }
    }
  }

  // Both ends healthy.
  Status fa = faulted.wh->CheckStorageInvariants();
  Status fb = oracle.wh->CheckStorageInvariants();
  EXPECT_TRUE(fa.ok()) << fa.ToString();
  EXPECT_TRUE(fb.ok()) << fb.ToString();
}

TEST(ChaosTest, EpochCacheDropsPreFailureResults) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 30;
  copts.seed = 9;
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());
  core::Warehouse wh(&corpus, &origin, nullptr, core::WarehouseOptions{});

  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 20; ++p) {
    wh.RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  const char* q = "SELECT MFU 5 p.oid FROM Physical_Page p";
  ASSERT_TRUE(wh.ExecuteQuery(q).ok());
  ASSERT_TRUE(wh.ExecuteQuery(q).ok());
  EXPECT_EQ(wh.counters().query_cache_hits, 1u);

  // A tier failure bumps the data epoch: the cached result is pre-failure
  // state and must not be served again.
  wh.SimulateTierFailure(0);
  uint64_t hits_before = wh.counters().query_cache_hits;
  ASSERT_TRUE(wh.ExecuteQuery(q).ok());
  EXPECT_EQ(wh.counters().query_cache_hits, hits_before)
      << "epoch cache served a pre-failure result";
}

}  // namespace
}  // namespace cbfww
