#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "util/strings.h"

namespace cbfww::core {
namespace {

corpus::CorpusOptions FeatureCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 4;
  opts.pages_per_site = 50;
  opts.topic.num_topics = 4;
  opts.seed = 99;
  return opts;
}

class WarehouseFeaturesTest : public ::testing::Test {
 protected:
  WarehouseFeaturesTest()
      : corpus_(FeatureCorpusOptions()),
        origin_(&corpus_, net::NetworkModel()) {}

  std::unique_ptr<Warehouse> MakeWarehouse(WarehouseOptions opts) {
    return std::make_unique<Warehouse>(&corpus_, &origin_, nullptr, opts);
  }

  /// A length-3 link path starting at page 0.
  std::vector<corpus::PageId> LinkPath() {
    corpus::PageId a = 0;
    corpus::PageId b = corpus_.page(a).anchors[0].target;
    corpus::PageId c = corpus_.page(b).anchors[0].target;
    return {a, b, c};
  }

  corpus::WebCorpus corpus_;
  net::OriginServer origin_;
};

// ---------------------------------------------------------------------------
// Guided navigation (path prefetch)
// ---------------------------------------------------------------------------

TEST_F(WarehouseFeaturesTest, PathPrefetchStagesUpcomingPages) {
  WarehouseOptions opts;
  opts.memory_bytes = 4ull * 1024 * 1024;
  opts.logical.support_threshold = 3;
  opts.enable_path_prefetch = true;
  auto wh = MakeWarehouse(opts);
  auto path = LinkPath();

  // Mine the path with several sessions.
  SimTime t = kSecond;
  for (int s = 0; s < 4; ++s) {
    for (size_t i = 0; i < path.size(); ++i) {
      wh->RequestPage({.page = path[i],
                       .user = 1,
                       .session = s,
                       .via_link = i > 0,
                       .now = t});
      t += 10 * kSecond;
    }
    t += kHour;
  }
  ASSERT_FALSE(wh->logical_pages().PagesStartingAt(path[0]).empty());

  // Demote the next page's container out of memory, then let a fresh
  // session hit the entry page: guided navigation must stage it back.
  auto next_container = EncodeStoreId(index::ObjectLevel::kRaw,
                                      corpus_.page(path[1]).container);
  if (wh->mutable_hierarchy().IsResident(next_container, 0)) {
    ASSERT_TRUE(wh->mutable_hierarchy().Evict(next_container, 0).ok());
  }
  ASSERT_NE(wh->hierarchy().FastestTierOf(next_container), 0);

  uint64_t before = wh->counters().path_prefetches;
  wh->RequestPage({.page = path[0], .user = 9, .session = 999, .now = t});
  EXPECT_GT(wh->counters().path_prefetches, before);
  EXPECT_EQ(wh->hierarchy().FastestTierOf(next_container), 0);
}

TEST_F(WarehouseFeaturesTest, PathPrefetchCanBeDisabled) {
  WarehouseOptions opts;
  opts.logical.support_threshold = 3;
  opts.enable_path_prefetch = false;
  auto wh = MakeWarehouse(opts);
  auto path = LinkPath();
  SimTime t = kSecond;
  for (int s = 0; s < 5; ++s) {
    for (size_t i = 0; i < path.size(); ++i) {
      wh->RequestPage({.page = path[i],
                       .user = 1,
                       .session = s,
                       .via_link = i > 0,
                       .now = t});
      t += 10 * kSecond;
    }
    t += kHour;
  }
  EXPECT_EQ(wh->counters().path_prefetches, 0u);
}

// ---------------------------------------------------------------------------
// Index placement + costed queries
// ---------------------------------------------------------------------------

TEST_F(WarehouseFeaturesTest, IndexesArePlacedIntoTheHierarchy) {
  WarehouseOptions opts;
  opts.memory_bytes = 32ull * 1024 * 1024;
  auto wh = MakeWarehouse(opts);
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 50; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  wh->Tick(t + 2 * kHour);  // Rebalance places the indexes.
  // The physical-level content index and the title index are resident.
  auto phys_idx = Warehouse::IndexStoreId(
      static_cast<int>(index::ObjectLevel::kPhysical));
  auto title_idx = Warehouse::IndexStoreId(4);
  EXPECT_NE(wh->hierarchy().FastestTierOf(phys_idx), storage::kNoTier);
  EXPECT_NE(wh->hierarchy().FastestTierOf(title_idx), storage::kNoTier);
}

TEST_F(WarehouseFeaturesTest, CostedQueryChargesIndexRead) {
  WarehouseOptions opts;
  auto wh = MakeWarehouse(opts);
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 60; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  wh->Tick(t + 2 * kHour);

  const PhysicalPageRecord* rec = wh->FindPage(0);
  ASSERT_NE(rec, nullptr);
  ASSERT_FALSE(rec->title_terms.empty());
  std::string term = corpus_.vocabulary().TermOf(rec->title_terms[0]);
  std::string q = StrFormat(
      "SELECT p.oid FROM Physical_Page p WHERE p.title MENTION '%s'",
      term.c_str());

  auto indexed = wh->ExecuteQuery(q, {.use_index = true, .with_cost = true});
  auto scanned = wh->ExecuteQuery(q, {.use_index = false, .with_cost = true});
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(indexed->result.used_index);
  EXPECT_FALSE(scanned->result.used_index);
  EXPECT_GT(indexed->cost, 0);
  EXPECT_GT(scanned->cost, 0);
  // Same answers either way.
  EXPECT_EQ(indexed->result.rows.size(), scanned->result.rows.size());
  EXPECT_EQ(wh->counters().indexed_queries, 1u);
  EXPECT_EQ(wh->counters().scan_queries, 1u);
}

TEST_F(WarehouseFeaturesTest, QueryResultCacheHitsAndEpochInvalidation) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 20; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  const char* q = "SELECT p.oid FROM Physical_Page p";
  const uint64_t h0 = wh->counters().query_cache_hits;
  const uint64_t m0 = wh->counters().query_cache_misses;

  auto r1 = wh->ExecuteQuery(q);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(wh->counters().query_cache_misses, m0 + 1);
  EXPECT_EQ(wh->counters().query_cache_hits, h0);

  auto r2 = wh->ExecuteQuery(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(wh->counters().query_cache_hits, h0 + 1);
  EXPECT_EQ(r2->result.rows.size(), r1->result.rows.size());

  // Whitespace variants normalize to the same cache key.
  auto r3 = wh->ExecuteQuery("  SELECT   p.oid  FROM  Physical_Page  p ");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(wh->counters().query_cache_hits, h0 + 2);
  EXPECT_EQ(wh->counters().query_cache_misses, m0 + 1);

  // Any new request bumps the data epoch, invalidating every entry.
  const uint64_t epoch = wh->data_epoch();
  wh->RequestPage({.page = 25, .user = 1, .session = 99, .now = t});
  EXPECT_GT(wh->data_epoch(), epoch);
  auto r4 = wh->ExecuteQuery(q);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(wh->counters().query_cache_misses, m0 + 2);
}

TEST_F(WarehouseFeaturesTest, CostedQueriesBypassResultCache) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  const char* q = "SELECT p.oid FROM Physical_Page p";
  const uint64_t h0 = wh->counters().query_cache_hits;
  const uint64_t m0 = wh->counters().query_cache_misses;
  for (int i = 0; i < 3; ++i) {
    auto r = wh->ExecuteQuery(q, {.with_cost = true});
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->cost, 0);  // Every costed run measures, never memoizes.
  }
  EXPECT_EQ(wh->counters().query_cache_hits, h0);
  EXPECT_EQ(wh->counters().query_cache_misses, m0);
}

TEST_F(WarehouseFeaturesTest, HotIndexPreferredForMemory) {
  WarehouseOptions opts;
  // Memory sized so the index budget (1/8) cannot hold both big indexes.
  opts.memory_bytes = 2ull * 1024 * 1024;
  auto wh = MakeWarehouse(opts);
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 120; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  // Hammer the title index with queries; leave the content index cold.
  const PhysicalPageRecord* rec = wh->FindPage(0);
  std::string term = corpus_.vocabulary().TermOf(rec->title_terms[0]);
  for (int i = 0; i < 20; ++i) {
    (void)wh->ExecuteQuery(
        StrFormat("SELECT p.oid FROM Physical_Page p WHERE p.title "
                  "MENTION '%s'",
                  term.c_str()),
        {.with_cost = true});
  }
  wh->Tick(t + 2 * kHour);

  auto title_idx = Warehouse::IndexStoreId(4);
  auto phys_idx = Warehouse::IndexStoreId(
      static_cast<int>(index::ObjectLevel::kPhysical));
  // The title index (heavily used, small) should rank at least as fast a
  // tier as the content index.
  storage::TierIndex title_tier = wh->hierarchy().FastestTierOf(title_idx);
  storage::TierIndex phys_tier = wh->hierarchy().FastestTierOf(phys_idx);
  ASSERT_NE(title_tier, storage::kNoTier);
  ASSERT_NE(phys_tier, storage::kNoTier);
  EXPECT_LE(title_tier, phys_tier);
}

// ---------------------------------------------------------------------------
// Query catalog coverage for raw / region entities
// ---------------------------------------------------------------------------

TEST_F(WarehouseFeaturesTest, RawObjectQueries) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  wh->RequestPage({.page = 0, .user = 1, .session = 2, .now = 2 * kSecond});
  auto r = wh->ExecuteQuery(
      "SELECT MFU 3 r.oid, r.kind, r.size, r.shared FROM Raw_Object r");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->result.rows.empty());
  // The top raw object was referenced as part of page 0's visits.
  EXPECT_TRUE(r->result.rows[0][1].is_string());
  EXPECT_GT(r->result.rows[0][2].AsInt(), 0);
}

TEST_F(WarehouseFeaturesTest, SemanticRegionQueries) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 30; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  auto r = wh->ExecuteQuery(
      "SELECT oid, weight, priority, size FROM Semantic_Region s "
      "WHERE s.weight > 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->result.rows.empty());
  for (const auto& row : r->result.rows) {
    EXPECT_GT(row[1].AsDouble(), 0.0);
  }
}

TEST_F(WarehouseFeaturesTest, PrintReportSummarizesState) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  SimTime t = kSecond;
  for (corpus::PageId p = 0; p < 10; ++p) {
    wh->RequestPage(
        {.page = p, .user = 1, .session = static_cast<int64_t>(p), .now = t});
    t += kSecond;
  }
  std::ostringstream os;
  wh->PrintReport(os);
  std::string report = os.str();
  EXPECT_NE(report.find("requests: 10"), std::string::npos);
  EXPECT_NE(report.find("origin fetches"), std::string::npos);
  EXPECT_NE(report.find("tiers:"), std::string::npos);
  EXPECT_NE(report.find("semantic regions"), std::string::npos);
}

TEST_F(WarehouseFeaturesTest, UnknownAttributeIsNull) {
  auto wh = MakeWarehouse(WarehouseOptions{});
  wh->RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});
  auto r = wh->ExecuteQuery("SELECT p.nonsense FROM Physical_Page p");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->result.rows.empty());
  EXPECT_TRUE(r->result.rows[0][0].is_null());
}

}  // namespace
}  // namespace cbfww::core
