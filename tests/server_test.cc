// Unit tests of the serving layer's pieces: incremental HTTP parser, wire
// serialization, the event loop's poll fallback, and the counters
// serializer shared with /metrics and PrintDurableReport.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unistd.h>

#include "core/counters_io.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "server/event_loop.h"
#include "server/http_parser.h"
#include "server/wire_format.h"

namespace cbfww::server {
namespace {

// ----- HttpParser -----

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  std::string_view raw = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(parser.Consume(raw), raw.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().Header("host"), "x");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, IncrementalByteByByte) {
  HttpParser parser;
  std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 5\r\nX-Y: z\r\n\r\nhello";
  for (char c : raw) {
    ASSERT_FALSE(parser.failed());
    parser.Consume(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello");
  EXPECT_EQ(parser.request().Header("x-y"), "z");
}

TEST(HttpParserTest, PipeliningStopsAtRequestBoundary) {
  HttpParser parser;
  std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  size_t consumed = parser.Consume(two);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  // The second request's bytes were NOT consumed.
  EXPECT_EQ(two.substr(consumed), "GET /b HTTP/1.1\r\n\r\n");
  parser.Reset();
  parser.Consume(std::string_view(two).substr(consumed));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);

  parser.Reset();
  parser.Consume("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, ConnectionCloseOverridesKeepAlive) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParserTest, RejectsUnsupportedVersion) {
  HttpParser parser;
  parser.Consume("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, RejectsChunkedUploads) {
  HttpParser parser;
  parser.Consume("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsOversizeBody) {
  ParserLimits limits;
  limits.max_body_bytes = 10;
  HttpParser parser(limits);
  parser.Consume("POST /q HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, RejectsOversizeHeaderSection) {
  ParserLimits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'a') +
                    "\r\n\r\n";
  parser.Consume(raw);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, RejectsTooManyHeaders) {
  ParserLimits limits;
  limits.max_headers = 3;
  HttpParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    raw += "H";
    raw += std::to_string(i);
    raw += ": v\r\n";
  }
  raw += "\r\n";
  parser.Consume(raw);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  HttpParser parser;
  parser.Consume("GARBAGE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsWhitespaceInHeaderName) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.1\r\nBad Header : v\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsMalformedContentLength) {
  HttpParser parser;
  parser.Consume("POST / HTTP/1.1\r\nContent-Length: 12a\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ResetAllowsReuse) {
  HttpParser parser;
  parser.Consume("BAD\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.Reset();
  parser.Consume("GET /ok HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/ok");
}

// ----- Wire format -----

TEST(WireFormatTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(WireFormatTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("a%20b").value(), "a b");
  EXPECT_EQ(PercentDecode("http%3A%2F%2Fx%2Fy").value(), "http://x/y");
  EXPECT_EQ(PercentDecode("no-escapes").value(), "no-escapes");
  EXPECT_FALSE(PercentDecode("bad%2").has_value());
  EXPECT_FALSE(PercentDecode("bad%zz").has_value());
}

TEST(WireFormatTest, ParseTarget) {
  RequestTarget t = ParseTarget("/page/7?user=3&t=1000&flag");
  EXPECT_EQ(t.path, "/page/7");
  EXPECT_EQ(t.Param("user"), "3");
  EXPECT_EQ(t.Param("t"), "1000");
  EXPECT_EQ(t.Param("missing"), "");

  RequestTarget decoded = ParseTarget("/page/http%3A%2F%2Fsite0%2Fa?u=%311");
  EXPECT_EQ(decoded.path, "/page/http://site0/a");
  EXPECT_EQ(decoded.Param("u"), "11");
}

TEST(WireFormatTest, PageVisitJsonShape) {
  core::PageVisit visit;
  visit.page = 12;
  visit.latency = 1500;
  visit.from_memory = 2;
  visit.from_origin = 1;
  std::string json = PageVisitToJson(visit, "http://a/b");
  EXPECT_NE(json.find("\"page\":12"), std::string::npos);
  EXPECT_NE(json.find("\"url\":\"http://a/b\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"from_memory\":2"), std::string::npos);
  // Without a URL the field is omitted.
  EXPECT_EQ(PageVisitToJson(visit, "").find("\"url\""), std::string::npos);
}

TEST(WireFormatTest, ValueJson) {
  using core::query::Value;
  EXPECT_EQ(ValueToJson(Value()), "null");
  EXPECT_EQ(ValueToJson(Value(static_cast<int64_t>(-7))), "-7");
  EXPECT_EQ(ValueToJson(Value(true)), "true");
  EXPECT_EQ(ValueToJson(Value(std::string("a\"b"))), "\"a\\\"b\"");
  EXPECT_EQ(ValueToJson(Value(std::vector<uint64_t>{1, 2})), "[1,2]");
}

TEST(WireFormatTest, QueryTicketMergesShards) {
  cluster::ServeTicket ticket;
  ticket.query.resize(3);
  // Shard 0: two rows.
  ticket.query[0].result.result.columns = {"url"};
  ticket.query[0].result.result.rows = {
      {core::query::Value(std::string("a"))},
      {core::query::Value(std::string("b"))}};
  ticket.query[0].result.result.candidates_evaluated = 10;
  ticket.query[0].result.result.used_index = true;
  ticket.query[0].result.cost = 5;
  // Shard 1: shed.
  ticket.query[1].status = Status::ResourceExhausted("shed");
  // Shard 2: one row, higher cost.
  ticket.query[2].result.result.columns = {"url"};
  ticket.query[2].result.result.rows = {
      {core::query::Value(std::string("c"))}};
  ticket.query[2].result.result.candidates_evaluated = 4;
  ticket.query[2].result.cost = 9;

  std::string json = QueryTicketToJson(ticket);
  EXPECT_NE(json.find("\"columns\":[\"url\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"a\"],[\"b\"],[\"c\"]"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_evaluated\":14"), std::string::npos);
  EXPECT_NE(json.find("\"used_index\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cost_us\":9"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":3"), std::string::npos);
}

// ----- Counters serializer (shared by /metrics, reports, tests) -----

TEST(CountersIoTest, EntriesCoverAllCountersInFixedOrder) {
  core::Warehouse::Counters counters;
  counters.requests = 3;
  counters.origin_fetches = 2;
  counters.background_time = 1234;
  auto entries = core::CounterEntries(counters);
  ASSERT_FALSE(entries.empty());
  EXPECT_STREQ(entries.front().name, "requests");
  EXPECT_EQ(entries.front().value, 3u);
  bool found_bg = false;
  for (const auto& e : entries) {
    if (std::string_view(e.name) == "background_time_us") {
      found_bg = true;
      EXPECT_EQ(e.value, 1234u);
    }
  }
  EXPECT_TRUE(found_bg);
}

TEST(CountersIoTest, JsonAndTextAgree) {
  core::Warehouse::Counters counters;
  counters.requests = 7;
  counters.fetch_retries = 2;
  std::string json = core::CountersToJson(counters);
  EXPECT_NE(json.find("\"requests\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fetch_retries\":2"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  std::ostringstream os;
  core::WriteCountersText(os, counters);
  EXPECT_NE(os.str().find("requests=7\n"), std::string::npos);
  EXPECT_NE(os.str().find("fetch_retries=2\n"), std::string::npos);
}

TEST(CountersIoTest, DurableReportCountersAreOptIn) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 10;
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());
  core::WarehouseOptions wopts;
  core::Warehouse warehouse(&corpus, &origin, nullptr, wopts);
  warehouse.RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});

  std::ostringstream plain;
  warehouse.PrintDurableReport(plain);
  EXPECT_EQ(plain.str().find("counters (non-durable)"), std::string::npos);

  std::ostringstream with;
  warehouse.PrintDurableReport(with, /*include_counters=*/true);
  EXPECT_NE(with.str().find("counters (non-durable)"), std::string::npos);
  EXPECT_NE(with.str().find("requests=1"), std::string::npos);
  // The durable section itself is byte-identical either way.
  EXPECT_EQ(with.str().substr(0, plain.str().size()), plain.str());
}

// ----- EventLoop (both backends) -----

class EventLoopBackendTest
    : public ::testing::TestWithParam<EventLoop::Backend> {};

TEST_P(EventLoopBackendTest, PipeReadiness) {
  EventLoop loop(GetParam());
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int tag_value = 42;
  ASSERT_TRUE(loop.Add(fds[0], true, false, &tag_value).ok());
  EXPECT_EQ(loop.watched(), 1u);

  std::vector<IoEvent> events;
  EXPECT_EQ(loop.Wait(events, 0), 0);  // Nothing ready yet.

  ASSERT_EQ(write(fds[1], "x", 1), 1);
  ASSERT_EQ(loop.Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, fds[0]);
  EXPECT_EQ(events[0].tag, &tag_value);
  EXPECT_TRUE(events[0].readable);

  // Duplicate Add fails; Modify of unknown fd fails.
  EXPECT_FALSE(loop.Add(fds[0], true, false, nullptr).ok());
  EXPECT_FALSE(loop.Modify(fds[1], true, false).ok());

  loop.Remove(fds[0]);
  EXPECT_EQ(loop.watched(), 0u);
  close(fds[0]);
  close(fds[1]);
}

TEST_P(EventLoopBackendTest, WriteInterest) {
  EventLoop loop(GetParam());
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(loop.Add(fds[1], false, true, nullptr).ok());
  std::vector<IoEvent> events;
  ASSERT_EQ(loop.Wait(events, 1000), 1);  // Empty pipe: writable.
  EXPECT_TRUE(events[0].writable);
  // Drop write interest: nothing ready.
  ASSERT_TRUE(loop.Modify(fds[1], false, false).ok());
  EXPECT_EQ(loop.Wait(events, 0), 0);
  loop.Remove(fds[1]);
  close(fds[0]);
  close(fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackendTest,
                         ::testing::Values(EventLoop::Backend::kDefault,
                                           EventLoop::Backend::kPoll));

TEST(EventLoopTest, PollBackendForcedEvenOnLinux) {
  EventLoop loop(EventLoop::Backend::kPoll);
  EXPECT_FALSE(loop.using_epoll());
}

}  // namespace
}  // namespace cbfww::server
