// Unit tests of the serving layer's pieces: incremental HTTP parser, wire
// serialization, the scatter/gather output buffer, the rendered-body
// store, the event loop's poll fallback (including epoll/poll parity on
// one readiness sequence), and the counters serializer shared with
// /metrics and PrintDurableReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fcntl.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <tuple>
#include <unistd.h>
#include <vector>

#include "core/counters_io.h"
#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "server/body_store.h"
#include "server/event_loop.h"
#include "server/http_parser.h"
#include "server/output_buffer.h"
#include "server/wire_format.h"
#include "util/rng.h"

namespace cbfww::server {
namespace {

// ----- HttpParser -----

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  std::string_view raw = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(parser.Consume(raw), raw.size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().Header("host"), "x");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, IncrementalByteByByte) {
  HttpParser parser;
  std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 5\r\nX-Y: z\r\n\r\nhello";
  for (char c : raw) {
    ASSERT_FALSE(parser.failed());
    parser.Consume(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello");
  EXPECT_EQ(parser.request().Header("x-y"), "z");
}

TEST(HttpParserTest, PipeliningStopsAtRequestBoundary) {
  HttpParser parser;
  std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  size_t consumed = parser.Consume(two);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  // The second request's bytes were NOT consumed.
  EXPECT_EQ(two.substr(consumed), "GET /b HTTP/1.1\r\n\r\n");
  parser.Reset();
  parser.Consume(std::string_view(two).substr(consumed));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);

  parser.Reset();
  parser.Consume("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, ConnectionCloseOverridesKeepAlive) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParserTest, RejectsUnsupportedVersion) {
  HttpParser parser;
  parser.Consume("GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, RejectsChunkedUploads) {
  HttpParser parser;
  parser.Consume("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsOversizeBody) {
  ParserLimits limits;
  limits.max_body_bytes = 10;
  HttpParser parser(limits);
  parser.Consume("POST /q HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, RejectsOversizeHeaderSection) {
  ParserLimits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'a') +
                    "\r\n\r\n";
  parser.Consume(raw);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, RejectsTooManyHeaders) {
  ParserLimits limits;
  limits.max_headers = 3;
  HttpParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    raw += "H";
    raw += std::to_string(i);
    raw += ": v\r\n";
  }
  raw += "\r\n";
  parser.Consume(raw);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  HttpParser parser;
  parser.Consume("GARBAGE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsWhitespaceInHeaderName) {
  HttpParser parser;
  parser.Consume("GET / HTTP/1.1\r\nBad Header : v\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsMalformedContentLength) {
  HttpParser parser;
  parser.Consume("POST / HTTP/1.1\r\nContent-Length: 12a\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ResetAllowsReuse) {
  HttpParser parser;
  parser.Consume("BAD\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.Reset();
  parser.Consume("GET /ok HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/ok");
}

// ----- Wire format -----

TEST(WireFormatTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(WireFormatTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("a%20b").value(), "a b");
  EXPECT_EQ(PercentDecode("http%3A%2F%2Fx%2Fy").value(), "http://x/y");
  EXPECT_EQ(PercentDecode("no-escapes").value(), "no-escapes");
  EXPECT_FALSE(PercentDecode("bad%2").has_value());
  EXPECT_FALSE(PercentDecode("bad%zz").has_value());
}

TEST(WireFormatTest, ParseTarget) {
  RequestTarget t = ParseTarget("/page/7?user=3&t=1000&flag");
  EXPECT_EQ(t.path, "/page/7");
  EXPECT_EQ(t.Param("user"), "3");
  EXPECT_EQ(t.Param("t"), "1000");
  EXPECT_EQ(t.Param("missing"), "");

  RequestTarget decoded = ParseTarget("/page/http%3A%2F%2Fsite0%2Fa?u=%311");
  EXPECT_EQ(decoded.path, "/page/http://site0/a");
  EXPECT_EQ(decoded.Param("u"), "11");
}

TEST(WireFormatTest, PageVisitJsonShape) {
  core::PageVisit visit;
  visit.page = 12;
  visit.latency = 1500;
  visit.from_memory = 2;
  visit.from_origin = 1;
  std::string json = PageVisitToJson(visit, "http://a/b");
  EXPECT_NE(json.find("\"page\":12"), std::string::npos);
  EXPECT_NE(json.find("\"url\":\"http://a/b\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"from_memory\":2"), std::string::npos);
  // Without a URL the field is omitted.
  EXPECT_EQ(PageVisitToJson(visit, "").find("\"url\""), std::string::npos);
}

TEST(WireFormatTest, ValueJson) {
  using core::query::Value;
  EXPECT_EQ(ValueToJson(Value()), "null");
  EXPECT_EQ(ValueToJson(Value(static_cast<int64_t>(-7))), "-7");
  EXPECT_EQ(ValueToJson(Value(true)), "true");
  EXPECT_EQ(ValueToJson(Value(std::string("a\"b"))), "\"a\\\"b\"");
  EXPECT_EQ(ValueToJson(Value(std::vector<uint64_t>{1, 2})), "[1,2]");
}

TEST(WireFormatTest, QueryTicketMergesShards) {
  cluster::ServeTicket ticket;
  ticket.query.resize(3);
  // Shard 0: two rows.
  ticket.query[0].result.result.columns = {"url"};
  ticket.query[0].result.result.rows = {
      {core::query::Value(std::string("a"))},
      {core::query::Value(std::string("b"))}};
  ticket.query[0].result.result.candidates_evaluated = 10;
  ticket.query[0].result.result.used_index = true;
  ticket.query[0].result.cost = 5;
  // Shard 1: shed.
  ticket.query[1].status = Status::ResourceExhausted("shed");
  // Shard 2: one row, higher cost.
  ticket.query[2].result.result.columns = {"url"};
  ticket.query[2].result.result.rows = {
      {core::query::Value(std::string("c"))}};
  ticket.query[2].result.result.candidates_evaluated = 4;
  ticket.query[2].result.cost = 9;

  std::string json = QueryTicketToJson(ticket);
  EXPECT_NE(json.find("\"columns\":[\"url\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"a\"],[\"b\"],[\"c\"]"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_evaluated\":14"), std::string::npos);
  EXPECT_NE(json.find("\"used_index\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cost_us\":9"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":3"), std::string::npos);
}

// ----- Counters serializer (shared by /metrics, reports, tests) -----

TEST(CountersIoTest, EntriesCoverAllCountersInFixedOrder) {
  core::Warehouse::Counters counters;
  counters.requests = 3;
  counters.origin_fetches = 2;
  counters.background_time = 1234;
  auto entries = core::CounterEntries(counters);
  ASSERT_FALSE(entries.empty());
  EXPECT_STREQ(entries.front().name, "requests");
  EXPECT_EQ(entries.front().value, 3u);
  bool found_bg = false;
  for (const auto& e : entries) {
    if (std::string_view(e.name) == "background_time_us") {
      found_bg = true;
      EXPECT_EQ(e.value, 1234u);
    }
  }
  EXPECT_TRUE(found_bg);
}

TEST(CountersIoTest, JsonAndTextAgree) {
  core::Warehouse::Counters counters;
  counters.requests = 7;
  counters.fetch_retries = 2;
  std::string json = core::CountersToJson(counters);
  EXPECT_NE(json.find("\"requests\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fetch_retries\":2"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  std::ostringstream os;
  core::WriteCountersText(os, counters);
  EXPECT_NE(os.str().find("requests=7\n"), std::string::npos);
  EXPECT_NE(os.str().find("fetch_retries=2\n"), std::string::npos);
}

TEST(CountersIoTest, DurableReportCountersAreOptIn) {
  corpus::CorpusOptions copts;
  copts.num_sites = 2;
  copts.pages_per_site = 10;
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());
  core::WarehouseOptions wopts;
  core::Warehouse warehouse(&corpus, &origin, nullptr, wopts);
  warehouse.RequestPage({.page = 0, .user = 1, .session = 1, .now = kSecond});

  std::ostringstream plain;
  warehouse.PrintDurableReport(plain);
  EXPECT_EQ(plain.str().find("counters (non-durable)"), std::string::npos);

  std::ostringstream with;
  warehouse.PrintDurableReport(with, /*include_counters=*/true);
  EXPECT_NE(with.str().find("counters (non-durable)"), std::string::npos);
  EXPECT_NE(with.str().find("requests=1"), std::string::npos);
  // The durable section itself is byte-identical either way.
  EXPECT_EQ(with.str().substr(0, plain.str().size()), plain.str());
}

// ----- OutBuf (arena serializer + writev scatter output) -----

// Reads everything currently queued on `fd` (which must have data).
std::string ReadAvailable(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  return out;
}

TEST(OutBufTest, AppendCopiesIntoArenaAndFlushes) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  OutBuf out;
  out.Append("HTTP/1.1 200 OK\r\n\r\n");
  out.Append("hello ");
  out.Append("world");
  EXPECT_EQ(out.pending(), 30u);
  EXPECT_EQ(out.copied_bytes(), 30u);
  EXPECT_EQ(out.external_bytes(), 0u);

  uint64_t written = 0;
  EXPECT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kDrained);
  EXPECT_EQ(written, 30u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ReadAvailable(fds[1]), "HTTP/1.1 200 OK\r\n\r\nhello world");
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, ExternalSegmentsInterleaveInOrderWithoutCopy) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // External storage the buffer must reference, never copy.
  const std::string body1(1000, 'A');
  const std::string body2(2000, 'B');

  OutBuf out;
  out.Append("head|");
  out.AppendExternal(body1.data(), body1.size());
  out.Append("|mid|");
  out.AppendExternal(body2.data(), body2.size());
  out.Append("|tail");
  EXPECT_EQ(out.copied_bytes(), 15u);       // Only the three literals.
  EXPECT_EQ(out.external_bytes(), 3000u);   // Bodies untouched by the arena.

  uint64_t written = 0;
  ASSERT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kDrained);
  EXPECT_EQ(written, 3015u);
  EXPECT_EQ(ReadAvailable(fds[1]), "head|" + body1 + "|mid|" + body2 + "|tail");
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, StagedResponseWithContentLengthKeepsBodyVerbatim) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string body(100, 'x');

  OutBuf out;
  out.BeginResponse();
  EXPECT_TRUE(out.response_open());
  out.Append("{\"n\":1}");
  out.AppendExternal(body.data(), body.size());
  EXPECT_EQ(out.staged_bytes(), 107u);
  EXPECT_EQ(out.pending(), 0u);  // Nothing queued until the head is known.
  out.EndResponse("HTTP/1.1 200 OK\r\nContent-Length: 107\r\n\r\n",
                  /*chunked=*/false, 0);
  EXPECT_FALSE(out.response_open());

  uint64_t written = 0;
  ASSERT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kDrained);
  EXPECT_EQ(ReadAvailable(fds[1]),
            "HTTP/1.1 200 OK\r\nContent-Length: 107\r\n\r\n{\"n\":1}" + body);
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, ChunkedFramingSlicesSegmentsAtChunkMax) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 40 external bytes with chunk_max 16 -> chunks of 16, 16, 8. The 7-byte
  // arena segment before it stays its own chunk (chunking is per segment).
  const std::string body(40, 'E');

  OutBuf out;
  out.BeginResponse();
  out.Append("{\"a\":1}");
  out.AppendExternal(body.data(), body.size());
  const std::string head =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  out.EndResponse(head, /*chunked=*/true, /*chunk_max=*/16);

  uint64_t written = 0;
  ASSERT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kDrained);
  std::string expected = head + "7\r\n{\"a\":1}\r\n" +
                         "10\r\n" + std::string(16, 'E') + "\r\n" +
                         "10\r\n" + std::string(16, 'E') + "\r\n" +
                         "8\r\n" + std::string(8, 'E') + "\r\n" +
                         "0\r\n\r\n";
  EXPECT_EQ(ReadAvailable(fds[1]), expected);
  // The external body bytes were still never copied: head, JSON, and
  // chunk framing went through the arena, the 40-byte payload did not.
  EXPECT_EQ(out.external_bytes(), 40u);
  EXPECT_EQ(out.copied_bytes(), expected.size() - 40);
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, FlushReportsWouldBlockAndResumesWhereItStopped) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);
  int snd = 4096;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &snd, sizeof(snd));

  // Far more than any socket buffer holds.
  const std::string big(4 * 1024 * 1024, 'Q');
  OutBuf out;
  out.AppendExternal(big.data(), big.size());

  uint64_t written = 0;
  ASSERT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kWouldBlock);
  EXPECT_GT(written, 0u);
  EXPECT_LT(written, big.size());
  EXPECT_EQ(out.pending(), big.size() - written);

  // Drain the reader and keep flushing until done; the receiver must see
  // every byte exactly once, in order.
  std::string received;
  while (!out.empty()) {
    received += ReadAvailable(fds[1]);
    OutBuf::FlushResult result = out.FlushTo(fds[0], &written);
    ASSERT_NE(result, OutBuf::FlushResult::kError);
  }
  received += ReadAvailable(fds[1]);
  EXPECT_EQ(written, big.size());
  EXPECT_EQ(received, big);
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, FlushToBadFdIsError) {
  OutBuf out;
  out.Append("data");
  uint64_t written = 0;
  EXPECT_EQ(out.FlushTo(-1, &written), OutBuf::FlushResult::kError);
  EXPECT_EQ(written, 0u);
  EXPECT_EQ(out.pending(), 4u);  // Nothing lost; caller decides what's next.
}

TEST(OutBufTest, DrainsMoreSegmentsThanOneWritevBatch) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // External segments with distinct bases cannot merge, so this queues
  // 3 * kMaxIov iovecs and FlushTo must loop over writev batches.
  std::vector<std::string> pieces;
  std::string expected;
  for (size_t i = 0; i < 3 * OutBuf::kMaxIov; ++i) {
    pieces.push_back("seg" + std::to_string(i) + ";");
    expected += pieces.back();
  }
  OutBuf out;
  for (const std::string& p : pieces) out.AppendExternal(p.data(), p.size());

  uint64_t written = 0;
  ASSERT_EQ(out.FlushTo(fds[0], &written), OutBuf::FlushResult::kDrained);
  EXPECT_EQ(written, expected.size());
  EXPECT_EQ(ReadAvailable(fds[1]), expected);
  close(fds[0]);
  close(fds[1]);
}

TEST(OutBufTest, ClearDropsPendingButKeepsLifetimeCounters) {
  OutBuf out;
  out.Append("abc");
  const std::string ext = "defg";
  out.AppendExternal(ext.data(), ext.size());
  out.BeginResponse();
  out.Append("staged");
  out.Clear();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.pending(), 0u);
  EXPECT_FALSE(out.response_open());
  EXPECT_EQ(out.staged_bytes(), 0u);
  // Counters are lifetime totals (metrics), not queue state.
  EXPECT_EQ(out.copied_bytes(), 9u);
  EXPECT_EQ(out.external_bytes(), 4u);
}

// ----- BodyStore (rendered-body snapshot) -----

corpus::CorpusOptions BodyStoreCorpusOptions() {
  corpus::CorpusOptions opts;
  opts.num_sites = 2;
  opts.pages_per_site = 12;
  opts.topic.num_topics = 3;
  opts.seed = 99;
  return opts;
}

TEST(BodyStoreTest, RendersToLogicalSizeWithStableViews) {
  corpus::WebCorpus corpus(BodyStoreCorpusOptions());
  BodyStore store(corpus);
  ASSERT_EQ(store.num_objects(), corpus.num_raw_objects());
  EXPECT_EQ(store.rendered_objects(), 0u);  // Rendering is lazy.

  std::string_view first = store.Body(0);
  // Bodies pad out to the object's logical size (never truncate below it).
  EXPECT_GE(first.size(), corpus.raw(0).size_bytes);
  EXPECT_EQ(first.size(), store.RenderedSize(0));
  EXPECT_EQ(store.rendered_objects(), 1u);
  EXPECT_EQ(store.rendered_bytes(), first.size());

  // A second request returns the same immortal storage, no re-render.
  std::string_view again = store.Body(0);
  EXPECT_EQ(again.data(), first.data());
  EXPECT_EQ(store.rendered_objects(), 1u);

  // Out-of-range ids are served as empty, not UB.
  EXPECT_TRUE(store.Body(corpus.num_raw_objects() + 5).empty());
  EXPECT_EQ(store.RenderedSize(corpus.num_raw_objects() + 5), 0u);
}

TEST(BodyStoreTest, SnapshotIsImmuneToLaterCorpusMutation) {
  corpus::WebCorpus corpus(BodyStoreCorpusOptions());
  BodyStore store(corpus);
  std::string before(store.Body(1));
  const char* base = store.Body(1).data();

  // Mutate the corpus the way shard workers do on /modify events.
  Pcg32 rng(123, 0x5EED);
  for (int i = 0; i < 5; ++i) {
    corpus.ModifyObject(1, (i + 1) * kSecond, rng);
  }
  EXPECT_EQ(store.Body(1).data(), base);
  EXPECT_EQ(std::string(store.Body(1)), before);
}

TEST(BodyStoreTest, ConcurrentFirstTouchMaterializesEachObjectOnce) {
  corpus::WebCorpus corpus(BodyStoreCorpusOptions());
  BodyStore store(corpus);
  const size_t n = std::min<size_t>(store.num_objects(), 64);

  // Every thread races Body() over the same id range — exactly what the
  // IO threads do on a cold server. TSan covers the publication protocol.
  constexpr int kThreads = 4;
  std::vector<const char*> seen[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].resize(n);
      for (size_t id = 0; id < n; ++id) {
        std::string_view body = store.Body(id);
        EXPECT_EQ(body.size(), store.RenderedSize(id));
        seen[t][id] = body.data();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // All threads observed the same storage; nothing rendered twice.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(store.rendered_objects(), n);
}

// ----- EventLoop (both backends) -----

class EventLoopBackendTest
    : public ::testing::TestWithParam<EventLoop::Backend> {};

TEST_P(EventLoopBackendTest, PipeReadiness) {
  EventLoop loop(GetParam());
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  int tag_value = 42;
  ASSERT_TRUE(loop.Add(fds[0], true, false, &tag_value).ok());
  EXPECT_EQ(loop.watched(), 1u);

  std::vector<IoEvent> events;
  EXPECT_EQ(loop.Wait(events, 0), 0);  // Nothing ready yet.

  ASSERT_EQ(write(fds[1], "x", 1), 1);
  ASSERT_EQ(loop.Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, fds[0]);
  EXPECT_EQ(events[0].tag, &tag_value);
  EXPECT_TRUE(events[0].readable);

  // Duplicate Add fails; Modify of unknown fd fails.
  EXPECT_FALSE(loop.Add(fds[0], true, false, nullptr).ok());
  EXPECT_FALSE(loop.Modify(fds[1], true, false).ok());

  loop.Remove(fds[0]);
  EXPECT_EQ(loop.watched(), 0u);
  close(fds[0]);
  close(fds[1]);
}

TEST_P(EventLoopBackendTest, WriteInterest) {
  EventLoop loop(GetParam());
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(loop.Add(fds[1], false, true, nullptr).ok());
  std::vector<IoEvent> events;
  ASSERT_EQ(loop.Wait(events, 1000), 1);  // Empty pipe: writable.
  EXPECT_TRUE(events[0].writable);
  // Drop write interest: nothing ready.
  ASSERT_TRUE(loop.Modify(fds[1], false, false).ok());
  EXPECT_EQ(loop.Wait(events, 0), 0);
  loop.Remove(fds[1]);
  close(fds[0]);
  close(fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackendTest,
                         ::testing::Values(EventLoop::Backend::kDefault,
                                           EventLoop::Backend::kPoll));

TEST(EventLoopTest, PollBackendForcedEvenOnLinux) {
  EventLoop loop(EventLoop::Backend::kPoll);
  EXPECT_FALSE(loop.using_epoll());
}

// Backend parity: epoll and poll watch the SAME fds through one scripted
// readiness sequence and must report identical (fd, readable, writable,
// error) sets at every step. Both are level-triggered, so watching one fd
// from two multiplexers is well-defined. This is what lets the poll
// fallback substitute for epoll without behavioral drift.
TEST(EventLoopTest, EpollAndPollAgreeOnSameReadinessSequence) {
  EventLoop epoll_loop(EventLoop::Backend::kDefault);
  if (!epoll_loop.using_epoll()) {
    GTEST_SKIP() << "default backend is already poll on this platform";
  }
  EventLoop poll_loop(EventLoop::Backend::kPoll);

  // (fd, readable, writable, error) tuples, sorted by fd.
  using Ready = std::vector<std::tuple<int, bool, bool, bool>>;
  auto snapshot = [](EventLoop& loop) {
    std::vector<IoEvent> events;
    int n = loop.Wait(events, 0);
    Ready ready;
    for (int i = 0; i < n; ++i) {
      ready.emplace_back(events[i].fd, events[i].readable,
                         events[i].writable, events[i].error);
    }
    std::sort(ready.begin(), ready.end());
    return ready;
  };
  auto expect_parity = [&](const char* step) {
    Ready from_epoll = snapshot(epoll_loop);
    EXPECT_EQ(from_epoll, snapshot(poll_loop)) << "diverged at: " << step;
    return from_epoll;
  };

  int a[2], b[2], c[2];
  ASSERT_EQ(pipe(a), 0);
  ASSERT_EQ(pipe(b), 0);
  ASSERT_EQ(pipe(c), 0);
  for (EventLoop* loop : {&epoll_loop, &poll_loop}) {
    ASSERT_TRUE(loop->Add(a[0], true, false, nullptr).ok());
    ASSERT_TRUE(loop->Add(b[0], true, false, nullptr).ok());
    ASSERT_TRUE(loop->Add(c[1], false, true, nullptr).ok());
  }

  // Step 1: only the empty pipe's write end is ready.
  EXPECT_EQ(expect_parity("initial").size(), 1u);

  // Step 2/3: readability appears as data lands, pipe by pipe.
  ASSERT_EQ(write(a[1], "x", 1), 1);
  EXPECT_EQ(expect_parity("a readable").size(), 2u);
  ASSERT_EQ(write(b[1], "y", 1), 1);
  EXPECT_EQ(expect_parity("a+b readable").size(), 3u);

  // Step 4: draining a pipe clears its readiness (level-triggered).
  char buf[1];
  ASSERT_EQ(read(a[0], buf, 1), 1);
  expect_parity("a drained");

  // Step 5: dropping write interest silences the writable fd.
  for (EventLoop* loop : {&epoll_loop, &poll_loop}) {
    ASSERT_TRUE(loop->Modify(c[1], false, false).ok());
  }
  EXPECT_EQ(expect_parity("write interest dropped").size(), 1u);

  // Step 6: writer hangup with data still buffered — both backends must
  // agree on the readable+error combination.
  close(b[1]);
  Ready hangup = expect_parity("b writer closed");
  ASSERT_EQ(hangup.size(), 1u);
  EXPECT_EQ(std::get<0>(hangup[0]), b[0]);
  EXPECT_TRUE(std::get<1>(hangup[0]));  // Buffered byte is readable.
  EXPECT_TRUE(std::get<3>(hangup[0]));  // Hangup surfaces as error.

  // Step 7: removal ends reporting on both.
  for (EventLoop* loop : {&epoll_loop, &poll_loop}) loop->Remove(b[0]);
  EXPECT_TRUE(expect_parity("b removed").empty());

  close(a[0]);
  close(a[1]);
  close(b[0]);
  close(c[0]);
  close(c[1]);
}

}  // namespace
}  // namespace cbfww::server
