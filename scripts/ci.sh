#!/usr/bin/env bash
# CI for the CBFWW repro: tier-1 verify (full build + fast test suite), a
# ThreadSanitizer pass over the concurrent cluster front-end, an
# ASan+UBSan pass over the retrieval hot path, a perf smoke gate on the
# pruned top-k engine, a chaos stage replaying seeded fault schedules
# under ASan, a durability stage running the crash-restart matrix and
# WAL fuzz suite under ASan, a server stage exercising the wire-level
# serving layer (HTTP parser/event-loop units + socket e2e + bench smoke)
# under ASan, and a workload stage smoke-running every declarative spec
# in bench/specs/ against both harness backends and validating every
# emitted report against the unified bench JSON schema.
#
#   scripts/ci.sh all        # everything
#   scripts/ci.sh tier1      # build + ctest (fast tests; excludes LABEL slow)
#   scripts/ci.sh tsan       # TSan cluster tests + shard bench only
#   scripts/ci.sh asan       # ASan+UBSan index/warehouse tests + hotpath
#   scripts/ci.sh perfsmoke  # hotpath smoke: pruned vs exhaustive, same run
#   scripts/ci.sh chaos      # ASan chaos harness + soak tests, 3 fixed seeds
#   scripts/ci.sh durability # ASan crash-restart matrix + WAL fuzz + bench
#   scripts/ci.sh server     # ASan+TSan server units + e2e + bench smoke
#   scripts/ci.sh segments   # ASan segment units + corruption fuzz + crash
#                            # soak smoke + bench smoke + JSON schema gate
#   scripts/ci.sh workload   # every spec x both backends, JSON schema gate
#   scripts/ci.sh netchaos   # ASan wire-resilience units + seeded socket
#                            # chaos soak + slowloris bench smoke
#   scripts/ci.sh gateway    # ASan gateway units (ring/pool/replication)
#                            # + kill-a-node e2e soak + bench smoke
#
# With no arguments the script lists the stages and exits.
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  cat <<'EOF'
usage: scripts/ci.sh <stage>

stages:
  tier1       build + ctest (fast tests; excludes LABEL slow)
  tsan        ThreadSanitizer: cluster front-end tests + shard bench
  asan        ASan+UBSan: index/warehouse tests + hotpath smoke
  perfsmoke   pruned top-k p50 vs exhaustive, same-run relative gate
  chaos       ASan chaos harness + soak tests, 3 fixed seeds
  durability  ASan crash-restart matrix + WAL fuzz + durability bench
  server      ASan+TSan serving-layer units + socket e2e + bench_server
              smoke (IO scaling gate) + bench JSON schema check
  segments    ASan segment units + 4000-case corruption fuzz +
              compaction-crash soak (3 fixed seeds) + bench_segments
              smoke + bench JSON schema check
  workload    smoke every bench/specs/*.spec against both backends,
              validate every emitted JSON against the unified schema
  netchaos    ASan wire-resilience units (timer wheel, 408s, client
              timeouts, degraded wire contract) + seeded socket-chaos
              soak (3 fixed seeds) + bench_resilience smoke + JSON gate
  gateway     ASan gateway units (hash ring, client pool, replication,
              failover) + kill-a-node e2e soak (3 fixed seeds, forked
              node processes) + bench_gateway smoke + JSON gate
  all         every stage above, in order
EOF
}

if [[ $# -eq 0 ]]; then
  usage
  exit 0
fi

stage="$1"

tier1() {
  echo "=== tier-1: build + tests ==="
  cmake -B build -S .
  cmake --build build -j
  # Soak tests carry LABEL slow and run in the chaos stage instead.
  ctest --test-dir build --output-on-failure -j -LE slow
}

tsan() {
  echo "=== tsan: cluster front-end under ThreadSanitizer ==="
  cmake -B build-tsan -S . -DCBFWW_SANITIZE=thread
  cmake --build build-tsan -j --target cluster_front_test \
    bench_throughput_shards
  ./build-tsan/tests/cluster_front_test
  # The bench drives the 1/2/4/8-shard configs (incl. the 4-shard run the
  # acceptance bar names); run it from a scratch dir so the sanitized run
  # does not overwrite the committed BENCH_*.json numbers.
  tsan_out="$(mktemp -d)"
  (cd "${tsan_out}" && "${OLDPWD}/build-tsan/bench/bench_throughput_shards")
  rm -rf "${tsan_out}"
}

asan() {
  echo "=== asan: retrieval hot path under ASan+UBSan ==="
  # CBFWW_SANITIZE=address enables -fsanitize=address,undefined.
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target index_test warehouse_features_test \
    bench_hotpath
  ./build-asan/tests/index_test
  ./build-asan/tests/warehouse_features_test
  # Smoke corpus only — the sanitized build is for memory bugs, not
  # timings, so no baseline gate here.
  asan_out="$(mktemp -d)"
  (cd "${asan_out}" && "${OLDPWD}/build-asan/bench/bench_hotpath" --smoke)
  rm -rf "${asan_out}"
}

perfsmoke() {
  echo "=== perfsmoke: pruned top-k p50 vs exhaustive, same run ==="
  cmake -B build -S .
  cmake --build build -j --target bench_hotpath
  # Fails (nonzero exit) if the pruned p50 exceeds 2x the exhaustive p50
  # measured in the same run (a relative gate — no machine-dependent
  # absolute baseline), or if pruned != exhaustive on any query.
  smoke_out="$(mktemp -d)"
  (cd "${smoke_out}" && "${OLDPWD}/build/bench/bench_hotpath" --smoke)
  rm -rf "${smoke_out}"
}

chaos() {
  echo "=== chaos: seeded fault schedules under ASan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target chaos_test chaos_soak_test bench_chaos
  ./build-asan/tests/chaos_test
  ./build-asan/tests/chaos_soak_test
  # Fixed seeds: runs are reproducible bit-for-bit, so a failure here is a
  # real bug, not flake. bench_chaos exits nonzero if any shape check
  # fails (acknowledged object lost, non-identical same-seed replay, no
  # degraded serves, unrecovered tier loss).
  chaos_out="$(mktemp -d)"
  (cd "${chaos_out}" && "${OLDPWD}/build-asan/bench/bench_chaos" --seeds=7,77,777)
  rm -rf "${chaos_out}"
}

durability() {
  echo "=== durability: crash-restart matrix + WAL fuzz under ASan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target durability_test wal_fuzz_test \
    durability_soak_test bench_durability
  ./build-asan/tests/durability_test
  ./build-asan/tests/wal_fuzz_test
  # 3 seeds x 10 seeded crash points; deterministic, so a failure is a
  # real durability bug, not flake.
  ./build-asan/tests/durability_soak_test
  # bench_durability exits nonzero if any shape check fails (journaled
  # state diverges from the unjournaled baseline, recovery falls short of
  # the pre-shutdown event count, checkpoints fail to bound WAL replay,
  # or logging costs more than 5x baseline ingest throughput).
  dur_out="$(mktemp -d)"
  (cd "${dur_out}" && "${OLDPWD}/build-asan/bench/bench_durability" --seeds=7,77,777)
  rm -rf "${dur_out}"
}

server() {
  echo "=== server: wire serving layer under ASan + TSan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target server_test server_e2e_test \
    bench_server
  ./build-asan/tests/server_test
  # Socket-level: 10k keep-alive requests / 8 connections / 4 shards with
  # byte-identity against direct in-process calls (single- and multi-IO-
  # thread servers), overload 503s matching /metrics shed counters,
  # admission-class shedding, admin suspend/resume, graceful drain.
  ./build-asan/tests/server_e2e_test
  # The multi-threaded serving units again under ThreadSanitizer: N IO
  # threads x per-lane SPSC dispatch x shard-worker completions is exactly
  # the kind of concurrency TSan exists for.
  cmake -B build-tsan -S . -DCBFWW_SANITIZE=thread
  cmake --build build-tsan -j --target server_test server_e2e_test
  ./build-tsan/tests/server_test
  ./build-tsan/tests/server_e2e_test
  # Smoke gates: every request served, and the 4-IO-thread config must
  # sustain >= 1.5x the 1-IO-thread RPS. The CPU-time (IO critical path)
  # form of that gate is always enforced; the wall-clock form self-skips
  # when the runner has too few hardware threads to run the loops in
  # parallel. Plain build: the sanitized builds are for bugs, not timings.
  cmake -B build -S .
  cmake --build build -j --target bench_server
  server_out="$(mktemp -d)"
  (cd "${server_out}" && "${OLDPWD}/build/bench/bench_server" --smoke)
  # Every report this stage produced — and the committed grid numbers —
  # must match the unified bench JSON schema.
  python3 scripts/validate_bench_json.py "${server_out}"/BENCH_server.json \
    BENCH_server.json
  rm -rf "${server_out}"
}

segments() {
  echo "=== segments: immutable segment store under ASan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target segment_test segment_fuzz_test \
    segment_soak_test
  # Format/store/body-store/checkpoint units, then the corruption battery:
  # 1000 randomized byte-surgery cases per class (truncation, bit flips,
  # zeroed ranges, directory corruption) — every case must yield a clean
  # kDataLoss/kNotFound or byte-correct values, never wrong bytes; ASan
  # turns any out-of-mapping probe into a hard failure.
  ./build-asan/tests/segment_test
  ./build-asan/tests/segment_fuzz_test
  # Compaction-crash soak smoke: 3 fixed seeds x 8 crash points, killing
  # the checkpoint rotation at every CheckpointPhase. Deterministic, so a
  # failure is a real durability bug, not flake.
  ./build-asan/tests/segment_soak_test
  # Recovery + BodyStore-RSS shape gates at smoke scale; the emitted
  # report must match the unified bench JSON schema, as must the
  # committed full-scale numbers.
  cmake -B build -S .
  cmake --build build -j --target bench_segments
  seg_out="$(mktemp -d)"
  (cd "${seg_out}" && "${OLDPWD}/build/bench/bench_segments" --smoke)
  python3 scripts/validate_bench_json.py "${seg_out}"/BENCH_segments.json \
    BENCH_segments.json
  rm -rf "${seg_out}"
}

workload() {
  echo "=== workload: every spec x both backends + JSON schema gate ==="
  cmake -B build -S .
  cmake --build build -j --target bench_workload workload_test
  ./build/tests/workload_test
  # Each spec smoke-runs through the unified harness against both the
  # in-process cluster and the wire server; the run fails on any op error.
  # Every emitted report must then validate against the unified bench
  # JSON schema (schema_version, per-class metrics, serve mix, hardware).
  wl_out="$(mktemp -d)"
  for spec in bench/specs/*.spec; do
    name="$(basename "${spec}" .spec)"
    ./build/bench/bench_workload --spec="${spec}" --backend=both --smoke \
      --json-out="${wl_out}/${name}.json"
  done
  python3 scripts/validate_bench_json.py "${wl_out}"/*.json
  rm -rf "${wl_out}"
}

netchaos() {
  echo "=== netchaos: wire resilience under ASan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target net_resilience_test \
    netchaos_soak_test
  # Timer wheel, seeded fault-injector replay, every lifecycle deadline
  # over real sockets, client timeouts against stalled listeners, the
  # degraded-answer wire contract, and the drain-report quiesce path.
  ./build-asan/tests/net_resilience_test
  # Adversarial fleets (slowloris, resetters, dribblers) racing retrying
  # clients, 3 fixed seeds: zero acked loss, no fd leaks, and a seeded
  # server-side fault run must replay byte-identically. Deterministic
  # seeds — a failure here is a real bug, not flake.
  ./build-asan/tests/netchaos_soak_test
  # Slowloris latency gate at smoke scale (plain build — the sanitized
  # builds are for bugs, not timings): attacked p99 <= 3x baseline, zero
  # legit errors, gauge returns to baseline. The emitted report and the
  # committed full-scale numbers must match the bench JSON schema.
  cmake -B build -S .
  cmake --build build -j --target bench_resilience
  nc_out="$(mktemp -d)"
  (cd "${nc_out}" && "${OLDPWD}/build/bench/bench_resilience" --smoke)
  python3 scripts/validate_bench_json.py \
    "${nc_out}"/BENCH_resilience.json BENCH_resilience.json
  rm -rf "${nc_out}"
}

gateway() {
  echo "=== gateway: scale-out gateway under ASan ==="
  cmake -B build-asan -S . -DCBFWW_SANITIZE=address
  cmake --build build-asan -j --target gateway_test gateway_soak_test
  # Hash-ring stability, client-pool reuse/eviction, write-through
  # replication with the no-ack-without-all-replicas contract, peer-rung
  # failover, hinted handoff + read repair, scatter /query, node
  # leave/join, and a forked node process dying for real (SIGKILL).
  ./build-asan/tests/gateway_test
  # Kill-a-node e2e: 3 fixed seeds x 4 forked durable nodes, one
  # SIGKILLed mid-load at a seeded op index; zero acknowledged-object
  # loss, observable peer failover, and byte-identical same-seed replay.
  ./build-asan/tests/gateway_soak_test
  # Node-scaling and failover-latency gates at smoke scale (plain build —
  # the sanitized builds are for bugs, not timings). The emitted report
  # and the committed full-scale numbers must match the bench JSON
  # schema, including the gateway config/kill_phase blocks.
  cmake -B build -S .
  cmake --build build -j --target bench_gateway
  gw_out="$(mktemp -d)"
  (cd "${gw_out}" && "${OLDPWD}/build/bench/bench_gateway" --smoke)
  python3 scripts/validate_bench_json.py "${gw_out}"/BENCH_gateway.json \
    BENCH_gateway.json
  rm -rf "${gw_out}"
}

case "${stage}" in
  tier1) tier1 ;;
  tsan) tsan ;;
  asan) asan ;;
  perfsmoke) perfsmoke ;;
  chaos) chaos ;;
  durability) durability ;;
  server) server ;;
  segments) segments ;;
  workload) workload ;;
  netchaos) netchaos ;;
  gateway) gateway ;;
  all)
    tier1
    tsan
    asan
    perfsmoke
    chaos
    durability
    server
    segments
    workload
    netchaos
    gateway
    ;;
  *)
    usage >&2
    exit 2
    ;;
esac

echo "CI OK"
