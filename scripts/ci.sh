#!/usr/bin/env bash
# CI for the CBFWW repro: tier-1 verify (full build + test suite) plus a
# ThreadSanitizer pass over the concurrent cluster front-end.
#
#   scripts/ci.sh           # everything
#   scripts/ci.sh tier1     # build + ctest only
#   scripts/ci.sh tsan      # TSan cluster tests + shard bench only
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
  echo "=== tier-1: build + tests ==="
  cmake -B build -S .
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
}

tsan() {
  echo "=== tsan: cluster front-end under ThreadSanitizer ==="
  cmake -B build-tsan -S . -DCBFWW_SANITIZE=thread
  cmake --build build-tsan -j --target cluster_front_test \
    bench_throughput_shards
  ./build-tsan/tests/cluster_front_test
  # The bench drives the 1/2/4/8-shard configs (incl. the 4-shard run the
  # acceptance bar names); run it from a scratch dir so the sanitized run
  # does not overwrite the committed BENCH_*.json numbers.
  tsan_out="$(mktemp -d)"
  (cd "${tsan_out}" && "${OLDPWD}/build-tsan/bench/bench_throughput_shards")
  rm -rf "${tsan_out}"
}

case "${stage}" in
  tier1) tier1 ;;
  tsan) tsan ;;
  all)
    tier1
    tsan
    ;;
  *)
    echo "usage: scripts/ci.sh [tier1|tsan|all]" >&2
    exit 2
    ;;
esac

echo "CI OK"
