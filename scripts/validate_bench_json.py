#!/usr/bin/env python3
"""Validates a bench JSON report against the unified bench schema (v1).

Every bench emits a top-level object with `schema_version` and `bench`;
run blocks (wherever they appear: a `runs` array, or nested inside
`configs`) carry per-op-class metrics, a serve-mix block, and a hardware
block. This validator is what scripts/ci.sh runs over every smoke
report, so schema drift fails CI instead of silently breaking the perf
trajectory tooling.

usage: validate_bench_json.py FILE...
"""

import json
import sys

SCHEMA_VERSION = 1

RUN_KEYS = {
    "spec", "backend", "shards", "loop", "ops_issued", "wall_s",
    "rps_wall", "rps_critical_path", "total", "serve_mix", "hardware",
}
CLASS_KEYS = {
    "ops", "errors", "shed", "latency_mean_us", "latency_p50_us",
    "latency_p90_us", "latency_p99_us", "latency_max_us",
}
SERVE_MIX_KEYS = {
    "requests", "from_memory", "from_disk", "from_tertiary",
    "from_origin", "origin_fetches", "shed",
}
HARDWARE_KEYS = {
    "wall_s", "cpu_user_s", "cpu_system_s", "cpu_total_s",
    "peak_rss_bytes",
}
# Optional top-level summary block emitted by bench_resilience: the
# slowloris gates the committed report claims to have passed.
RESILIENCE_KEYS = {
    "p99_bound_ratio", "p99_floor_ms", "all_bounded", "zero_errors",
    "no_fd_leaks",
}
# bench_gateway blocks: per-node-count configs plus the kill-a-node
# failover phase (SIGKILL of one forked node mid-open-loop).
GATEWAY_CONFIG_KEYS = {"nodes", "rps_critical_path", "errors", "shed", "runs"}
GATEWAY_KILL_KEYS = {
    "nodes", "victim", "steady_p99_us", "kill_p99_us", "p99_ratio",
    "errors", "runs",
}


class SchemaError(Exception):
    pass


def require(cond, where, message):
    if not cond:
        raise SchemaError(f"{where}: {message}")


def check_keys(obj, wanted, where):
    require(isinstance(obj, dict), where, "expected an object")
    missing = wanted - obj.keys()
    require(not missing, where, f"missing keys: {sorted(missing)}")


def check_run(run, where):
    check_keys(run, RUN_KEYS, where)
    check_keys(run["total"], CLASS_KEYS, f"{where}.total")
    for cls in ("page_visit", "query", "scan", "ingest"):
        if cls in run:  # Empty classes are omitted.
            check_keys(run[cls], CLASS_KEYS, f"{where}.{cls}")
    check_keys(run["serve_mix"], SERVE_MIX_KEYS, f"{where}.serve_mix")
    check_keys(run["hardware"], HARDWARE_KEYS, f"{where}.hardware")
    require(run["backend"] in ("cluster", "server", "gateway"), where,
            f"unknown backend {run['backend']!r}")
    require(run["loop"] in ("closed", "open"), where,
            f"unknown loop {run['loop']!r}")
    total = run["total"]
    require(total["ops"] + total["errors"] + total["shed"]
            == run["ops_issued"], where,
            "total ops + errors + shed != ops_issued")


def find_runs(node, path):
    """Yields every run-shaped object in the report, wherever nested."""
    if isinstance(node, dict):
        if RUN_KEYS <= node.keys():
            yield node, path
        else:
            for key, value in node.items():
                yield from find_runs(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from find_runs(value, f"{path}[{i}]")


def validate(path):
    with open(path) as f:
        report = json.load(f)
    check_keys(report, {"schema_version", "bench"}, "$")
    require(report["schema_version"] == SCHEMA_VERSION, "$",
            f"schema_version {report['schema_version']} != {SCHEMA_VERSION}")
    require(isinstance(report["bench"], str) and report["bench"], "$",
            "bench must be a non-empty string")
    runs = list(find_runs(report, "$"))
    require(runs, "$", "no run blocks found")
    for run, where in runs:
        check_run(run, where)
    if "resilience" in report:
        check_keys(report["resilience"], RESILIENCE_KEYS, "$.resilience")
        for gate in ("all_bounded", "zero_errors", "no_fd_leaks"):
            require(report["resilience"][gate] is True, "$.resilience",
                    f"gate {gate} did not pass")
    if report["bench"] == "gateway":
        check_keys(report, {"replication", "configs", "kill_phase",
                            "critical_path_rps_speedup", "wall_rps_speedup",
                            "wall_gate_enforced"}, "$")
        require(isinstance(report["replication"], int)
                and report["replication"] >= 1, "$",
                "replication must be an int >= 1")
        require(isinstance(report["configs"], list) and report["configs"],
                "$.configs", "expected a non-empty array")
        for i, config in enumerate(report["configs"]):
            check_keys(config, GATEWAY_CONFIG_KEYS, f"$.configs[{i}]")
            require(config["nodes"] >= 1, f"$.configs[{i}]",
                    "nodes must be >= 1")
        kill = report["kill_phase"]
        check_keys(kill, GATEWAY_KILL_KEYS, "$.kill_phase")
        require(kill["victim"] < kill["nodes"], "$.kill_phase",
                "victim must index a node in the fleet")
    return len(runs)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            n = validate(path)
            print(f"ok: {path} ({n} run block{'s' if n != 1 else ''})")
        except (SchemaError, json.JSONDecodeError, OSError) as e:
            print(f"FAIL: {path}: {e}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
