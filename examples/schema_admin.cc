// Administration scenario (paper Sections 2.3/4.4): the self-organizing
// warehouse accepts manual definitions via the storage schema definition
// language — pin critical content into memory, keep security-sensitive
// objects off shared fast storage, bar copyrighted resources, and switch
// the consistency regime.
//
//   ./build/examples/schema_admin
#include <cstdio>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace cbfww;

namespace {

const char* TierName(storage::TierIndex t) {
  switch (t) {
    case 0:
      return "memory";
    case 1:
      return "disk";
    case 2:
      return "tertiary";
    default:
      return "(not stored)";
  }
}

}  // namespace

int main() {
  std::printf("CBFWW schema administration\n===========================\n\n");

  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 6;
  corpus_options.pages_per_site = 100;
  corpus::WebCorpus corpus(corpus_options);
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions options;
  options.memory_bytes = 4ull * 1024 * 1024;  // Tight memory: pins matter.
  core::Warehouse warehouse(&corpus, &origin, nullptr, options);

  // Objects the administrator cares about.
  corpus::RawId critical = corpus.page(0).container;   // SLA page.
  corpus::RawId sensitive = corpus.page(1).container;  // Internal doc.
  corpus::RawId licensed = corpus.page(2).container;   // Copyrighted feed.

  std::string schema = StrFormat(R"(
      # operations policy, applied before traffic
      PIN OBJECT %llu TO memory
      RESTRICT OBJECT %llu BELOW disk
      COPYRIGHT OBJECT %llu
      CONSISTENCY weak
  )",
                                 static_cast<unsigned long long>(critical),
                                 static_cast<unsigned long long>(sensitive),
                                 static_cast<unsigned long long>(licensed));
  std::printf("applying schema:%s\n", schema.c_str());
  Status status = warehouse.mutable_constraints().ApplySchema(schema);
  if (!status.ok()) {
    std::printf("schema error: %s\n", status.ToString().c_str());
    return 1;
  }

  // Touch the governed pages once so the warehouse knows them, then run
  // half a day of traffic.
  for (corpus::PageId p = 0; p < 3; ++p) {
    warehouse.RequestPage(
        {.page = p, .user = 0, .session = static_cast<int64_t>(p), .now = static_cast<SimTime>(p + 1) * kSecond});
  }
  trace::WorkloadOptions workload_options;
  workload_options.horizon = 12 * kHour;
  workload_options.sessions_per_hour = 100;
  trace::WorkloadGenerator generator(&corpus, nullptr, workload_options);
  for (const trace::TraceEvent& event : generator.Generate()) {
    warehouse.ProcessEvent(event);
  }
  warehouse.Tick(13 * kHour);  // Final rebalance applies the pins.

  auto tier_of = [&](corpus::RawId id) {
    return warehouse.hierarchy().FastestTierOf(
        core::EncodeStoreId(index::ObjectLevel::kRaw, id));
  };
  std::printf("placement after 12h of traffic:\n");
  std::printf("  critical (pinned to memory):   %s\n",
              TierName(tier_of(critical)));
  std::printf("  sensitive (restricted below disk): %s\n",
              TierName(tier_of(sensitive)));
  std::printf("  licensed (copyrighted):        %s\n",
              TierName(tier_of(licensed)));
  std::printf("  admission rejections recorded: %llu\n",
              static_cast<unsigned long long>(
                  warehouse.counters().admission_rejections));

  // Popularity-aware search still works over the governed store.
  std::printf("\npopularity-aware search for the hottest topic terms:\n");
  std::string query;
  for (text::TermId t : corpus.topic_model().TopicSignature(0, 4)) {
    query += corpus.vocabulary().TermOf(t);
    query += " ";
  }
  for (const auto& hit : warehouse.SearchPages(query, 3)) {
    std::printf("  page %llu score %.3f\n",
                static_cast<unsigned long long>(hit.doc), hit.score);
  }

  std::printf("\ndone.\n");
  return 0;
}
