// Warehouse analytics scenario (paper Sections 3/4.3): the warehouse as a
// non-transparent, queryable store — usage mining, version history ("a
// user can know the data in the past"), per-user recommendations, and the
// full OQL-style query surface including nested EXISTS subqueries.
//
//   ./build/examples/warehouse_analytics
#include <cstdio>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace cbfww;

int main() {
  std::printf("CBFWW warehouse analytics\n=========================\n\n");

  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 8;
  corpus_options.pages_per_site = 150;
  corpus::WebCorpus corpus(corpus_options);
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions options;
  options.constraints.default_consistency = core::ConsistencyMode::kStrong;
  options.versions.max_versions_per_object = 8;
  core::Warehouse warehouse(&corpus, &origin, nullptr, options);

  // A standing ("continuous") query: the online-decision-support hook the
  // paper names as its long-term goal. Re-evaluated every simulated hour.
  auto standing = warehouse.RegisterContinuousQuery(
      "SELECT MFU 5 p.oid, p.frequency FROM Physical_Page p", kHour);

  trace::WorkloadOptions workload_options;
  workload_options.horizon = kDay;
  workload_options.sessions_per_hour = 120;
  workload_options.modifications_per_hour = 120;  // Churny content.
  trace::WorkloadGenerator generator(&corpus, nullptr, workload_options);
  for (const trace::TraceEvent& event : generator.Generate()) {
    warehouse.ProcessEvent(event);
  }

  // --- Usage mining via the Data Analyzer. ---
  const core::DataAnalyzer& analyzer = warehouse.analyzer();
  std::printf("requests: %llu; latency p50 %.1fms p99 %.1fms\n",
              static_cast<unsigned long long>(analyzer.total_requests()),
              analyzer.latency_percentiles().Percentile(50) / 1000.0,
              analyzer.latency_percentiles().Percentile(99) / 1000.0);
  std::printf("top pages by usage:\n");
  for (const auto& entry : analyzer.TopPages(3)) {
    std::printf("  page %llu: %llu requests\n",
                static_cast<unsigned long long>(entry.page),
                static_cast<unsigned long long>(entry.count));
  }

  // --- The paper's example queries, against live data. ---
  struct Demo {
    const char* label;
    std::string query;
  };
  const core::PhysicalPageRecord* any_page =
      warehouse.page_records().empty()
          ? nullptr
          : &warehouse.page_records().begin()->second;
  std::string term =
      any_page != nullptr && !any_page->title_terms.empty()
          ? corpus.vocabulary().TermOf(any_page->title_terms[0])
          : "commonterm0";
  Demo demos[] = {
      {"documents about a topic, most recently used first",
       StrFormat("SELECT MRU 3 p.oid, p.title FROM Physical_Page p WHERE "
                 "p.title MENTION '%s'",
                 term.c_str())},
      {"top-5 most used logical pages containing a page over 200,000 bytes",
       "SELECT MFU 5 l.oid, l.path FROM Logical_Page l WHERE EXISTS "
       "( SELECT * FROM Physical_Page p WHERE p.oid IN l.physicals AND "
       "p.size > 200,000)"},
      {"least frequently used large pages (archive candidates)",
       "SELECT LFU 3 p.oid, p.size FROM Physical_Page p WHERE "
       "p.size > 500,000"},
  };
  for (const Demo& demo : demos) {
    std::printf("\n-- %s\n> %s\n", demo.label, demo.query.c_str());
    auto result = warehouse.ExecuteQuery(demo.query);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& row : result->result.rows) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%.50s", c > 0 ? " | " : "", row[c].ToString().c_str());
      }
      std::printf("\n");
    }
    if (result->result.rows.empty()) std::printf("  (no rows)\n");
  }

  // --- Version history: the web as of 6 hours ago. ---
  const core::VersionManager& versions = warehouse.versions();
  std::printf("\nversion store: %llu versions of %zu objects (%s)\n",
              static_cast<unsigned long long>(versions.num_versions()),
              versions.num_objects(),
              FormatBytes(versions.TotalBytesRetained()).c_str());
  SimTime as_of = warehouse.now() - 6 * kHour;
  int shown = 0;
  for (const auto& [raw_id, rec] : warehouse.raw_records()) {
    if (versions.VersionsOf(raw_id).size() < 2) continue;
    auto v = versions.AsOf(raw_id, as_of);
    if (!v.ok()) continue;
    std::printf("  object %llu as of -6h: version %u (now %u)\n",
                static_cast<unsigned long long>(raw_id), v->version,
                rec.cached_version);
    if (++shown == 3) break;
  }

  // --- The standing query's latest state. ---
  if (standing.ok()) {
    const auto* reg = warehouse.continuous_queries().Find(*standing);
    if (reg != nullptr) {
      std::printf("\nstanding query \"%s\"\n", reg->text.c_str());
      std::printf("  evaluated %llu times; last delta: +%llu/-%llu rows\n",
                  static_cast<unsigned long long>(reg->evaluations),
                  static_cast<unsigned long long>(reg->last_added),
                  static_cast<unsigned long long>(reg->last_removed));
      for (const auto& row : reg->latest.rows) {
        std::printf("  page %s used %s times\n", row[0].ToString().c_str(),
                    row[1].ToString().c_str());
      }
    }
  }

  // --- Per-user recommendation from interest profiles. ---
  std::printf("\nrecommendations for user 1:\n");
  for (const auto& scored : warehouse.RecommendPages(1, 3)) {
    std::printf("  page %llu (similarity %.2f)\n",
                static_cast<unsigned long long>(scored.doc), scored.score);
  }
  std::printf("\ndone.\n");
  return 0;
}
