// Scale-out gateway demo: N forked warehouse node processes behind the
// consistent-hash gateway, for poking with curl.
//
//   ./gateway_demo [port] [nodes] [replication]
//
//   curl http://127.0.0.1:8080/healthz           # gateway + fleet health
//   curl http://127.0.0.1:8080/admin/nodes       # ring membership + hints
//   curl -i http://127.0.0.1:8080/page/42        # routed to its primary
//                                                # (X-Cbfww-Served-By says
//                                                #  which node answered)
//   curl -X POST http://127.0.0.1:8080/modify/7  # write-through: 202 only
//                                                # when all R replicas hold it
//   curl -d "SELECT p.url FROM Physical_Page p" ...:8080/query
//                                                # scatter-gather, per-node
//                                                # result/error slots
//   curl http://127.0.0.1:8080/metrics           # rung counters, hints, ...
//   curl -X POST http://127.0.0.1:8080/admin/node/node-1/leave
//   curl -X POST http://127.0.0.1:8080/admin/node/node-1/join
//
// Try killing a node process (`kill -9 <pid>` — pids are printed below):
// reads fail over to the peer replica, writes hint until it returns.
//
// Ctrl-C stops the gateway and terminates the fleet.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gateway/gateway_server.h"
#include "gateway/node_process.h"
#include "util/strings.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  uint16_t port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 8080;
  uint32_t nodes = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 3;
  if (nodes == 0) nodes = 1;
  uint32_t replication =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 2;

  // Fork the fleet first — this process must still be single-threaded.
  std::printf("forking %u warehouse node%s...\n", nodes,
              nodes == 1 ? "" : "s");
  std::vector<cbfww::gateway::NodeProcess> fleet;
  std::vector<cbfww::gateway::NodeEndpoint> endpoints;
  for (uint32_t n = 0; n < nodes; n++) {
    cbfww::gateway::NodeProcessOptions opts;
    opts.node_id = cbfww::StrFormat("node-%u", n);
    opts.corpus.num_sites = 10;
    opts.corpus.pages_per_site = 200;
    opts.cluster.num_shards = 2;
    auto spawned = cbfww::gateway::NodeProcess::Spawn(opts);
    if (!spawned.ok()) {
      std::fprintf(stderr, "spawn %s failed: %s\n", opts.node_id.c_str(),
                   spawned.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s: pid %d on 127.0.0.1:%u\n", opts.node_id.c_str(),
                static_cast<int>(spawned->pid()), spawned->port());
    endpoints.push_back(cbfww::gateway::NodeEndpoint{
        opts.node_id, "127.0.0.1", spawned->port()});
    fleet.push_back(std::move(*spawned));
  }

  cbfww::gateway::GatewayOptions gopts;
  gopts.port = port;
  gopts.replication = replication;
  gopts.pool.enable_prober = true;  // Dead nodes get re-probed and rejoin.
  cbfww::gateway::GatewayServer gateway(endpoints, gopts);
  cbfww::Status status = gateway.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "gateway start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf(
      "gateway on http://127.0.0.1:%u  (%u node%s, replication %u; "
      "Ctrl-C stops)\n",
      gateway.port(), nodes, nodes == 1 ? "" : "s", gateway.replication());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  std::printf("\nstopping gateway, terminating fleet...\n");
  gateway.Stop();
  for (auto& node : fleet) node.Terminate();
  return 0;
}
