// Quickstart: build a small Capacity Bound-free Web Warehouse over a
// synthetic web, feed it a browsing workload, and use the public API —
// requests, popularity-aware queries, priorities, and storage placement.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"

using namespace cbfww;

int main() {
  std::printf("CBFWW quickstart\n================\n\n");

  // 1. A synthetic web of 5 sites x 100 pages (substitute for the real
  //    web; see DESIGN.md) and a simulated origin server in front of it.
  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 5;
  corpus_options.pages_per_site = 100;
  corpus::WebCorpus corpus(corpus_options);
  net::OriginServer origin(&corpus, net::NetworkModel());
  std::printf("corpus: %zu pages, %zu raw objects\n", corpus.num_pages(),
              corpus.num_raw_objects());

  // 2. The warehouse: 8 MB memory tier, 1 GB disk tier, bound-free
  //    tertiary. No news feed in this example (topic sensor idle).
  core::WarehouseOptions options;
  options.memory_bytes = 8ull * 1024 * 1024;
  options.disk_bytes = 1ull * 1024 * 1024 * 1024;
  core::Warehouse warehouse(&corpus, &origin, /*feed=*/nullptr, options);

  // 3. Serve a browsing workload (12 simulated hours).
  trace::WorkloadOptions workload_options;
  workload_options.horizon = 12 * kHour;
  workload_options.sessions_per_hour = 80;
  trace::WorkloadGenerator generator(&corpus, nullptr, workload_options);
  for (const trace::TraceEvent& event : generator.Generate()) {
    warehouse.ProcessEvent(event);
  }

  const core::DataAnalyzer& analyzer = warehouse.analyzer();
  std::printf("served %llu requests (%zu distinct pages, %zu users)\n",
              static_cast<unsigned long long>(analyzer.total_requests()),
              analyzer.distinct_pages(), analyzer.distinct_users());
  std::printf("mean page latency: %.1f ms\n",
              analyzer.latency_stats().mean() / 1000.0);
  std::printf("storage: %llu objects in memory, %llu on disk, %llu on "
              "tertiary\n",
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(0)),
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(1)),
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(2)));

  // 4. Popularity-aware queries (paper Section 4.3): the warehouse is not
  //    transparent — usage metadata is queryable.
  std::printf("\n> SELECT MFU 5 p.oid, p.frequency, p.priority "
              "FROM Physical_Page p\n");
  auto result = warehouse.ExecuteQuery(
      "SELECT MFU 5 p.oid, p.frequency, p.priority FROM Physical_Page p");
  if (result.ok()) {
    for (const auto& row : result->result.rows) {
      std::printf("  page %-6s frequency=%-4s priority=%s\n",
                  row[0].ToString().c_str(), row[1].ToString().c_str(),
                  row[2].ToString().c_str());
    }
  }

  std::printf("\n> SELECT LRU 3 p.oid, p.lastref FROM Physical_Page p\n");
  auto lru = warehouse.ExecuteQuery(
      "SELECT LRU 3 p.oid, p.lastref FROM Physical_Page p");
  if (lru.ok()) {
    for (const auto& row : lru->result.rows) {
      std::printf("  page %-6s lastref=%s us\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }

  // 5. Mined structure: logical pages and semantic regions.
  std::printf("\nlogical pages mined: %zu; semantic regions: %zu\n",
              warehouse.logical_pages().pages().size(),
              warehouse.regions().regions().size());

  // 6. The Figure-2 rule in action: a shared component's priority equals
  //    its busiest container's, not its raw reference count.
  for (const auto& [raw_id, rec] : warehouse.raw_records()) {
    if (rec.containers.size() >= 2 && rec.history.frequency() >= 4) {
      double raw_priority =
          warehouse.EffectiveRawPriority(raw_id, warehouse.now());
      std::printf("\nshared component %llu: %llu raw refs across %zu pages, "
                  "effective priority %.2f (max of its containers)\n",
                  static_cast<unsigned long long>(raw_id),
                  static_cast<unsigned long long>(rec.history.frequency()),
                  rec.containers.size(), raw_priority);
      break;
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
