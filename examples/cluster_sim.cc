// Cluster simulation: run the sharded parallel warehouse front-end
// (WarehouseCluster) over a browsing workload — hash-partitioned routing,
// one worker thread per shard, merged cluster-level reporting, and a
// per-shard tier failure that the rest of the cluster rides out.
//
//   ./build/examples/cluster_sim
#include <cstdio>
#include <iostream>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "trace/workload.h"

using namespace cbfww;

int main() {
  std::printf("CBFWW cluster simulation\n========================\n\n");

  // 1. One synthetic web, described once; every shard builds an identical
  //    replica from these options (WebCorpus is deterministic by seed).
  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 8;
  corpus_options.pages_per_site = 150;

  // 2. A 4-shard cluster. Capacities are per shard: this cluster has the
  //    same total memory as a 32 MB monolith, split four ways.
  cluster::ClusterOptions options;
  options.num_shards = 4;
  options.warehouse.memory_bytes = 8ull * 1024 * 1024;
  options.warehouse.disk_bytes = 512ull * 1024 * 1024;
  cluster::WarehouseCluster warehouse_cluster(corpus_options, std::nullopt,
                                              options);
  std::printf("cluster: %u shards, pages hash-partitioned by PageId\n\n",
              warehouse_cluster.num_shards());

  // 3. Generate one time-ordered trace and route it through the cluster:
  //    requests go to their page's shard, modifications are broadcast.
  corpus::WebCorpus corpus(corpus_options);
  trace::WorkloadOptions workload_options;
  workload_options.horizon = 24 * kHour;
  workload_options.sessions_per_hour = 120;
  trace::WorkloadGenerator generator(&corpus, nullptr, workload_options);
  warehouse_cluster.Replay(generator.Generate());

  // 4. The merge layer: one report aggregated across shards.
  cluster::ClusterReport report = warehouse_cluster.Report();
  report.Print(std::cout);

  // 5. Copy control under partial failure (paper Section 4.4, sharded):
  //    shard 2 loses its entire memory tier; its disk/tertiary copies and
  //    the other three shards keep the cluster serving.
  uint64_t lost = warehouse_cluster.SimulateTierFailure(
      /*shard=*/2, /*tier=*/core::StorageManager::kMemoryTier);
  std::printf("\nshard 2 memory tier failed: %llu copies lost\n",
              static_cast<unsigned long long>(lost));

  trace::TraceEvent probe;
  probe.time = workload_options.horizon + kMinute;
  probe.type = trace::TraceEventType::kRequest;
  probe.user = 9999;
  probe.session = 1 << 20;
  for (corpus::PageId page = 0; page < 4; ++page) {
    probe.page = page;
    warehouse_cluster.Submit(probe);
    probe.time += kSecond;
  }
  warehouse_cluster.Drain();
  cluster::ClusterReport after = warehouse_cluster.Report();
  std::printf("served %llu more requests after the failure — "
              "no shard went dark\n",
              static_cast<unsigned long long>(after.counters.requests -
                                              report.counters.requests));
  std::printf("\ndone.\n");
  return 0;
}
