// News portal scenario (paper Section 3, Topic Sensor): a provider-side
// warehouse in front of bursty, news-driven traffic — the paper's
// Kyoto-inet setting. The Topic Sensor reads the simulated news wire,
// detects hot topics before the request bursts arrive, boosts matching
// priorities and prefetches hot pages into the fast tier.
//
//   ./build/examples/news_portal
#include <cstdio>

#include "core/warehouse.h"
#include "corpus/news_feed.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"

using namespace cbfww;

int main() {
  std::printf("CBFWW news portal\n=================\n\n");

  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 10;
  corpus_options.pages_per_site = 200;
  corpus::WebCorpus corpus(corpus_options);
  net::OriginServer origin(&corpus, net::NetworkModel());

  // The news wire: 6 topic bursts over 2 days; headlines lead each burst
  // by 45 minutes — the sensor's prediction window.
  corpus::NewsFeed::Options feed_options;
  feed_options.num_bursts = 6;
  feed_options.horizon = 2 * kDay;
  feed_options.headline_lead = 45 * kMinute;
  feed_options.intensity = 25.0;
  corpus::NewsFeed feed(feed_options, &corpus.topic_model());
  std::printf("news wire: %zu bursts, %zu headlines scheduled\n",
              feed.bursts().size(), feed.headlines().size());

  core::WarehouseOptions options;
  options.memory_bytes = 16ull * 1024 * 1024;
  options.enable_topic_sensor = true;
  options.enable_prefetch = true;
  core::Warehouse warehouse(&corpus, &origin, &feed, options);

  trace::WorkloadOptions workload_options;
  workload_options.horizon = 2 * kDay;
  workload_options.sessions_per_hour = 120;
  trace::WorkloadGenerator generator(&corpus, &feed, workload_options);

  // Track burst-window performance as we go.
  uint64_t burst_requests = 0;
  uint64_t burst_mem = 0;
  uint64_t burst_total_objects = 0;
  for (const trace::TraceEvent& event : generator.Generate()) {
    core::PageVisit visit = warehouse.ProcessEvent(event);
    if (event.type != trace::TraceEventType::kRequest) continue;
    for (const corpus::BurstSpec& burst : feed.bursts()) {
      if (burst.ActiveAt(event.time) &&
          corpus.page(event.page).topic == burst.topic) {
        ++burst_requests;
        burst_mem += visit.from_memory;
        burst_total_objects += visit.from_memory + visit.from_disk +
                               visit.from_tertiary + visit.from_origin;
        break;
      }
    }
  }

  std::printf("\nsensor ingested %llu headlines; %llu hot-topic prefetches\n",
              static_cast<unsigned long long>(
                  warehouse.sensor().headlines_seen()),
              static_cast<unsigned long long>(
                  warehouse.counters().prefetches));
  std::printf("hot-topic burst traffic: %llu requests, %.1f%% of their "
              "objects served from memory\n",
              static_cast<unsigned long long>(burst_requests),
              burst_total_objects == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(burst_mem) /
                        static_cast<double>(burst_total_objects));

  // What does the sensor consider hot right now?
  std::printf("\nhot terms at the end of the run:\n");
  for (const auto& [term, weight] :
       warehouse.sensor().HotTerms(warehouse.now(), 6)) {
    std::printf("  %-16s %.2f\n",
                corpus.vocabulary().TermOf(term).c_str(), weight);
  }

  // Ask the warehouse what was popular — a popularity-aware query.
  std::printf("\n> SELECT MFU 5 p.oid, p.title FROM Physical_Page p\n");
  auto result = warehouse.ExecuteQuery(
      "SELECT MFU 5 p.oid, p.title FROM Physical_Page p");
  if (result.ok()) {
    for (const auto& row : result->result.rows) {
      std::printf("  page %-6s \"%.60s\"\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
