// Demo server: a 4-shard warehouse cluster behind the embedded HTTP
// front-end, for poking with curl.
//
//   ./serve_demo [port] [shards] [io_threads]
//
//   curl http://127.0.0.1:8080/healthz
//   curl http://127.0.0.1:8080/page/42
//   curl "http://127.0.0.1:8080/page/42?user=7&deadline_ms=250"
//   curl -d "SELECT url FROM documents WHERE doc MENTION 'topic'"
//        http://127.0.0.1:8080/query   (one line)
//   curl http://127.0.0.1:8080/metrics
//   curl -X POST http://127.0.0.1:8080/admin/shard/1/suspend
//
// SIGTERM / Ctrl-C drains gracefully: in-flight requests finish, the
// cluster quiesces, then the process exits.

#include <cstdio>
#include <cstdlib>

#include "cluster/warehouse_cluster.h"
#include "corpus/web_corpus.h"
#include "server/http_server.h"

int main(int argc, char** argv) {
  uint16_t port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 8080;
  uint32_t shards = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4;
  if (shards == 0) shards = 1;
  uint32_t io_threads =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 1;
  if (io_threads == 0) io_threads = 1;

  cbfww::corpus::CorpusOptions corpus_opts;
  corpus_opts.num_sites = 10;
  corpus_opts.pages_per_site = 200;

  cbfww::cluster::ClusterOptions cluster_opts;
  cluster_opts.num_shards = shards;
  // One SPSC producer lane per IO thread.
  cluster_opts.producer_lanes = io_threads;

  std::printf("building %u-shard cluster (%u sites x %u pages)...\n", shards,
              corpus_opts.num_sites, corpus_opts.pages_per_site);
  cbfww::cluster::WarehouseCluster cluster(corpus_opts, std::nullopt,
                                           cluster_opts);

  cbfww::server::ServerOptions server_opts;
  server_opts.port = port;
  server_opts.io_threads = io_threads;
  cbfww::server::HttpServer server(&cluster, server_opts);
  cbfww::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.message().c_str());
    return 1;
  }
  cbfww::server::HttpServer::InstallSignalDrain(&server);

  std::printf(
      "serving on http://127.0.0.1:%u  (%zu pages, %u IO thread%s via %s; "
      "Ctrl-C drains)\n",
      server.port(), cluster.shard(0).corpus().num_pages(),
      server.io_threads(), server.io_threads() == 1 ? "" : "s",
      server.accept_mode_resolved() == cbfww::server::AcceptMode::kReusePort
          ? "reuseport"
          : "handoff");
  std::printf("try: curl http://127.0.0.1:%u/page/42\n", server.port());

  server.Join();  // Returns after the signal-triggered drain completes.
  std::printf("drained: %llu requests served\n",
              static_cast<unsigned long long>(
                  server.stats().requests_total.load()));
  return 0;
}
