// Travel navigation scenario (paper Sections 5.2/5.3): the paper's Kyoto
// example — users repeatedly traverse "Travel in Kyoto → List of bus
// stations → Kyoto station → Access to the Shinkansen superexpress". The
// warehouse mines those paths into logical documents whose title is the
// concatenated anchor texts, clusters them into semantic regions, and
// offers social navigation ("users who started here usually continue...").
//
//   ./build/examples/travel_navigation
#include <cstdio>

#include "core/warehouse.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace cbfww;

int main() {
  std::printf("CBFWW travel navigation\n=======================\n\n");

  corpus::CorpusOptions corpus_options;
  corpus_options.num_sites = 8;
  corpus_options.pages_per_site = 120;
  corpus::WebCorpus corpus(corpus_options);
  net::OriginServer origin(&corpus, net::NetworkModel());

  core::WarehouseOptions options;
  options.logical.support_threshold = 4;
  core::Warehouse warehouse(&corpus, &origin, nullptr, options);

  // A navigation-heavy workload: half the sessions replay trails
  // (the "Kyoto travel" pattern).
  trace::WorkloadOptions workload_options;
  workload_options.horizon = kDay;
  workload_options.sessions_per_hour = 100;
  workload_options.trail_session_prob = 0.5;
  workload_options.num_trails = 8;
  trace::WorkloadGenerator generator(&corpus, nullptr, workload_options);
  for (const trace::TraceEvent& event : generator.Generate()) {
    warehouse.ProcessEvent(event);
  }

  const core::LogicalPageManager& logical = warehouse.logical_pages();
  std::printf("mined %zu logical documents from repeated traversals\n\n",
              logical.pages().size());

  // Show the three most-traversed logical documents, with the composed
  // title the paper describes (anchor texts + terminal title).
  auto top = warehouse.ExecuteQuery(
      "SELECT MFU 3 l.oid, l.path, l.frequency, l.title "
      "FROM Logical_Page l");
  if (top.ok()) {
    for (const auto& row : top->result.rows) {
      std::printf("logical doc %s  path %s  traversed %s times\n",
                  row[0].ToString().c_str(), row[1].ToString().c_str(),
                  row[2].ToString().c_str());
      std::printf("  title: \"%.90s\"\n\n", row[3].ToString().c_str());
    }
  }

  // Social navigation: a user lands on the entry page of the top trail —
  // what do experienced users do next?
  const trace::Trail& trail = generator.trails().front();
  corpus::PageId entry = trail.pages.front();
  std::printf("social navigation from page %llu:\n",
              static_cast<unsigned long long>(entry));
  for (core::LogicalPageId id : warehouse.RecommendPaths(entry, 3)) {
    const core::LogicalPageRecord* rec = logical.FindPage(id);
    if (rec == nullptr) continue;
    std::string path;
    for (size_t i = 0; i < rec->path.size(); ++i) {
      if (i > 0) path += " -> ";
      path += StrFormat("%llu",
                        static_cast<unsigned long long>(rec->path[i]));
    }
    std::printf("  %s (%llu traversals by other users)\n", path.c_str(),
                static_cast<unsigned long long>(rec->history.frequency()));
  }

  // The paper's disambiguation point: two logical documents may end at the
  // same page but mean different things; their anchor-text titles keep
  // them apart in the semantic space.
  std::printf("\nsemantic regions over logical+physical content: %zu\n",
              warehouse.regions().regions().size());
  std::printf("\n\"most popular way users reach\" a page (paper example 3):\n");
  corpus::PageId terminal = trail.pages.back();
  const auto& terminal_rec = corpus.raw(corpus.page(terminal).container);
  auto paths_to = warehouse.ExecuteQuery(StrFormat(
      "SELECT MFU 2 l.path FROM Logical_Page l WHERE end_at(l.oid) IN "
      "(SELECT p.oid FROM Physical_Page p WHERE p.url = '%s')",
      terminal_rec.url.c_str()));
  if (paths_to.ok()) {
    for (const auto& row : paths_to->result.rows) {
      std::printf("  via %s\n", row[0].ToString().c_str());
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
