// cbfww_sim — command-line simulation driver: configure a corpus, workload
// and warehouse from flags, run, and print a full report. Traces can be
// exported/imported in the repository's CSV format so experiments are
// archivable and replayable.
//
//   ./build/examples/cbfww_sim --sites=10 --pages=200 --hours=24
//       --memory-mb=16 --mode=similarity --sensor=1 --trace-out=/tmp/t.csv
//   ./build/examples/cbfww_sim --trace-in=/tmp/t.csv --sites=10 --pages=200
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "core/warehouse.h"
#include "corpus/news_feed.h"
#include "corpus/web_corpus.h"
#include "net/origin_server.h"
#include "trace/trace_io.h"
#include "trace/workload.h"
#include "util/stats.h"
#include "util/strings.h"

using namespace cbfww;

namespace {

/// Parses --key=value flags into a map; returns false on unknown syntax.
bool ParseFlags(int argc, char** argv, std::map<std::string, std::string>* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return false;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      (*out)[arg.substr(2)] = "1";
    } else {
      (*out)[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return true;
}

int64_t FlagInt(const std::map<std::string, std::string>& flags,
                const std::string& key, int64_t fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atoll(it->second.c_str());
}

std::string FlagStr(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

void PrintUsage() {
  std::printf(
      "cbfww_sim — run a CBFWW simulation\n"
      "  --sites=N         sites in the synthetic corpus (default 10)\n"
      "  --pages=N         pages per site (default 200)\n"
      "  --hours=N         workload horizon in hours (default 24)\n"
      "  --sessions=N      sessions per hour (default 120)\n"
      "  --memory-mb=N     memory tier capacity (default 16)\n"
      "  --disk-mb=N       disk tier capacity (default 2048)\n"
      "  --mode=M          initial priority: similarity|top|zero\n"
      "  --sensor=0|1      topic sensor + prefetch (default 1)\n"
      "  --diurnal=0..100  diurnal amplitude percent (default 0)\n"
      "  --seed=N          simulation seed (default 2003)\n"
      "  --trace-out=FILE  export the generated trace as CSV\n"
      "  --trace-in=FILE   replay a previously exported trace\n"
      "  --query=Q         run one warehouse query after the trace\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  if (!ParseFlags(argc, argv, &flags) || flags.contains("help")) {
    PrintUsage();
    return flags.contains("help") ? 0 : 1;
  }

  corpus::CorpusOptions copts;
  copts.num_sites = static_cast<uint32_t>(FlagInt(flags, "sites", 10));
  copts.pages_per_site = static_cast<uint32_t>(FlagInt(flags, "pages", 200));
  copts.seed = static_cast<uint64_t>(FlagInt(flags, "seed", 2003));
  corpus::WebCorpus corpus(copts);
  net::OriginServer origin(&corpus, net::NetworkModel());

  corpus::NewsFeed::Options fopts;
  fopts.horizon = FlagInt(flags, "hours", 24) * kHour;
  fopts.seed = copts.seed + 1;
  corpus::NewsFeed feed(fopts, &corpus.topic_model());

  core::WarehouseOptions wopts;
  wopts.memory_bytes =
      static_cast<uint64_t>(FlagInt(flags, "memory-mb", 16)) << 20;
  wopts.disk_bytes =
      static_cast<uint64_t>(FlagInt(flags, "disk-mb", 2048)) << 20;
  wopts.seed = copts.seed;
  std::string mode = FlagStr(flags, "mode", "similarity");
  if (mode == "top") {
    wopts.initial_priority = core::InitialPriorityMode::kTop;
  } else if (mode == "zero") {
    wopts.initial_priority = core::InitialPriorityMode::kZero;
  } else if (mode != "similarity") {
    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 1;
  }
  bool sensor = FlagInt(flags, "sensor", 1) != 0;
  wopts.enable_topic_sensor = sensor;
  wopts.enable_prefetch = sensor;
  core::Warehouse warehouse(&corpus, &origin, &feed, wopts);

  // Trace: replay a file or generate fresh.
  std::vector<trace::TraceEvent> events;
  std::string trace_in = FlagStr(flags, "trace-in", "");
  if (!trace_in.empty()) {
    std::ifstream in(trace_in);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", trace_in.c_str());
      return 1;
    }
    auto loaded = trace::ReadTrace(in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bad trace: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    events = std::move(loaded).value();
    std::printf("replaying %zu events from %s\n", events.size(),
                trace_in.c_str());
  } else {
    trace::WorkloadOptions topts;
    topts.horizon = FlagInt(flags, "hours", 24) * kHour;
    topts.sessions_per_hour =
        static_cast<double>(FlagInt(flags, "sessions", 120));
    topts.diurnal_amplitude =
        static_cast<double>(FlagInt(flags, "diurnal", 0)) / 100.0;
    topts.seed = copts.seed + 2;
    trace::WorkloadGenerator generator(&corpus, &feed, topts);
    events = generator.Generate();
    std::printf("generated %zu events over %lldh\n", events.size(),
                static_cast<long long>(FlagInt(flags, "hours", 24)));
    std::string trace_out = FlagStr(flags, "trace-out", "");
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      trace::WriteTrace(events, out);
      std::printf("trace written to %s\n", trace_out.c_str());
    }
  }

  // Run.
  RunningStats latency_ms;
  uint64_t mem = 0, total = 0;
  for (const auto& e : events) {
    core::PageVisit v = warehouse.ProcessEvent(e);
    if (e.type != trace::TraceEventType::kRequest) continue;
    latency_ms.Add(static_cast<double>(v.latency) / 1000.0);
    mem += v.from_memory;
    total += v.from_memory + v.from_disk + v.from_tertiary + v.from_origin;
  }

  // Report.
  std::printf("\n=== report ===\n");
  std::printf("requests: %llu  distinct pages: %zu  users: %zu\n",
              static_cast<unsigned long long>(
                  warehouse.analyzer().total_requests()),
              warehouse.analyzer().distinct_pages(),
              warehouse.analyzer().distinct_users());
  std::printf("mean latency: %.1fms  memory-hit ratio: %.3f\n",
              latency_ms.mean(),
              total == 0 ? 0.0
                         : static_cast<double>(mem) /
                               static_cast<double>(total));
  std::printf("origin fetches: %llu  prefetches: %llu  rebalances: %llu\n",
              static_cast<unsigned long long>(
                  warehouse.counters().origin_fetches),
              static_cast<unsigned long long>(warehouse.counters().prefetches),
              static_cast<unsigned long long>(
                  warehouse.counters().rebalances));
  std::printf("tiers: %llu objects in memory, %llu on disk, %llu on "
              "tertiary (%s retained versions)\n",
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(0)),
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(1)),
              static_cast<unsigned long long>(
                  warehouse.hierarchy().resident_count(2)),
              FormatBytes(warehouse.versions().TotalBytesRetained()).c_str());
  std::printf("logical pages mined: %zu  semantic regions: %zu\n",
              warehouse.logical_pages().pages().size(),
              warehouse.regions().regions().size());

  std::string query = FlagStr(flags, "query", "");
  if (!query.empty()) {
    std::printf("\n> %s\n", query.c_str());
    auto result = warehouse.ExecuteQuery(query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const auto& row : result->result.rows) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c > 0 ? " | " : "", row[c].ToString().c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
